"""Command-line interface: generate traces, run queries, run experiments.

Usage::

    python -m repro generate --duration 120 --rate 100 --delay exp:0.5 \
        --out trace.csv
    python -m repro run trace.csv --window 10 --slide 2 --aggregate mean \
        --quality 0.05
    python -m repro run trace.csv --window 10 --slide 2 --aggregate count \
        --slack 2.0
    python -m repro query trace.csv \
        "SELECT mean(value) FROM stream GROUP BY HOP(10, 2) WITH QUALITY 0.05"
    python -m repro experiment E3 E6 --scale 0.5

Delay model specs are ``kind:params``:

* ``const:D``            constant delay D seconds
* ``uniform:LO,HI``      uniform in [LO, HI)
* ``exp:MEAN``           exponential with the given mean
* ``pareto:SHAPE,SCALE`` Lomax heavy tail
* ``lognormal:MU,SIGMA`` lognormal
* ``mix:W1*SPEC1|W2*SPEC2``  weighted mixture, e.g.
  ``mix:0.9*exp:0.2|0.1*pareto:1.8,1.0``
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.bench.experiments import run_experiment
from repro.bench.report import render_table
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ConfigurationError, ReproError
from repro.queries.language import ContinuousQuery
from repro.streams.delay import (
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    LognormalDelay,
    MixtureDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.streams.disorder import inject_disorder, measure_disorder
from repro.streams.generators import generate_stream
from repro.streams.io import read_trace, write_trace


def parse_delay_model(spec: str) -> DelayModel:
    """Parse a ``kind:params`` delay-model spec (see module docstring)."""
    kind, __, params = spec.partition(":")
    try:
        if kind == "const":
            return ConstantDelay(float(params))
        if kind == "uniform":
            low, high = (float(p) for p in params.split(","))
            return UniformDelay(low, high)
        if kind == "exp":
            return ExponentialDelay(float(params))
        if kind == "pareto":
            shape, scale = (float(p) for p in params.split(","))
            return ParetoDelay(shape=shape, scale=scale)
        if kind == "lognormal":
            mu, sigma = (float(p) for p in params.split(","))
            return LognormalDelay(mu=mu, sigma=sigma)
        if kind == "mix":
            components = []
            for part in params.split("|"):
                weight, __, inner = part.partition("*")
                components.append((float(weight), parse_delay_model(inner)))
            return MixtureDelay(components)
    except (ValueError, ConfigurationError) as error:
        raise ConfigurationError(f"bad delay spec {spec!r}: {error}") from error
    raise ConfigurationError(
        f"unknown delay model kind {kind!r} in {spec!r}; see --help"
    )


def cmd_generate(args: argparse.Namespace) -> int:
    """Generate a disordered trace and write it as CSV."""
    rng = np.random.default_rng(args.seed)
    keys = tuple(args.keys.split(",")) if args.keys else None
    stream = generate_stream(
        duration=args.duration, rate=args.rate, rng=rng, keys=keys
    )
    model = parse_delay_model(args.delay)
    arrived = inject_disorder(stream, model, rng)
    n = write_trace(args.out, arrived)
    stats = measure_disorder(arrived)
    print(
        f"wrote {n} elements to {args.out} "
        f"({stats.out_of_order_fraction:.1%} out of order, "
        f"max delay {stats.max_delay:.2f}s)"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run a windowed query (fluent flags) over a trace file."""
    stream = read_trace(args.trace)
    if any(element.arrival_time is None for element in stream):
        raise ConfigurationError(
            f"{args.trace} has elements without arrival timestamps; "
            "generate it with `repro generate` or inject disorder first"
        )
    query = (
        ContinuousQuery()
        .from_elements(stream)
        .window(SlidingWindowAssigner(size=args.window, slide=args.slide))
        .aggregate(args.aggregate)
    )
    if args.quality is not None:
        query = query.with_quality(args.quality)
    elif args.latency_budget is not None:
        query = query.with_latency_budget(args.latency_budget)
    elif args.slack is not None:
        query = query.with_slack(args.slack)
    elif args.max_delay_slack:
        query = query.with_max_delay_slack()
    else:
        query = query.without_buffering()
    query = query.mode(args.mode)
    if args.shards:
        query = query.shards(args.shards)
        if args.executor:
            query = query.executor(
                args.executor, chunk_size=args.chunk_size or None
            )
    elif args.executor:
        raise ConfigurationError("--executor requires --shards N")

    recorder = None
    if args.trace_out or args.trace_chrome:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
    run = query.run(assess=not args.no_assess, trace=recorder)
    print(f"elements  : {run.output.metrics.n_elements}")
    print(f"results   : {run.output.metrics.n_results}")
    print(f"latency   : mean {run.latency.mean:.3f}s  p95 {run.latency.p95:.3f}s")
    print(f"slack     : {run.handler.current_slack:.3f}s ({run.handler.describe()})")
    if run.report is not None:
        print(
            f"quality   : mean error {run.report.mean_error:.5f}  "
            f"p95 {run.report.p95_error:.5f}  recall {run.report.window_recall:.1%}"
        )
    if recorder is not None:
        if args.trace_out:
            from repro.obs.export import write_jsonl

            count = write_jsonl(recorder.events, args.trace_out)
            print(f"trace     : {count} events -> {args.trace_out}")
        if args.trace_chrome:
            from repro.obs.export import write_chrome_trace

            count = write_chrome_trace(recorder, args.trace_chrome)
            print(
                f"trace     : {count} Chrome entries -> {args.trace_chrome} "
                "(open at https://ui.perfetto.dev)"
            )
    if args.show_results:
        for result in run.results[: args.show_results]:
            print(
                f"  {result.key if result.key is not None else '-':<10} "
                f"{result.window}: {result.value:.4f} "
                f"(n={result.count}, lat={result.latency:.2f}s)"
            )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Run a SQL-dialect query over a trace file."""
    from repro.queries.sql import parse_query

    stream = read_trace(args.trace)
    if any(element.arrival_time is None for element in stream):
        raise ConfigurationError(
            f"{args.trace} has elements without arrival timestamps"
        )
    query = parse_query(args.sql).from_elements(stream)
    if args.sliced:
        query = query.sliced()
    if args.mode is not None:
        query = query.mode(args.mode)
    recorder = None
    if args.trace_out:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
    run = query.run(assess=not args.no_assess, trace=recorder)
    print(f"elements  : {run.output.metrics.n_elements}")
    print(f"results   : {run.output.metrics.n_results}")
    print(f"latency   : mean {run.latency.mean:.3f}s  p95 {run.latency.p95:.3f}s")
    print(f"slack     : {run.handler.current_slack:.3f}s ({run.handler.describe()})")
    if run.report is not None:
        print(
            f"quality   : mean error {run.report.mean_error:.5f}  "
            f"recall {run.report.window_recall:.1%}"
        )
    if recorder is not None:
        from repro.obs.export import write_jsonl

        count = write_jsonl(recorder.events, args.trace_out)
        print(f"trace     : {count} events -> {args.trace_out}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run evaluation experiments and print their tables."""
    from repro.bench.report import to_csv, to_json

    for experiment_id in args.ids:
        result = run_experiment(experiment_id, scale=args.scale)
        print(render_table(result))
        print()
        if args.out_dir:
            base = Path(args.out_dir) / result.experiment_id.lower()
            to_csv(result, base.with_suffix(".csv"))
            to_json(result, base.with_suffix(".json"))
            print(f"exported {base}.csv / {base}.json")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quality-driven continuous query execution over "
        "out-of-order data streams",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="generate a disordered trace")
    generate.add_argument("--duration", type=float, required=True)
    generate.add_argument("--rate", type=float, required=True)
    generate.add_argument("--delay", default="exp:0.5", help="delay model spec")
    generate.add_argument("--keys", default=None, help="comma-separated key names")
    generate.add_argument("--seed", type=int, default=42)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=cmd_generate)

    run = commands.add_parser("run", help="run a windowed query over a trace")
    run.add_argument("trace")
    run.add_argument("--window", type=float, required=True)
    run.add_argument("--slide", type=float, required=True)
    run.add_argument("--aggregate", default="mean")
    policy = run.add_mutually_exclusive_group()
    policy.add_argument("--quality", type=float, default=None, help="error target")
    policy.add_argument(
        "--latency-budget", type=float, default=None, help="slack bound (s)"
    )
    policy.add_argument("--slack", type=float, default=None, help="fixed K (s)")
    policy.add_argument(
        "--max-delay-slack", action="store_true", help="conservative MP-K-slack"
    )
    run.add_argument(
        "--mode",
        choices=["naive", "sliced", "tree"],
        default="naive",
        help="execution mode: naive per-window adds, shared slices, or "
        "partial-aggregate tree (O(log) closes and late patches)",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="partition execution across N keyed shards (per-shard "
        "handlers, deterministic merge; see docs/SCALING.md)",
    )
    run.add_argument(
        "--executor",
        choices=["thread", "process", "serial"],
        default=None,
        help="shard execution strategy (requires --shards); \"process\" "
        "uses a warm multi-core worker pool with chunked dispatch",
    )
    run.add_argument(
        "--chunk-size",
        type=int,
        default=0,
        metavar="N",
        help="elements per dispatched chunk for --executor process "
        "(default 512)",
    )
    run.add_argument("--no-assess", action="store_true", help="skip the oracle")
    run.add_argument(
        "--show-results", type=int, default=0, metavar="N", help="print first N rows"
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record a structured trace and write it as JSONL "
        "(inspect with `python -m repro.obs report`)",
    )
    run.add_argument(
        "--trace-chrome",
        default=None,
        metavar="PATH",
        help="record a structured trace and write Chrome trace_event JSON "
        "(open at https://ui.perfetto.dev)",
    )
    run.set_defaults(handler=cmd_run)

    sql = commands.add_parser(
        "query", help="run a SQL-dialect continuous query over a trace"
    )
    sql.add_argument("trace")
    sql.add_argument(
        "sql",
        help='e.g. "SELECT mean(value) FROM stream GROUP BY HOP(10, 2) '
        'WITH QUALITY 0.05"',
    )
    sql.add_argument("--sliced", action="store_true", help="sliced execution")
    sql.add_argument(
        "--mode",
        choices=["naive", "sliced", "tree"],
        default=None,
        help="execution mode (overrides --sliced when given)",
    )
    sql.add_argument("--no-assess", action="store_true", help="skip the oracle")
    sql.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="record a structured trace and write it as JSONL",
    )
    sql.set_defaults(handler=cmd_query)

    experiment = commands.add_parser("experiment", help="run evaluation experiments")
    experiment.add_argument("ids", nargs="+", help="experiment ids, e.g. E3 E6")
    experiment.add_argument("--scale", type=float, default=1.0)
    experiment.add_argument(
        "--out-dir", default=None, help="export each table as CSV and JSON"
    )
    experiment.set_defaults(handler=cmd_experiment)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via tests/main
    raise SystemExit(main())
