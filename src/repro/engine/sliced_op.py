"""Slice-based sliding-window aggregation (the panes optimization).

The naive :class:`~repro.engine.aggregate_op.WindowAggregateOperator` adds
every element to each of the ``size/slide`` windows covering it.  When the
slide divides the size, windows can instead be assembled from
non-overlapping **slices** of ``slide`` seconds: each element is added to
exactly one slice accumulator, and a closing window merges its
``size/slide`` constituent slices (Li et al.'s panes / Scotty-style
stream slicing).  Per-element work drops from O(size/slide) to O(1);
per-window work becomes one merge chain.

Semantics are identical to the naive operator — including late-element
behaviour: a late element lands in its slice, which already-closed windows
no longer read but still-open windows will; the equivalence is enforced by
property tests.  Requires a *mergeable* aggregate (every exact aggregate
in :mod:`repro.engine.aggregates` qualifies; P²/SpaceSaving sketches do
not).

Merge chains inherit the aggregates' compensated arithmetic (sum/mean
accumulators carry their Neumaier compensation term through ``merge``), so
slice assembly rounds identically to a direct fold up to re-association of
the compensation — see ``docs/NUMERICS.md``.  For retirement corrections,
``rolling_eviction=True`` opts into an O(1) drift-bounded sliding path
built on :class:`repro.core.numeric.RetractableSum` instead of the exact
O(size/slide) re-assembly.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

from repro.core.numeric import RetractableSum, neumaier_total
from repro.engine.aggregate_op import OperatorStats, relative_error
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import SlidingWindowAssigner, Window
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement

#: Aggregates whose retirement corrections can use the rolling-eviction
#: fast path: invertible folds whose window value is a function of the
#: span's (compensated) value sum and exact element count.
_ROLLING_AGGREGATES = ("sum", "mean", "count")


@dataclass(slots=True)
class _RollingSpan:
    """Per-key rolling retirement state (see ``rolling_eviction``).

    ``sum`` is a drift-bounded :class:`~repro.core.numeric.RetractableSum`
    over the value mass of slices ``[lo, hi]``; ``contrib`` remembers, per
    slice, exactly what was folded in (entry snapshot plus late patches),
    so eviction retracts precisely that contribution without re-reading
    slices the GC may already have dropped.
    """

    lo: int
    hi: int
    sum: RetractableSum
    count: int = 0
    contrib: dict[int, list] = field(default_factory=dict)


class SlicedWindowAggregateOperator(Operator):
    """Sliding-window aggregation over shared slices."""

    def __init__(
        self,
        assigner: SlidingWindowAssigner,
        aggregate: AggregateFunction,
        handler: DisorderHandler,
        feedback_horizon: float | None = None,
        track_feedback: bool = True,
        rolling_eviction: bool = False,
        rolling_drift_bound: float = 1e-9,
        rolling_resum_every: int = 64,
    ) -> None:
        if not isinstance(assigner, SlidingWindowAssigner):
            raise ConfigurationError(
                "sliced execution requires a sliding/tumbling window assigner"
            )
        ratio = assigner.size / assigner.slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError(
                "sliced execution requires slide to divide size "
                f"(got size={assigner.size}, slide={assigner.slide}); "
                "use WindowAggregateOperator for unaligned windows"
            )
        self.assigner = assigner
        self.aggregate = aggregate
        self.handler = handler
        self.slices_per_window = int(round(ratio))
        if feedback_horizon is None:
            feedback_horizon = 5.0 * assigner.size
        if feedback_horizon < 0:
            raise ConfigurationError(
                f"feedback_horizon must be non-negative, got {feedback_horizon}"
            )
        self.feedback_horizon = feedback_horizon
        self.track_feedback = track_feedback
        if rolling_eviction and aggregate.name not in _ROLLING_AGGREGATES:
            raise ConfigurationError(
                f"rolling_eviction supports invertible aggregates "
                f"{_ROLLING_AGGREGATES}, not {aggregate.name!r}"
            )
        # Opt-in O(1)-per-retirement correction path: instead of
        # re-merging all size/slide slices per retired window, keep a
        # per-key rolling sum that *evicts* the slices leaving the span.
        # Subtraction-based eviction is the classic numeric-drift trap
        # (lint rule R17), so it runs through RetractableSum: compensated
        # retraction plus an exact re-summation from the live slices
        # every ``rolling_resum_every`` evictions.  Corrected values may
        # differ from exact re-assembly within ``rolling_drift_bound``
        # relative drift; element counts (and hence emptiness decisions)
        # stay exact.  Default off: the exact path remains canonical.
        self.rolling_eviction = rolling_eviction
        self.rolling_drift_bound = rolling_drift_bound
        self.rolling_resum_every = rolling_resum_every
        self._rolling: dict[object, _RollingSpan] = {}
        self.stats = OperatorStats()

        # (key, slice_index) -> [accumulator, count]
        self._slices: dict[tuple[object, int], list] = {}
        # Slice garbage collection: heap of (expiry, seq, slot), where expiry
        # is the end of the slice's last containing window — GC pops instead
        # of scanning every retained slice per element.
        self._slice_gc_heap: list[tuple[float, int, tuple[object, int]]] = []
        # Pending window closes: heap of (end, seq, key); set for dedup.
        self._pending: list[tuple[float, int, object]] = []
        self._pending_set: set[tuple[object, float]] = set()
        self._heap_seq = 0
        # Emitted values awaiting feedback retirement: (key, end) -> value.
        self._emitted: dict[tuple[object, float], float] = {}
        self._emitted_heap: list[tuple[float, int, object]] = []
        self._close_frontier = float("-inf")
        self._last_arrival = 0.0

    # ------------------------------------------------------------------ #
    # helpers

    def _slice_of(self, timestamp: float) -> int:
        index = math.floor(timestamp / self.assigner.slide)
        # Guard the same FP edges assign() guards.
        while index * self.assigner.slide > timestamp:
            index -= 1
        while (index + 1) * self.assigner.slide <= timestamp:
            index += 1
        return index

    def _window_ends_of_slice(self, slice_index: int) -> list[float]:
        slide = self.assigner.slide
        return [
            (slice_index + 1 + offset) * slide
            for offset in range(self.slices_per_window)
        ]

    def _assemble(self, key: object, end: float) -> tuple[object, int]:
        """Merge the slices of the window ending at ``end`` (non-destructive)."""
        slide = self.assigner.slide
        last_slice = int(round(end / slide)) - 1
        accumulator = self.aggregate.create()
        count = 0
        for slice_index in range(last_slice - self.slices_per_window + 1, last_slice + 1):
            entry = self._slices.get((key, slice_index))
            if entry is not None:
                self.aggregate.merge(accumulator, entry[0])
                count += entry[1]
        return accumulator, count

    # ------------------------------------------------------------------ #
    # rolling-eviction retirement (opt-in; see __init__)

    def _slice_mass(self, key: object, slice_index: int) -> tuple[float, int]:
        """Current (value sum, count) contribution of one slice."""
        entry = self._slices.get((key, slice_index))
        if entry is None:
            return 0.0, 0
        if self.aggregate.name == "count":
            return 0.0, entry[1]
        # sum/mean accumulators lead with [total, compensation, ...].
        return neumaier_total(entry[0]), entry[1]

    def _span_values(self, key: object) -> list[float]:
        """Live value sums of the span's slices (RetractableSum resum hook).

        Also refreshes the recorded per-slice contributions, since after a
        re-summation the rolling state corresponds to the current totals.
        """
        state = self._rolling[key]
        values = []
        for slice_index in range(state.lo, state.hi + 1):
            mass, count = self._slice_mass(key, slice_index)
            recorded = state.contrib.get(slice_index)
            if recorded is not None:
                recorded[0] = mass
            values.append(mass)
        return values

    def _rolling_patch(self, key: object, slice_index: int, values: list) -> None:
        """Fold late arrivals into the rolling span they land inside."""
        state = self._rolling.get(key)
        if state is None or not state.lo <= slice_index <= state.hi:
            return
        if self.aggregate.name != "count":
            state.sum.add_many(values)
            contrib = state.contrib.setdefault(slice_index, [0.0, 0])
            for value in values:
                contrib[0] += value  # repro: numeric=reassoc - eviction bookkeeping, drift bounded by resum
        else:
            contrib = state.contrib.setdefault(slice_index, [0.0, 0])
        state.count += len(values)
        contrib[1] += len(values)

    def _rolling_corrected(self, key: object, end: float) -> float:
        """Drift-bounded corrected value for the window ending at ``end``."""
        target_hi = int(round(end / self.assigner.slide)) - 1
        target_lo = target_hi - self.slices_per_window + 1
        state = self._rolling.get(key)
        if state is None or target_lo > state.hi or target_hi < state.hi:
            state = _RollingSpan(
                lo=target_lo,
                hi=target_lo - 1,
                sum=RetractableSum(
                    resum=lambda k=key: self._span_values(k),
                    drift_bound=self.rolling_drift_bound,
                    resum_every=self.rolling_resum_every,
                ),
            )
            self._rolling[key] = state
        for slice_index in range(state.hi + 1, target_hi + 1):
            mass, count = self._slice_mass(key, slice_index)
            state.sum.add(mass)
            state.count += count
            state.contrib[slice_index] = [mass, count]
        state.hi = target_hi
        for slice_index in range(state.lo, target_lo):
            recorded = state.contrib.pop(slice_index, None)
            # Shrink the span *before* retracting: if the retraction
            # triggers the periodic re-summation, the rebuild must read
            # exactly the slices still covered (minus this one).
            state.lo = slice_index + 1
            if recorded is not None:
                state.sum.retract(recorded[0])
                state.count -= recorded[1]  # repro: numeric=exact - integer counts
        state.lo = target_lo
        if state.count == 0:
            return math.nan
        if self.aggregate.name == "sum":
            return state.sum.value
        if self.aggregate.name == "mean":
            return state.sum.value / state.count
        return float(state.count)

    # ------------------------------------------------------------------ #
    # ingestion

    def _touch_slice(self, key: object, slice_index: int) -> list:
        """Get-or-create the slice accumulator, registering window closes."""
        slot = (key, slice_index)
        entry = self._slices.get(slot)
        if entry is None:
            entry = [self.aggregate.create(), 0]
            self._slices[slot] = entry
            self._heap_seq += 1
            heapq.heappush(
                self._slice_gc_heap,
                (
                    (slice_index + self.slices_per_window) * self.assigner.slide,
                    self._heap_seq,
                    slot,
                ),
            )
            for end in self._window_ends_of_slice(slice_index):
                if end <= self._close_frontier:
                    continue  # that window already closed
                pending_key = (key, end)
                if pending_key not in self._pending_set:
                    self._pending_set.add(pending_key)
                    self._heap_seq += 1
                    heapq.heappush(self._pending, (end, self._heap_seq, key))
        return entry

    def _late_window_count(self, slice_index: int) -> int:
        """Late accounting mirrors the naive operator: one drop per
        already-closed window containing the element."""
        if self._close_frontier == float("-inf"):
            return 0
        late = 0
        size = self.assigner.size
        for end in self._window_ends_of_slice(slice_index):
            if end <= self._close_frontier and end - size >= 0:
                late += 1
        return late

    def _ingest(self, element: StreamElement) -> None:
        slice_index = self._slice_of(element.event_time)
        entry = self._touch_slice(element.key, slice_index)
        self.stats.late_dropped += self._late_window_count(slice_index)
        self.aggregate.add(entry[0], element.value)
        entry[1] += 1
        if self.rolling_eviction:
            self._rolling_patch(element.key, slice_index, [element.value])

    # ------------------------------------------------------------------ #
    # lifecycle

    def _close_windows(
        self, frontier: float, emit_time: float, flushed: bool = False
    ) -> list[WindowResult]:
        results = []
        while self._pending and self._pending[0][0] <= frontier:
            end, __, key = heapq.heappop(self._pending)
            self._pending_set.discard((key, end))
            start = end - self.assigner.size
            if start < 0:
                continue
            accumulator, count = self._assemble(key, end)
            if count == 0:
                continue
            value = self.aggregate.result(accumulator)
            results.append(
                WindowResult(
                    key=key,
                    window=Window(start, end),
                    value=value,
                    count=count,
                    emit_time=emit_time,
                    latency=emit_time - end,
                    flushed=flushed,
                )
            )
            if self.track_feedback:
                self._emitted[(key, end)] = value
                self._heap_seq += 1
                heapq.heappush(self._emitted_heap, (end, self._heap_seq, key))
        if frontier > self._close_frontier:
            self._close_frontier = frontier
        self.stats.results_out += len(results)
        return results

    def _retire(self, frontier: float) -> None:
        if self.track_feedback:
            retire_before = frontier - self.feedback_horizon
            while self._emitted_heap and self._emitted_heap[0][0] <= retire_before:
                end, __, key = heapq.heappop(self._emitted_heap)
                emitted = self._emitted.pop((key, end), None)
                if emitted is None:
                    continue
                if self.rolling_eviction:
                    corrected = self._rolling_corrected(key, end)
                else:
                    accumulator, count = self._assemble(key, end)
                    corrected = (
                        self.aggregate.result(accumulator) if count else math.nan
                    )
                error = relative_error(emitted, corrected)
                self.stats.observed_errors.append(error)
                self.handler.observe_error(error)
        # Drop slices no window (open or retiring) can still read: slice i's
        # last containing window ends at (i + slices_per_window) * slide.
        horizon = self.feedback_horizon if self.track_feedback else 0.0
        threshold = frontier - horizon
        gc_heap = self._slice_gc_heap
        slices = self._slices
        while gc_heap and gc_heap[0][0] <= threshold:
            __, __, slot = heapq.heappop(gc_heap)
            slices.pop(slot, None)

    # ------------------------------------------------------------------ #
    # Operator protocol

    def process(self, element: StreamElement) -> list[WindowResult]:
        self.stats.elements_in += 1
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        emit_time = self._last_arrival
        for out in self.handler.offer(element):
            self._ingest(out)
        frontier = self.handler.frontier
        results = self._close_windows(frontier, emit_time)
        self._retire(frontier)
        return results

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Batched ingest: equivalent to ``process`` element-for-element.

        Released elements are grouped by (key, slice); each group's values
        fold into the slice accumulator once per close/retire boundary via
        ``add_many``.  Per-element frontier checkpoints from the handler
        replay closes and retirement at exactly the scalar steps.
        """
        if not elements:
            return []
        self.stats.elements_in += len(elements)
        released, checkpoints = self.handler.offer_many(elements)
        aggregate = self.aggregate
        pending = self._pending
        emitted_heap = self._emitted_heap
        gc_heap = self._slice_gc_heap
        track = self.track_feedback
        feedback_horizon = self.feedback_horizon
        gc_horizon = feedback_horizon if track else 0.0
        slice_of = self._slice_of
        results: list[WindowResult] = []
        last_arrival = self._last_arrival
        # group: [slice_entry, values, late_count]
        groups: dict[tuple[object, int], list] = {}
        get_group = groups.get

        rolling = self.rolling_eviction

        def flush_groups() -> None:
            for (group_key, slice_index), group in groups.items():
                values = group[1]
                if values:
                    entry = group[0]
                    aggregate.add_many(entry[0], values)
                    entry[1] += len(values)
                    if rolling:
                        self._rolling_patch(group_key, slice_index, values)
            groups.clear()

        prev_offset = 0
        for index, element in enumerate(elements):
            arrival = element.arrival_time
            if arrival is not None and arrival > last_arrival:
                last_arrival = arrival
            end_offset, frontier = checkpoints[index]
            while prev_offset < end_offset:
                out = released[prev_offset]
                prev_offset += 1
                slice_index = slice_of(out.event_time)
                group_key = (out.key, slice_index)
                group = get_group(group_key)
                if group is None:
                    entry = self._touch_slice(out.key, slice_index)
                    groups[group_key] = group = [
                        entry,
                        [],
                        self._late_window_count(slice_index),
                    ]
                group[1].append(out.value)
                if group[2]:
                    self.stats.late_dropped += group[2]
            if frontier > self._close_frontier:
                if pending and pending[0][0] <= frontier:
                    flush_groups()
                    results.extend(self._close_windows(frontier, last_arrival))
                else:
                    self._close_frontier = frontier
                if (
                    track
                    and emitted_heap
                    and emitted_heap[0][0] <= frontier - feedback_horizon
                ) or (gc_heap and gc_heap[0][0] <= frontier - gc_horizon):
                    flush_groups()
                    self._retire(frontier)
        flush_groups()
        self._last_arrival = last_arrival
        return results

    def finish(self) -> list[WindowResult]:
        emit_time = self._last_arrival
        for out in self.handler.flush():
            self._ingest(out)
        results = self._close_windows(float("inf"), emit_time, flushed=True)
        self._retire(float("inf"))
        return results

    def slice_count(self) -> int:
        """Currently retained slice accumulators (memory proxy)."""
        return len(self._slices)
