"""Sharded parallel execution: keyed partitioning with a deterministic merge.

:class:`ShardedWindowOperator` partitions an arrival-ordered stream across
``n`` worker shards by a routing key.  Each shard runs a completely
independent operator — its own execution mode (naive/sliced/tree), its own
disorder handler built fresh from a factory (so adaptive AQ-K state never
crosses shards), and its own per-shard event-time frontier.  When the
stream ends, a :class:`ShardExecutor` runs every non-empty shard to
completion and a deterministic merge stage combines the per-shard window
results with the existing mergeable-aggregate machinery
(:meth:`~repro.engine.aggregates.AggregateFunction.merge`).

Semantics (the *shard contract*, documented in ``docs/SCALING.md``):

* Elements are routed by key, so a keyed window ``(key, window)`` normally
  lives in exactly one shard and its merged value is the shard's value,
  bit for bit.  When one logical group spans shards (unkeyed streams are
  routed round-robin), the merge folds the captured per-shard accumulators
  in shard order — bit-identical for exact aggregates (count/min/max),
  within the declared ``__numeric__`` drift budget for compensated ones.
* A merged window closes at the **minimum frontier across the non-empty
  shards**: its emit time is the arrival instant at which the *last*
  shard's frontier passed the window end, and windows some shard never
  closed are flushed at stream end.  Shard frontiers only ever lag the
  global frontier, so sharded execution is at least as complete as
  unsharded execution (it drops no element an unsharded run would keep).
* The merged output is in canonical order: ``(emit_time, flushed,
  window.end, window.start, key)``.

Threading: the coordinator (the pipeline thread) only routes during the
run; shard operators are created, driven and finished entirely inside
their worker, and the coordinator reads shard state only after the worker
joined.  That initialise-then-publish shape is exactly what the RaceSan
lockset refinement admits, so per-shard sanitizers run clean.  The
:class:`ShardExecutor` interface deals only in picklable
:class:`ShardTask` inputs plus a callable, so a process-pool executor can
slot in behind the same seam later.
"""

from __future__ import annotations

import os
import queue
import threading
import zlib
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, cast

from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import WindowAssigner
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement
from repro.streams.timebase import ArrivalTimeStamp, DurationS, EventTimeStamp

__all__ = [
    "ShardExecutor",
    "ShardRunner",
    "ShardTask",
    "ShardedHandlerView",
    "ShardedWindowOperator",
    "ThreadShardExecutor",
    "stable_shard",
]

#: Hard cap on the shard count: one thread per shard, and far past the
#: point where per-shard windows are too sparse to be useful.
MAX_SHARDS = 64


def stable_shard(routing_key: object, n_shards: int) -> int:
    """Deterministic shard index for a routing key.

    Python's builtin ``hash`` is salted per process, which would re-route
    every key on every run; CRC-32 of the key's ``repr`` is stable across
    processes and Python versions, so shard assignment is part of the
    reproducible configuration rather than an accident of the interpreter.
    """
    return zlib.crc32(repr(routing_key).encode("utf-8")) % n_shards


# --------------------------------------------------------------------- #
# partial capture: keep the mergeable accumulator alongside the float


class _ShardPartial(float):
    """A window value that remembers the accumulator it came from.

    Per-shard results must stay ordinary floats — the quality feedback
    loop scores them, latency summaries read them — but the merge stage
    needs the *mergeable state* behind the value to combine groups that
    span shards.  A float subclass carries both without widening the
    :class:`~repro.engine.operator.WindowResult` schema.
    """

    __concurrency__ = "immutable"
    __slots__ = ("accumulator",)

    accumulator: Any

    def __new__(cls, value: float, accumulator: Any) -> "_ShardPartial":
        self = super().__new__(cls, value)
        self.accumulator = accumulator
        return self

    def __reduce__(self) -> tuple[Any, ...]:
        # float's default pickling calls __new__(cls, value) without the
        # accumulator; spell out both arguments so per-shard results can
        # cross the process boundary intact.
        return (type(self), (float(self), self.accumulator))


def _snapshot(accumulator: Any) -> Any:
    """Copy an accumulator so the merge stage owns it outright."""
    if isinstance(accumulator, list):
        return list(accumulator)
    if isinstance(accumulator, set):
        return set(accumulator)
    import copy

    return copy.deepcopy(accumulator)


class _PartialCaptureAggregate:
    """Delegating aggregate whose ``result`` tags values with their state.

    Not an :class:`AggregateFunction` subclass on purpose: instances are
    created per shard with an instance-dependent numeric discipline, and
    the static numeric inventory requires literal ``__numeric__``
    declarations on the real lineage.  The per-discipline subclasses below
    carry the literal the NumSan shadow resolves at type level, so
    ``run_pipeline(sanitize="numeric")`` budgets shard results exactly as
    it budgets the inner aggregate.
    """

    __concurrency__ = "immutable"
    __slots__ = ("inner", "name", "error_model_kind")

    def __init__(self, inner: AggregateFunction) -> None:
        self.inner = inner
        self.name = inner.name
        self.error_model_kind = inner.error_model_kind

    def create(self) -> Any:
        return self.inner.create()

    def add(self, accumulator: Any, value: float) -> None:
        self.inner.add(accumulator, value)

    def add_many(self, accumulator: Any, values: list[float]) -> None:
        self.inner.add_many(accumulator, values)

    def merge(self, accumulator: Any, other: Any) -> Any:
        return self.inner.merge(accumulator, other)

    def result(self, accumulator: Any) -> float:
        return _ShardPartial(
            self.inner.result(accumulator), _snapshot(accumulator)
        )

    def describe(self) -> str:
        return f"shard-capture({self.inner.describe()})"


class _PartialCaptureExact(_PartialCaptureAggregate):
    __numeric__ = "exact"


class _PartialCaptureCompensated(_PartialCaptureAggregate):
    __numeric__ = "compensated"


class _PartialCaptureReassoc(_PartialCaptureAggregate):
    __numeric__ = "reassoc-tolerant"


_CAPTURE_BY_DISCIPLINE: dict[str, type[_PartialCaptureAggregate]] = {
    "exact": _PartialCaptureExact,
    "compensated": _PartialCaptureCompensated,
    "reassoc-tolerant": _PartialCaptureReassoc,
}


def _capture_wrapper(inner: AggregateFunction) -> _PartialCaptureAggregate:
    """Wrap ``inner`` in the capture class matching its discipline."""
    discipline = getattr(type(inner), "__numeric__", None)
    wrapper_class = _CAPTURE_BY_DISCIPLINE.get(
        discipline if isinstance(discipline, str) else ""
    )
    if wrapper_class is None:
        raise ConfigurationError(
            f"cannot shard aggregate {type(inner).__name__}: it declares "
            f"no known __numeric__ discipline ({discipline!r})"
        )
    return wrapper_class(inner)


# --------------------------------------------------------------------- #
# shard tasks, outcomes and the executor seam


@dataclass(frozen=True, slots=True)
class ShardTask:
    """One shard's unit of work: its id and its routed element slice."""

    __concurrency__ = "immutable"

    shard_id: int
    elements: tuple[StreamElement, ...]


@dataclass(slots=True)
class _ShardRun:
    """Everything one shard worker reports back to the coordinator.

    Built entirely inside the worker thread and only read after the join
    (initialise-then-publish), so no field needs a lock.
    """

    __concurrency__ = "single-thread"

    shard_id: int
    results: list[WindowResult]
    elements_in: int
    late_dropped: int
    observed_errors: list[float]
    #: Parallel arrays: arrival instants at which the shard frontier
    #: advanced, and the frontier value it advanced to (strictly
    #: increasing), for emit-time reconstruction in the merge stage.
    frontier_arrivals: list[ArrivalTimeStamp]
    frontier_values: list[EventTimeStamp]
    #: The shard frontier just before the end-of-stream flush.
    final_frontier: EventTimeStamp
    current_slack: DurationS
    max_buffered: int
    released: int
    #: Worker-recorded trace events (process executors only; the thread
    #: path traces through the coordinator's recorder directly).  The
    #: coordinator re-timestamps these into its own wall clock at merge.
    trace_events: list[Any] = field(default_factory=list)
    #: Worker-side telemetry counters (``chunks``, ``wire_bytes``, ...)
    #: merged into the coordinator registry under ``shard.<id>.*``.
    metric_deltas: dict[str, float] = field(default_factory=dict)


class ShardRunner:
    """Incremental driver for one shard's pipeline.

    The single definition of what "running a shard" means, shared by
    every executor: the thread path feeds a whole :class:`ShardTask` at
    once, the process-pool workers feed decoded chunks as they arrive
    over the wire.  Both end with :meth:`finish`, so per-shard semantics
    (sanitizer wrapping, frontier-timeline capture, stats snapshot) are
    identical across executors by construction.
    """

    __concurrency__ = "single-thread"

    def __init__(
        self,
        shard_id: int,
        mode: str,
        assigner: WindowAssigner,
        aggregate: AggregateFunction,
        handler: DisorderHandler,
        feedback_horizon: DurationS | None = None,
        track_feedback: bool = True,
        sanitize: str | None = None,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        from repro.engine.partial_tree import make_window_operator

        self.shard_id = shard_id
        self._handler = handler
        operator = make_window_operator(
            mode,
            assigner,
            cast(AggregateFunction, _capture_wrapper(aggregate)),
            handler,
            feedback_horizon=feedback_horizon,
            track_feedback=track_feedback,
        )
        self._stats = getattr(operator, "stats")
        if tracer.enabled:
            set_tracer = getattr(operator, "set_tracer", None)
            if set_tracer is not None:
                set_tracer(tracer)
        driven: Any = operator
        if sanitize == "stream":
            from repro.analysis.sanitizer import SanitizerConfig, SanitizingOperator

            driven = SanitizingOperator(operator, SanitizerConfig())
        elif sanitize == "race":
            from repro.analysis.concur.racesan import RaceSan

            driven = RaceSan().guard_operator(operator)
        elif sanitize == "numeric":
            from repro.analysis.numeric.numsan import NumSan

            driven = NumSan().guard_operator(operator)
        self._driven = driven
        self._results: list[WindowResult] = []
        self._frontier_arrivals: list[ArrivalTimeStamp] = []
        self._frontier_values: list[EventTimeStamp] = []
        self._last_frontier: EventTimeStamp = float("-inf")
        self._last_arrival: ArrivalTimeStamp = float("-inf")
        self._elements_in = 0
        self._finished = False

    def feed(self, elements: Sequence[StreamElement]) -> None:
        """Drive a slice of the shard's stream, in arrival order."""
        process = self._driven.process
        handler = self._handler
        for element in elements:
            arrival = element.arrival_time
            if arrival is not None and arrival > self._last_arrival:
                self._last_arrival = arrival
            emitted = process(element)
            if emitted:
                self._results.extend(emitted)
            frontier = handler.frontier
            if frontier > self._last_frontier:
                self._last_frontier = frontier
                self._frontier_arrivals.append(
                    arrival if arrival is not None else self._last_arrival
                )
                self._frontier_values.append(frontier)
        self._elements_in += len(elements)

    def finish(self) -> _ShardRun:
        """Flush the shard operator and snapshot everything it reports."""
        if self._finished:
            raise ConfigurationError(
                f"shard {self.shard_id} was already finished"
            )
        self._finished = True
        final_frontier = self._last_frontier
        self._results.extend(self._driven.finish())
        handler = self._handler
        return _ShardRun(
            shard_id=self.shard_id,
            results=self._results,
            elements_in=self._elements_in,
            late_dropped=self._stats.late_dropped,
            observed_errors=list(self._stats.observed_errors),
            frontier_arrivals=self._frontier_arrivals,
            frontier_values=self._frontier_values,
            final_frontier=final_frontier,
            current_slack=handler.current_slack,
            max_buffered=handler.max_buffered_count(),
            released=handler.released_count(),
        )


class ShardExecutor:
    """Seam between the coordinator and however shards actually run.

    The contract is deliberately narrow — ``run(fn, tasks)`` returns
    ``fn(task)`` for every task, in task order, re-raising the first
    failure by shard order — so a process-pool implementation (tasks are
    frozen and element tuples are picklable) can replace the thread pool
    without touching the operator.
    """

    __concurrency__ = "single-thread"

    #: Streaming executors (the process pool) receive chunks during the
    #: run through ``begin``/``dispatch``/``collect`` instead of whole
    #: tasks at finish; the coordinator branches on this attribute.
    streaming = False

    def run(
        self,
        fn: Callable[[ShardTask], _ShardRun],
        tasks: Sequence[ShardTask],
    ) -> list[_ShardRun]:
        """Run every task to completion; default is in-line execution."""
        return [fn(task) for task in tasks]

    def describe(self) -> str:
        """Label the execution strategy for reports."""
        return "serial"


class ThreadShardExecutor(ShardExecutor):
    """A bounded pool of worker threads carrying the shard tasks.

    Threads carry the shards concurrently on free-threaded builds; under
    the GIL they interleave, and the sharded speedup comes from the
    per-shard operators doing algorithmically less work (see
    ``docs/SCALING.md``).  Worker exceptions are captured and re-raised
    on the coordinator, lowest shard id first, after every thread joined.

    Args:
        max_workers: Thread-count cap.  Defaults to
            ``min(n_tasks, os.cpu_count())`` — one thread per shard was
            pure oversubscription beyond the core count: past it, extra
            threads only add GIL handoffs and scheduler churn without any
            shard finishing sooner.
    """

    __concurrency__ = "single-thread"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and (
            not isinstance(max_workers, int)
            or isinstance(max_workers, bool)
            or max_workers < 1
        ):
            raise ConfigurationError(
                f"max_workers must be a positive int or None, got {max_workers!r}"
            )
        self.max_workers = max_workers

    def worker_count(self, n_tasks: int) -> int:
        """Number of threads a run over ``n_tasks`` shards will start."""
        cap = self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        return max(1, min(n_tasks, cap))

    def run(
        self,
        fn: Callable[[ShardTask], _ShardRun],
        tasks: Sequence[ShardTask],
    ) -> list[_ShardRun]:
        """Run all shard tasks on a bounded thread pool and join it."""
        outcomes: list[_ShardRun | None] = [None] * len(tasks)
        failures: list[BaseException | None] = [None] * len(tasks)
        pending: "queue.SimpleQueue[int]" = queue.SimpleQueue()
        for index in range(len(tasks)):
            pending.put(index)

        def worker() -> None:
            while True:
                try:
                    index = pending.get_nowait()
                except queue.Empty:
                    return
                try:
                    outcomes[index] = fn(tasks[index])
                except BaseException as error:  # noqa: BLE001 — re-raised below
                    failures[index] = error

        threads = [
            threading.Thread(target=worker, name=f"repro-shard-worker-{i}")
            for i in range(self.worker_count(len(tasks)))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for failure in failures:
            if failure is not None:
                raise failure
        return cast("list[_ShardRun]", outcomes)

    def describe(self) -> str:
        """Label the execution strategy for reports."""
        return "threads"


# --------------------------------------------------------------------- #
# the handler facade the pipeline instrumentation sees


class ShardedHandlerView:
    """Aggregated handler facade over all per-shard disorder handlers.

    The pipeline (and the CLI report) read slack, frontier and buffer
    occupancy from ``operator.handler``; with one handler per shard there
    is no single object to point at, so this view presents the combined
    picture: the minimum frontier (the merge gate), the maximum slack,
    summed buffer counts.  During the run everything routed is "buffered"
    (shards execute at finish); afterwards the view reports the joined
    per-shard totals.
    """

    __concurrency__ = "single-thread"

    def __init__(self, n_shards: int, prototype: DisorderHandler) -> None:
        self._n_shards = n_shards
        self._prototype = prototype
        self._routed = 0
        self._finished = False
        self._frontier: EventTimeStamp = float("-inf")
        self._slack: DurationS = prototype.current_slack
        self._max_buffered = 0
        self._released = 0
        self.target = getattr(prototype, "target", None)

    # -- coordinator bookkeeping ------------------------------------- #

    def _note_routed(self, count: int) -> None:
        self._routed += count

    def _finalize(self, runs: Sequence[_ShardRun]) -> None:
        self._finished = True
        if runs:
            self._frontier = min(run.final_frontier for run in runs)
            self._slack = max(run.current_slack for run in runs)
            self._max_buffered = sum(run.max_buffered for run in runs)
            self._released = sum(run.released for run in runs)

    # -- the handler surface the pipeline and CLI read ---------------- #

    @property
    def frontier(self) -> EventTimeStamp:
        """Minimum final frontier across non-empty shards (merge gate)."""
        return self._frontier

    @property
    def current_slack(self) -> DurationS:
        """Largest slack any shard handler settled on."""
        return self._slack

    def buffered_count(self) -> int:
        """Elements routed but not yet executed (0 after finish)."""
        return 0 if self._finished else self._routed

    def max_buffered_count(self) -> int:
        """Summed per-shard buffer high-water marks."""
        return self._max_buffered if self._finished else self._routed

    def released_count(self) -> int:
        """Total elements the shard handlers released downstream."""
        return self._released

    def next_adaptation_offset(
        self, elements: list[StreamElement], start: int, stop: int
    ) -> int | None:
        """No global adaptation boundaries: shards adapt internally."""
        return None

    def observe_error(self, error: float) -> None:
        """Quality feedback is consumed per shard; nothing to do here."""

    def describe(self) -> str:
        """Label the sharded configuration, e.g. ``sharded(4)xK=1s``."""
        return f"sharded({self._n_shards})x{self._prototype.describe()}"


# --------------------------------------------------------------------- #
# the sharded operator


@dataclass(frozen=True, slots=True)
class _MergedGroup:
    """Intermediate merge record for one ``(key, window)`` group."""

    __concurrency__ = "immutable"

    result: WindowResult
    shards: int


class ShardedWindowOperator(Operator):
    """Keyed sharded pipeline runner with a deterministic merge stage.

    Args:
        n_shards: Number of shards (1..``MAX_SHARDS``).  One shard is a
            valid configuration and produces results bit-identical to the
            unsharded operator (property-tested), which is what makes the
            merge stage testable in isolation.
        assigner: Window assigner shared by every shard.
        aggregate: The user's aggregate.  Shards fold into a capture
            wrapper so the merge stage can combine per-shard accumulators
            with :meth:`AggregateFunction.merge`.
        handler_factory: Zero-argument callable producing a **fresh**
            disorder handler per shard.  Handlers are single-threaded
            state machines; sharing one instance across shards is a
            configuration error the query builder rejects.
        mode: Per-shard execution mode (``"naive"``/``"sliced"``/``"tree"``).
        key_fn: Routing key function.  Defaults to the element key;
            elements whose routing key is ``None`` are distributed
            round-robin (deterministic in arrival order).
        executor: Shard execution strategy; defaults to
            :class:`ThreadShardExecutor`.
        feedback_horizon: Passed through to every shard operator.
        track_feedback: Passed through to every shard operator.

    The operator is two-phase: ``process``/``process_many`` only route
    (cheap, coordinator-thread-only), and ``finish`` executes all shards
    through the executor, merges, and emits everything in canonical
    order.  All cross-thread state is handed over at the executor seam.
    """

    __concurrency__ = "single-thread"

    def __init__(
        self,
        n_shards: int,
        assigner: WindowAssigner,
        aggregate: AggregateFunction,
        handler_factory: Callable[[], DisorderHandler],
        mode: str = "naive",
        key_fn: Callable[[StreamElement], object] | None = None,
        executor: ShardExecutor | None = None,
        feedback_horizon: DurationS | None = None,
        track_feedback: bool = True,
    ) -> None:
        if not isinstance(n_shards, int) or isinstance(n_shards, bool):
            raise ConfigurationError(
                f"n_shards must be an int, got {n_shards!r}"
            )
        if not 1 <= n_shards <= MAX_SHARDS:
            raise ConfigurationError(
                f"n_shards must be in 1..{MAX_SHARDS}, got {n_shards}"
            )
        self._n_shards = n_shards
        self._assigner = assigner
        self._aggregate = aggregate
        self._handler_factory = handler_factory
        self._mode = mode
        self._key_fn = key_fn
        self._executor = executor if executor is not None else ThreadShardExecutor()
        self._feedback_horizon = feedback_horizon
        self._track_feedback = track_feedback
        # Validate the mode/assigner/aggregate combination eagerly — the
        # prototype also supplies the handler facade's label and target.
        from repro.engine.partial_tree import make_window_operator

        prototype_handler = handler_factory()
        make_window_operator(
            mode,
            assigner,
            cast(AggregateFunction, _capture_wrapper(aggregate)),
            prototype_handler,
            feedback_horizon=feedback_horizon,
            track_feedback=track_feedback,
        )
        self.handler = ShardedHandlerView(n_shards, prototype_handler)
        self.stats = _MergedStats()
        self.tracer: Tracer = NULL_TRACER
        self._pending: list[list[StreamElement]] = [[] for _ in range(n_shards)]
        self._round_robin = 0
        self._last_arrival: ArrivalTimeStamp = float("-inf")
        self._sanitize: str | None = None
        self._registry: MetricsRegistry | None = None
        self._finished = False
        # Streaming executors (the process pool) receive element chunks
        # during the run; everything crossing the boundary must pickle, so
        # picklability is checked here at build time (clear error) rather
        # than at first dispatch (opaque pickle traceback mid-run).
        self._streaming = bool(self._executor.streaming)
        self._streaming_started = False
        self._chunk_size = int(getattr(self._executor, "chunk_size", 0) or 0)
        self._chunks_sent = [0] * n_shards
        self._elements_sent = [0] * n_shards
        if self._streaming:
            validate = getattr(self._executor, "validate", None)
            if validate is not None:
                validate(assigner, aggregate, prototype_handler)

    # -- pipeline hooks ------------------------------------------------ #

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer for the coordinator-side shard events.

        Shard workers run untraced: the recorder is a single-thread
        object, so the coordinator emits ``shard.ingest``/``shard.merge``
        records itself instead of sharing the recorder across workers.
        """
        self.tracer = tracer

    def configure_sanitizer(self, kind: str) -> None:
        """Arrange for each shard operator to run under a sanitizer.

        Called by ``run_pipeline(sanitize=...)`` instead of wrapping the
        coordinator: sanitizers assume the scalar operator protocol (one
        element in, results out), which the two-phase coordinator does
        not follow, while each shard operator follows it exactly.
        """
        if kind not in ("stream", "race", "numeric"):
            raise ConfigurationError(
                f"unknown sanitizer {kind!r} for sharded execution; "
                'expected "stream", "race" or "numeric"'
            )
        self._sanitize = kind

    def set_registry(self, registry: MetricsRegistry) -> None:
        """Publish per-shard metrics into ``registry`` at finish."""
        self._registry = registry

    # -- routing ------------------------------------------------------- #

    def _route(self, element: StreamElement) -> int:
        routing_key = (
            self._key_fn(element) if self._key_fn is not None else element.key
        )
        if routing_key is None:
            shard = self._round_robin
            self._round_robin = (shard + 1) % self._n_shards
            return shard
        return stable_shard(routing_key, self._n_shards)

    def process(self, element: StreamElement) -> list[WindowResult]:
        """Route one element to its shard; results all come from finish."""
        shard = self._route(element)
        self._pending[shard].append(element)
        arrival = element.arrival_time
        if arrival is not None and arrival > self._last_arrival:
            self._last_arrival = arrival
        self.handler._note_routed(1)
        self.stats.elements_in += 1
        if self._streaming and 0 < self._chunk_size <= len(self._pending[shard]):
            self._dispatch_shard(shard)
        return []

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Route a chunk; equivalent to ``process`` element by element."""
        route = self._route
        pending = self._pending
        for element in elements:
            pending[route(element)].append(element)
            arrival = element.arrival_time
            if arrival is not None and arrival > self._last_arrival:
                self._last_arrival = arrival
        self.handler._note_routed(len(elements))
        self.stats.elements_in += len(elements)
        if self._streaming and self._chunk_size > 0:
            for shard in range(self._n_shards):
                if len(pending[shard]) >= self._chunk_size:
                    self._dispatch_shard(shard)
        return []

    # -- streaming dispatch (process-pool executors) -------------------- #

    def _start_streaming(self) -> None:
        """Warm up the streaming executor with this run's shard spec."""
        from repro.engine.checkpoint import dumps_state
        from repro.engine.process_pool import ShardSpec

        spec = ShardSpec(
            n_shards=self._n_shards,
            mode=self._mode,
            assigner=self._assigner,
            aggregate=self._aggregate,
            handler_blob=dumps_state(self._handler_factory()),
            feedback_horizon=self._feedback_horizon,
            track_feedback=self._track_feedback,
            sanitize=self._sanitize,
            trace_enabled=self.tracer.enabled,
            trace_detail=self.tracer.detail,
        )
        self._executor.begin(spec)
        self._streaming_started = True

    def _dispatch_shard(self, shard_id: int) -> None:
        """Ship one shard's pending elements as an encoded chunk."""
        elements = self._pending[shard_id]
        if not elements:
            return
        self._pending[shard_id] = []
        if not self._streaming_started:
            self._start_streaming()
        n_bytes = self._executor.dispatch(shard_id, elements)
        chunk = self._chunks_sent[shard_id]
        self._chunks_sent[shard_id] = chunk + 1
        self._elements_sent[shard_id] += len(elements)
        if self.tracer.enabled:
            self.tracer.shard_dispatch(
                self._last_arrival, shard_id, chunk, len(elements), n_bytes
            )

    def _finish_streaming(self, tracer: Tracer) -> list[_ShardRun]:
        """Flush remaining chunks and join every worker-side shard run."""
        for shard_id in range(self._n_shards):
            if self._pending[shard_id]:
                self._dispatch_shard(shard_id)
        self._pending = [[] for _ in range(self._n_shards)]
        if not self._streaming_started:
            return []
        if tracer.enabled:
            for shard_id, count in enumerate(self._elements_sent):
                if count:
                    tracer.shard_ingest(self._last_arrival, shard_id, count)
        runs = self._executor.collect()
        if tracer.enabled:
            for run in runs:
                tracer.absorb(run.trace_events)
                tracer.shard_collect(
                    self._last_arrival,
                    run.shard_id,
                    len(run.results),
                    len(run.trace_events),
                    self._chunks_sent[run.shard_id],
                )
        return runs

    # -- shard execution ----------------------------------------------- #

    def _run_shard(self, task: ShardTask) -> _ShardRun:
        """Execute one shard to completion (runs on a worker thread)."""
        runner = ShardRunner(
            task.shard_id,
            self._mode,
            self._assigner,
            self._aggregate,
            self._handler_factory(),
            feedback_horizon=self._feedback_horizon,
            track_feedback=self._track_feedback,
            sanitize=self._sanitize,
        )
        runner.feed(task.elements)
        return runner.finish()

    # -- merge --------------------------------------------------------- #

    @staticmethod
    def _crossing_arrival(run: _ShardRun, end: EventTimeStamp) -> ArrivalTimeStamp:
        """Arrival instant at which ``run``'s frontier first reached ``end``."""
        index = bisect_left(run.frontier_values, end)
        return run.frontier_arrivals[index]

    def _merge(self, runs: list[_ShardRun]) -> list[_MergedGroup]:
        """Combine per-shard window results at the minimum frontier."""
        groups: dict[tuple[object, object], list[WindowResult]] = {}
        for run in runs:
            for record in run.results:
                groups.setdefault((record.key, record.window), []).append(record)
        min_frontier = min(run.final_frontier for run in runs)
        aggregate = self._aggregate
        merged: list[_MergedGroup] = []
        for (key, _window_key), records in groups.items():
            window = records[0].window
            closed = window.end <= min_frontier
            if closed:
                emit_time = max(
                    self._crossing_arrival(run, window.end) for run in runs
                )
            else:
                emit_time = self._last_arrival
            if len(records) == 1:
                value = float(records[0].value)
            else:
                partials = [
                    cast(_ShardPartial, record.value).accumulator
                    for record in records
                ]
                folded = partials[0]
                for other in partials[1:]:
                    folded = aggregate.merge(folded, other)
                value = aggregate.result(folded)
            merged.append(
                _MergedGroup(
                    result=WindowResult(
                        key=key,
                        window=window,
                        value=value,
                        count=sum(record.count for record in records),
                        emit_time=emit_time,
                        latency=emit_time - window.end,
                        revision=0,
                        flushed=not closed,
                    ),
                    shards=len(records),
                )
            )
        merged.sort(
            key=lambda group: (
                group.result.emit_time,
                group.result.flushed,
                group.result.window.end,
                group.result.window.start,
                repr(group.result.key),
            )
        )
        return merged

    def finish(self) -> list[WindowResult]:
        """Execute all shards, merge, and emit in canonical order."""
        if self._finished:
            return []
        self._finished = True
        tracer = self.tracer
        if self._streaming:
            runs = self._finish_streaming(tracer)
        else:
            tasks = [
                ShardTask(shard_id=shard_id, elements=tuple(elements))
                for shard_id, elements in enumerate(self._pending)
                if elements
            ]
            self._pending = [[] for _ in range(self._n_shards)]
            if tracer.enabled:
                for task in tasks:
                    tracer.shard_ingest(
                        self._last_arrival, task.shard_id, len(task.elements)
                    )
            runs = self._executor.run(self._run_shard, tasks) if tasks else []
        if not runs:
            self.handler._finalize(())
            return []
        merged = self._merge(runs)
        self.handler._finalize(runs)
        stats = self.stats
        stats.results_out = len(merged)
        for run in runs:
            stats.late_dropped += run.late_dropped
            stats.observed_errors.extend(run.observed_errors)
        if self._registry is not None:
            registry = self._registry
            for run in runs:
                prefix = f"shard.{run.shard_id}"
                registry.counter(f"{prefix}.elements_in").set(run.elements_in)
                registry.counter(f"{prefix}.results_out").set(len(run.results))
                registry.counter(f"{prefix}.late_dropped").set(run.late_dropped)
                registry.gauge(f"{prefix}.max_buffered").set(run.max_buffered)
                registry.gauge(f"{prefix}.final_frontier").set(run.final_frontier)
                for name, value in run.metric_deltas.items():
                    registry.counter(f"{prefix}.{name}").set(value)
        if tracer.enabled:
            for group in merged:
                result = group.result
                tracer.shard_merge(
                    result.emit_time,
                    result.key,
                    result.window.start,
                    result.window.end,
                    group.shards,
                    float(result.value),
                    result.count,
                )
        return [group.result for group in merged]


@dataclass(slots=True)
class _MergedStats:
    """Coordinator-side stats mirroring ``OperatorStats``' pipeline fields."""

    __concurrency__ = "single-thread"

    elements_in: int = 0
    results_out: int = 0
    late_dropped: int = 0
    observed_errors: list[float] = field(default_factory=list)
