"""Per-source frontier combination for multi-source streams.

:class:`MultiSourceWatermarkHandler` is a disorder handler whose frontier
is the **minimum** of per-source event-time frontiers (minus a lag), the
standard multi-input watermark rule: no window closes until *every* source
has moved past it.  A source silent for longer than ``idle_timeout``
(arrival time) is excluded from the minimum until it speaks again, so one
dead sensor cannot stall the query — at the price of treating its
stragglers as late, which is exactly the latency/quality tradeoff this
library is about.  Use :func:`repro.streams.multisource.merge_streams` to
build the merged input stream.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.handlers import DisorderHandler
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS, EventTimeStamp, MonotoneFrontier


class MultiSourceWatermarkHandler(DisorderHandler):
    """Frontier = min over live sources of (source max event time) - lag."""

    name = "multi-source-watermark"

    def __init__(
        self,
        source_of: Callable[[StreamElement], object],
        lag: DurationS = 0.0,
        idle_timeout: DurationS = float("inf"),
        expected_sources: set | None = None,
    ) -> None:
        """Args:
        source_of: Maps an element to its source id.
        lag: Fixed watermark lag subtracted from the per-source minimum.
        idle_timeout: Arrival-time silence after which a source is
            excluded from the minimum (its stragglers become late).
        expected_sources: When given, the frontier stays at ``-inf`` until
            every expected source has produced at least one element —
            otherwise a source that first speaks *after* the frontier
            advanced cannot retract it (frontiers are monotone), and its
            whole backlog counts late.
        """
        if lag < 0:
            raise ConfigurationError(f"lag must be non-negative, got {lag}")
        if idle_timeout <= 0:
            raise ConfigurationError(
                f"idle_timeout must be positive, got {idle_timeout}"
            )
        self.source_of = source_of
        self.lag = lag
        self.idle_timeout = idle_timeout
        self.expected_sources = set(expected_sources) if expected_sources else None
        # source -> (max event time, last arrival time)
        self._sources: dict[object, tuple[float, float]] = {}
        self._front = MonotoneFrontier()
        self._now = float("-inf")
        self._released = 0

    def _live_minimum(self) -> float:
        if self.expected_sources is not None and not self.expected_sources <= set(
            self._sources
        ):
            return float("-inf")
        live = [
            max_event
            for max_event, last_arrival in self._sources.values()
            if self._now - last_arrival <= self.idle_timeout
        ]
        if not live:
            # Every source idle: fall back to the global maximum so the
            # query keeps making progress.
            live = [max_event for max_event, __ in self._sources.values()]
        return min(live)

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if element.arrival_time is None:
            raise ConfigurationError(
                "MultiSourceWatermarkHandler requires arrival timestamps"
            )
        self._now = max(self._now, element.arrival_time)
        source = self.source_of(element)
        max_event, __ = self._sources.get(source, (float("-inf"), float("-inf")))
        self._sources[source] = (
            max(max_event, element.event_time),
            element.arrival_time,
        )
        self._front.advance(self._live_minimum() - self.lag)
        self._released += 1
        return [element]

    def flush(self) -> list[StreamElement]:
        self._front.close()
        return []

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    def released_count(self) -> int:
        return self._released

    @property
    def current_slack(self) -> DurationS:
        return self.lag

    def source_count(self) -> int:
        """Number of distinct sources observed so far."""
        return len(self._sources)

    def idle_sources(self) -> list[object]:
        """Sources currently excluded from the frontier minimum."""
        return [
            source
            for source, (__, last_arrival) in self._sources.items()
            if self._now - last_arrival > self.idle_timeout
        ]
