"""Aggregate function library for windowed queries.

Each aggregate follows the accumulate/result protocol: ``create()`` builds a
mutable accumulator, ``add`` folds one value in, ``result`` extracts the
answer.  Accumulators also support ``merge`` (for shared multi-query
execution) and, where mathematically possible, late values can simply be
``add``-ed after a snapshot was taken — which is how the engine measures the
error of early-emitted results against late-corrected truth.

Every aggregate declares an ``error_model_kind`` consumed by
:mod:`repro.core.estimators`, naming how missing (late) input mass
translates into result error:

* ``"additive_mass"`` — count/sum: error is proportional to the missing
  fraction of input mass.
* ``"mean"`` — mean-like: missing a random fraction p perturbs the result by
  roughly p * dispersion/|mean|.
* ``"extremum"`` — min/max: the result is wrong only when an extreme value
  is among the late elements (probability ~ p per window).
* ``"rank"`` — median/quantiles: rank statistics move by about p/2 of the
  value spread.
* ``"distinct"`` — distinct count: each late element can remove at most one
  distinct value; error ~ p.

Every aggregate also declares a ``__numeric__`` annotation naming its
floating-point error discipline (``"exact"``, ``"compensated"`` or
``"reassoc-tolerant"`` — see ``docs/NUMERICS.md``).  Sum-like folds route
through the Neumaier primitives in :mod:`repro.core.numeric`, which makes
scalar and batched folds bit-identical and bounds accumulation error at
O(1) ulp; the NumSan sanitizer (``run_pipeline(sanitize="numeric")``)
verifies the declared discipline against an exact reference at runtime.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.core.numeric import (
    neumaier_add,
    neumaier_add_many,
    neumaier_merge,
    neumaier_total,
)
from repro.errors import ConfigurationError

#: Below this batch size the numpy fast paths lose to plain Python loops
#: (array conversion dominates); ``add_many`` overrides fall back to builtins.
_NUMPY_FOLD_MIN = 32


class AggregateFunction(ABC):
    """Protocol for incremental window aggregates."""

    __concurrency__ = "immutable"
    # The protocol itself holds no accumulator state; concrete aggregates
    # each declare their own discipline (lint rule R19).
    __numeric__ = "exact"

    name: str = "aggregate"
    error_model_kind: str = "additive_mass"

    @abstractmethod
    def create(self) -> Any:
        """Build an empty accumulator."""

    @abstractmethod
    def add(self, accumulator: Any, value: float) -> None:
        """Fold one value into the accumulator in place."""

    def add_many(self, accumulator: Any, values: list[float]) -> None:
        """Fold a batch of values into the accumulator in place.

        Contract: must be equivalent to ``for v in values: add(acc, v)``.
        Order-independent aggregates (count, min, max, median, distinct...)
        and the compensated folds (sum, mean — their batched path performs
        the *same* Neumaier fold as repeated ``add``) match bit-for-bit;
        only aggregates explicitly annotated ``__numeric__ =
        "reassoc-tolerant"`` (stddev's Chan combine) may differ by
        re-association rounding, which the equivalence suite compares at
        ~1e-9 relative tolerance.  The base implementation is the scalar
        loop; subclasses override with compensated/builtin fast paths.
        """
        add = self.add
        for value in values:
            add(accumulator, value)

    @abstractmethod
    def result(self, accumulator: Any) -> float:
        """Extract the aggregate value; empty windows return ``nan``."""

    @abstractmethod
    def merge(self, accumulator: Any, other: Any) -> Any:
        """Merge ``other`` into ``accumulator`` in place and return it."""

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return self.name


class CountAggregate(AggregateFunction):
    """Number of elements in the window."""

    name = "count"
    error_model_kind = "additive_mass"
    __numeric__ = "exact"  # integer arithmetic, exact under 2**53

    def create(self) -> list[int]:
        return [0]

    def add(self, accumulator: list[int], value: float) -> None:
        accumulator[0] += 1

    def add_many(self, accumulator: list[int], values: list[float]) -> None:
        accumulator[0] += len(values)

    def result(self, accumulator: list[int]) -> float:
        return float(accumulator[0])

    def merge(self, accumulator: list[int], other: list[int]) -> list[int]:
        accumulator[0] += other[0]
        return accumulator


class SumAggregate(AggregateFunction):
    """Sum of values, Neumaier-compensated.

    Scalar and batched folds perform the identical compensated addition
    sequence, so ``add_many`` matches repeated ``add`` bit-for-bit (the
    old numpy fast path used a different summation order and rounded
    differently — see ``docs/NUMERICS.md``).
    """

    name = "sum"
    error_model_kind = "additive_mass"
    __numeric__ = "compensated"

    def create(self) -> list[float]:
        return [0.0, 0.0]  # [total, compensation]

    def add(self, accumulator: list[float], value: float) -> None:
        neumaier_add(accumulator, value)

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        neumaier_add_many(accumulator, values)

    def result(self, accumulator: list[float]) -> float:
        return neumaier_total(accumulator)

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        neumaier_merge(accumulator, other)
        return accumulator


class MeanAggregate(AggregateFunction):
    """Arithmetic mean of values (compensated sum over exact count)."""

    name = "mean"
    error_model_kind = "mean"
    __numeric__ = "compensated"

    def create(self) -> list[float]:
        return [0.0, 0.0, 0.0]  # [total, compensation, count]

    def add(self, accumulator: list[float], value: float) -> None:
        neumaier_add(accumulator, value)
        accumulator[2] += 1.0

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        neumaier_add_many(accumulator, values)
        accumulator[2] += float(len(values))

    def result(self, accumulator: list[float]) -> float:
        if accumulator[2] == 0:
            return math.nan
        return neumaier_total(accumulator) / accumulator[2]

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        neumaier_merge(accumulator, other)
        accumulator[2] += other[2]  # repro: numeric=exact - integer counts
        return accumulator


class MinAggregate(AggregateFunction):
    """Minimum value."""

    name = "min"
    error_model_kind = "extremum"
    __numeric__ = "exact"  # comparisons only; the result is an input value

    def create(self) -> list[float]:
        return [math.inf]

    def add(self, accumulator: list[float], value: float) -> None:
        if value < accumulator[0]:
            accumulator[0] = value

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        if not values:
            return
        smallest = min(values)
        if smallest < accumulator[0]:
            accumulator[0] = smallest

    def result(self, accumulator: list[float]) -> float:
        return accumulator[0] if accumulator[0] != math.inf else math.nan

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        if other[0] < accumulator[0]:
            accumulator[0] = other[0]
        return accumulator


class MaxAggregate(AggregateFunction):
    """Maximum value."""

    name = "max"
    error_model_kind = "extremum"
    __numeric__ = "exact"  # comparisons only; the result is an input value

    def create(self) -> list[float]:
        return [-math.inf]

    def add(self, accumulator: list[float], value: float) -> None:
        if value > accumulator[0]:
            accumulator[0] = value

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        if not values:
            return
        largest = max(values)
        if largest > accumulator[0]:
            accumulator[0] = largest

    def result(self, accumulator: list[float]) -> float:
        return accumulator[0] if accumulator[0] != -math.inf else math.nan

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        if other[0] > accumulator[0]:
            accumulator[0] = other[0]
        return accumulator


class StdDevAggregate(AggregateFunction):
    """Population standard deviation via Welford's online algorithm."""

    name = "stddev"
    error_model_kind = "mean"
    # Welford/Chan recurrences are the numerically *stable* forms but are
    # order-sensitive; drift is declared (and NumSan-bounded) at 1e-9
    # rather than eliminated, since compensating the running mean would
    # abandon the well-studied error bound.
    __numeric__ = "reassoc-tolerant"

    def create(self) -> list[float]:
        return [0.0, 0.0, 0.0]  # [count, mean, M2]

    def add(self, accumulator: list[float], value: float) -> None:
        accumulator[0] += 1.0
        delta = value - accumulator[1]
        accumulator[1] += delta / accumulator[0]  # repro: numeric=reassoc - Welford
        accumulator[2] += delta * (value - accumulator[1])  # repro: numeric=reassoc - Welford

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        if len(values) < _NUMPY_FOLD_MIN:
            AggregateFunction.add_many(self, accumulator, values)
            return
        batch = np.asarray(values, dtype=float)
        n_b = float(batch.size)
        # The batched path intentionally folds in a different order than
        # scalar Welford: Chan's batch combine is *more* accurate, and the
        # scalar/batched equivalence suite plus NumSan bound the
        # divergence at the declared 1e-9.
        mean_b = float(batch.mean())  # repro: numeric=reassoc - Chan combine
        m2_b = float(((batch - mean_b) ** 2).sum())  # repro: numeric=reassoc - Chan combine
        # Chan et al. pairwise combine — the same math as merge().
        n_a, mean_a, m2_a = accumulator
        n = n_a + n_b
        delta = mean_b - mean_a
        accumulator[0] = n
        accumulator[1] = mean_a + delta * n_b / n
        accumulator[2] = m2_a + m2_b + delta * delta * n_a * n_b / n

    def result(self, accumulator: list[float]) -> float:
        if accumulator[0] == 0:
            return math.nan
        return math.sqrt(accumulator[2] / accumulator[0])

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        n_a, mean_a, m2_a = accumulator
        n_b, mean_b, m2_b = other
        n = n_a + n_b
        if n == 0:
            return accumulator
        delta = mean_b - mean_a
        accumulator[0] = n
        accumulator[1] = mean_a + delta * n_b / n
        accumulator[2] = m2_a + m2_b + delta * delta * n_a * n_b / n
        return accumulator


class QuantileAggregate(AggregateFunction):
    """Exact quantile via a retained value list (sorted lazily at result)."""

    name = "quantile"
    error_model_kind = "rank"
    # Values are retained exactly; only the interpolated result carries a
    # couple of roundings, so the declared drift bound is 1e-9.
    __numeric__ = "reassoc-tolerant"

    def __init__(self, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0,1], got {q}")
        self.q = q
        self.name = f"p{int(round(q * 100))}"

    def create(self) -> list[float]:
        return []

    def add(self, accumulator: list[float], value: float) -> None:
        accumulator.append(value)

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        accumulator.extend(values)

    def result(self, accumulator: list[float]) -> float:
        if not accumulator:
            return math.nan
        ordered = sorted(accumulator)
        # Nearest-rank with linear interpolation (numpy 'linear' method).
        position = self.q * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return ordered[lower]
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        accumulator.extend(other)
        return accumulator


class MedianAggregate(QuantileAggregate):
    """Exact median (p50)."""

    __numeric__ = "reassoc-tolerant"  # interpolated midpoint, as QuantileAggregate

    def __init__(self) -> None:
        super().__init__(0.5)
        self.name = "median"


class DistinctCountAggregate(AggregateFunction):
    """Exact count of distinct values (values hashed into a set)."""

    name = "distinct"
    error_model_kind = "distinct"
    __numeric__ = "exact"  # set cardinality, no float arithmetic

    def create(self) -> set:
        return set()

    def add(self, accumulator: set, value: float) -> None:
        accumulator.add(value)

    def add_many(self, accumulator: set, values: list[float]) -> None:
        accumulator.update(values)

    def result(self, accumulator: set) -> float:
        return float(len(accumulator))

    def merge(self, accumulator: set, other: set) -> set:
        accumulator.update(other)
        return accumulator


class RangeAggregate(AggregateFunction):
    """Max - min of the window's values (price range, sensor swing)."""

    name = "range"
    error_model_kind = "extremum"
    __numeric__ = "exact"  # max - min is a single correctly-rounded op

    def create(self) -> list[float]:
        return [math.inf, -math.inf]

    def add(self, accumulator: list[float], value: float) -> None:
        if value < accumulator[0]:
            accumulator[0] = value
        if value > accumulator[1]:
            accumulator[1] = value

    def add_many(self, accumulator: list[float], values: list[float]) -> None:
        if not values:
            return
        smallest = min(values)
        largest = max(values)
        if smallest < accumulator[0]:
            accumulator[0] = smallest
        if largest > accumulator[1]:
            accumulator[1] = largest

    def result(self, accumulator: list[float]) -> float:
        if accumulator[0] == math.inf:
            return math.nan
        return accumulator[1] - accumulator[0]

    def merge(self, accumulator: list[float], other: list[float]) -> list[float]:
        accumulator[0] = min(accumulator[0], other[0])
        accumulator[1] = max(accumulator[1], other[1])
        return accumulator


class VarianceAggregate(StdDevAggregate):
    """Population variance via Welford/Chan (``M2 / count``, no sqrt).

    Shares :class:`StdDevAggregate`'s accumulator and merge; only the
    extraction differs, which is what the hypothesis property suite pins
    against :func:`statistics.pvariance` over arbitrary merge splits.
    """

    name = "variance"
    error_model_kind = "mean"
    __numeric__ = "reassoc-tolerant"

    def result(self, accumulator: list[float]) -> float:
        if accumulator[0] == 0:
            return math.nan
        return accumulator[2] / accumulator[0]


_REGISTRY: dict[str, type[AggregateFunction]] = {
    "count": CountAggregate,
    "sum": SumAggregate,
    "mean": MeanAggregate,
    "avg": MeanAggregate,
    "min": MinAggregate,
    "max": MaxAggregate,
    "stddev": StdDevAggregate,
    "variance": VarianceAggregate,
    "var": VarianceAggregate,
    "median": MedianAggregate,
    "distinct": DistinctCountAggregate,
    "range": RangeAggregate,
}


def make_aggregate(name: str, **kwargs) -> AggregateFunction:
    """Build an aggregate by name (``"mean"``, ``"p95"``, ``"median"``...).

    Quantiles are addressed as ``"p<nn>"``, e.g. ``make_aggregate("p95")``.
    """
    if name.startswith("p") and name[1:].isdigit():
        return QuantileAggregate(int(name[1:]) / 100.0)
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregate {name!r}; known: {sorted(_REGISTRY)} or p<nn>"
        ) from None
    return factory(**kwargs)
