"""Window semantics: sliding, tumbling and session window assigners.

A window assigner maps an event timestamp to the set of windows the event
belongs to.  Windows are half-open event-time intervals ``[start, end)``;
a window may be *closed* (its aggregate emitted) once the operator's
event-time frontier passes ``end``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.streams.timebase import DurationS, EventTimeStamp


@dataclass(frozen=True, order=True, slots=True)
class Window:
    """A half-open event-time interval ``[start, end)``."""

    __concurrency__ = "immutable"

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigurationError(
                f"window end must exceed start, got [{self.start}, {self.end})"
            )

    @property
    def size(self) -> DurationS:
        return self.end - self.start

    def contains(self, timestamp: EventTimeStamp) -> bool:
        """Whether ``start <= timestamp < end``."""
        return self.start <= timestamp < self.end

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.start:g},{self.end:g})"


class WindowAssigner(ABC):
    """Maps event timestamps to windows."""

    __concurrency__ = "immutable"

    @abstractmethod
    def assign(self, timestamp: EventTimeStamp) -> list[Window]:
        """All windows containing ``timestamp``, in ascending start order."""

    @abstractmethod
    def windows_ending_in(self, start: EventTimeStamp, end: EventTimeStamp) -> list[Window]:
        """All windows whose end lies in ``(start, end]`` — used by oracles."""

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return type(self).__name__


class SlidingWindowAssigner(WindowAssigner):
    """Sliding windows of ``size`` seconds advancing every ``slide`` seconds.

    Window starts are aligned to multiples of ``slide`` (offset 0), matching
    the convention of Flink/Beam.  An event at time ``t`` belongs to
    ``ceil(size / slide)`` windows (fewer near the stream start).
    """

    __concurrency__ = "immutable"

    def __init__(self, size: DurationS, slide: DurationS) -> None:
        if size <= 0 or slide <= 0:
            raise ConfigurationError(
                f"size and slide must be positive, got size={size}, slide={slide}"
            )
        if slide > size:
            raise ConfigurationError(
                f"slide must not exceed size, got size={size}, slide={slide}"
            )
        self.size = size
        self.slide = slide

    def assign(self, timestamp: EventTimeStamp) -> list[Window]:
        if timestamp < 0:
            raise ConfigurationError(f"timestamp must be non-negative, got {timestamp}")
        # Window starts are i * slide.  Work in index space (one rounding per
        # start instead of an accumulating subtraction) and verify membership
        # explicitly, so floating-point drift can neither include a window
        # that misses the timestamp nor skip one that covers it.
        last_index = math.floor(timestamp / self.slide)
        while last_index * self.slide > timestamp:
            last_index -= 1
        while (last_index + 1) * self.slide <= timestamp:
            last_index += 1
        windows = []
        index = last_index
        while index >= 0:
            start = index * self.slide
            if start + self.size <= timestamp:
                break
            window = Window(start, start + self.size)
            if window.contains(timestamp):
                windows.append(window)
            index -= 1
        windows.reverse()
        return windows

    def windows_ending_in(self, start: EventTimeStamp, end: EventTimeStamp) -> list[Window]:
        first_end = math.floor(start / self.slide) * self.slide + self.size
        while first_end <= start:
            first_end += self.slide
        windows = []
        window_end = first_end
        while window_end <= end:
            window_start = window_end - self.size
            if window_start >= 0:
                windows.append(Window(window_start, window_end))
            window_end += self.slide
        return windows

    def describe(self) -> str:
        return f"sliding(size={self.size:g}s, slide={self.slide:g}s)"


class TumblingWindowAssigner(SlidingWindowAssigner):
    """Non-overlapping fixed windows: sliding with ``slide == size``."""

    def __init__(self, size: float) -> None:
        super().__init__(size=size, slide=size)

    def describe(self) -> str:
        return f"tumbling(size={self.size:g}s)"


def sliding(size: DurationS, slide: DurationS) -> SlidingWindowAssigner:
    """Convenience constructor used by the fluent query API."""
    return SlidingWindowAssigner(size, slide)


def tumbling(size: float) -> TumblingWindowAssigner:
    """Convenience constructor used by the fluent query API."""
    return TumblingWindowAssigner(size)


class SessionWindowMerger:
    """Session windows: events closer than ``gap`` merge into one session.

    Unlike sliding windows, session boundaries depend on the data, so the
    merger tracks per-key open sessions as (start, last_event, values-count)
    and exposes which sessions can close given a frontier.  This class holds
    the merge logic only; the session operator composes it with an
    accumulator store.
    """

    def __init__(self, gap: DurationS) -> None:
        if gap <= 0:
            raise ConfigurationError(f"gap must be positive, got {gap}")
        self.gap = gap
        # key -> sorted list of (start, last_event_time)
        self._sessions: dict[object, list[tuple[float, float]]] = {}

    def add(self, key: object, timestamp: EventTimeStamp) -> tuple[float, float]:
        """Fold ``timestamp`` into the sessions of ``key``.

        Returns the (start, last_event_time) of the session containing the
        event after any merges.
        """
        sessions = self._sessions.setdefault(key, [])
        touching = [
            (start, last)
            for start, last in sessions
            if start - self.gap <= timestamp <= last + self.gap
        ]
        merged_start = min([timestamp] + [start for start, __ in touching])
        merged_last = max([timestamp] + [last for __, last in touching])
        sessions[:] = [entry for entry in sessions if entry not in touching]
        sessions.append((merged_start, merged_last))
        sessions.sort()
        return (merged_start, merged_last)

    def closable(self, key: object, frontier: EventTimeStamp) -> list[tuple[float, float]]:
        """Sessions of ``key`` that can no longer grow given ``frontier``.

        A session is closable when ``last_event + gap <= frontier``: no
        future event can extend it.  Closable sessions are removed.
        """
        sessions = self._sessions.get(key, [])
        done = [entry for entry in sessions if entry[1] + self.gap <= frontier]
        if done:
            sessions[:] = [entry for entry in sessions if entry not in done]
        return done

    def keys(self) -> list[object]:
        """Keys that currently have open sessions."""
        return list(self._sessions)

    def open_count(self) -> int:
        """Total open sessions across all keys."""
        return sum(len(sessions) for sessions in self._sessions.values())
