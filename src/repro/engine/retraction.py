"""Speculative processing with retractions — the eager baseline.

Instead of holding results back until the stream is believed complete, the
speculative operator emits a window's aggregate the moment its end passes
the zero-slack frontier, and emits *revisions* whenever late elements change
the answer.  Initial latency is minimal; the cost is churn: downstream
consumers see each window up to ``1 + revisions`` times.

Quality is evaluated on the **final** value per window, latency on the
**initial** emission — the framing under which speculation looks best; the
evaluation also reports the revision volume, which is its real price.

Numerics: revisions are computed by **re-adding** late values to the
retained accumulator and re-extracting — never by subtracting from an
emitted result (the drift trap lint rule R17 guards against).  The
"did the value move enough to re-emit" decision runs through
:func:`~repro.engine.aggregate_op.relative_error`, whose numeric branch is
the shared :func:`repro.core.numeric.relative_drift` metric.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.engine.aggregate_op import relative_error
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler, NoBufferHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import WindowAssigner, Window
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement


class SpeculativeAggregateOperator(Operator):
    """Eager emission with revisions on late arrivals."""

    def __init__(
        self,
        assigner: WindowAssigner,
        aggregate: AggregateFunction,
        handler: DisorderHandler | None = None,
        revision_horizon: float | None = None,
        revision_threshold: float = 0.0,
    ) -> None:
        """Args:
        assigner / aggregate: The query.
        handler: Frontier source; defaults to the zero-slack handler.
        revision_horizon: Event-time span for which closed windows remain
            revisable; defaults to 5x the window size.
        revision_threshold: Minimum relative change of the aggregate value
            required to emit a revision (0 emits on every late element).
        """
        self.assigner = assigner
        self.aggregate = aggregate
        self.handler = handler if handler is not None else NoBufferHandler()
        if revision_horizon is None:
            revision_horizon = 5.0 * getattr(assigner, "size", 10.0)
        if revision_horizon < 0:
            raise ConfigurationError(
                f"revision_horizon must be non-negative, got {revision_horizon}"
            )
        if revision_threshold < 0:
            raise ConfigurationError(
                f"revision_threshold must be non-negative, got {revision_threshold}"
            )
        self.revision_horizon = revision_horizon
        self.revision_threshold = revision_threshold
        self.revisions_emitted = 0

        self._open: dict[tuple[object, Window], tuple[object, int]] = {}
        # slot -> [accumulator, count, last_emitted_value, revision]
        self._closed: OrderedDict[tuple[object, Window], list] = OrderedDict()
        self._close_frontier = float("-inf")
        self._last_arrival = 0.0

    def _ingest(self, element: StreamElement) -> list[WindowResult]:
        revisions = []
        for window in self.assigner.assign(element.event_time):
            slot = (element.key, window)
            if window.end <= self._close_frontier:
                revision = self._apply_late(slot, window, element)
                if revision is not None:
                    revisions.append(revision)
                continue
            entry = self._open.get(slot)
            if entry is None:
                entry = (self.aggregate.create(), 0)
            self.aggregate.add(entry[0], element.value)
            self._open[slot] = (entry[0], entry[1] + 1)
        return revisions

    def _apply_late(
        self, slot: tuple[object, Window], window: Window, element: StreamElement
    ) -> WindowResult | None:
        record = self._closed.get(slot)
        if record is None:
            if window.end + self.revision_horizon <= self._close_frontier:
                return None
            record = [self.aggregate.create(), 0, float("nan"), 0]
            self._closed[slot] = record
        self.aggregate.add(record[0], element.value)
        record[1] += 1
        new_value = self.aggregate.result(record[0])
        if relative_error(record[2], new_value) <= self.revision_threshold:
            return None
        record[2] = new_value
        record[3] += 1
        self.revisions_emitted += 1
        return WindowResult(
            key=slot[0],
            window=window,
            value=new_value,
            count=record[1],
            emit_time=self._last_arrival,
            latency=self._last_arrival - window.end,
            revision=record[3],
        )

    def _close_windows(self, frontier: float, flushed: bool = False) -> list[WindowResult]:
        results = []
        ready = [slot for slot in self._open if slot[1].end <= frontier]
        ready.sort(key=lambda slot: slot[1].end)
        for slot in ready:
            accumulator, count = self._open.pop(slot)
            value = self.aggregate.result(accumulator)
            results.append(
                WindowResult(
                    key=slot[0],
                    window=slot[1],
                    value=value,
                    count=count,
                    emit_time=self._last_arrival,
                    latency=self._last_arrival - slot[1].end,
                    revision=0,
                    flushed=flushed,
                )
            )
            self._closed[slot] = [accumulator, count, value, 0]
        if frontier > self._close_frontier:
            self._close_frontier = frontier
        retire_before = frontier - self.revision_horizon
        stale = [
            slot for slot, record in self._closed.items() if slot[1].end <= retire_before
        ]
        for slot in stale:
            del self._closed[slot]
        return results

    def process(self, element: StreamElement) -> list[WindowResult]:
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        emissions = []
        for out in self.handler.offer(element):
            emissions.extend(self._ingest(out))
        emissions.extend(self._close_windows(self.handler.frontier))
        return emissions

    def finish(self) -> list[WindowResult]:
        emissions = []
        for out in self.handler.flush():
            emissions.extend(self._ingest(out))
        emissions.extend(self._close_windows(float("inf"), flushed=True))
        return emissions


def final_values(results: list[WindowResult]) -> dict[tuple[object, Window], float]:
    """Collapse a revision stream to the last emitted value per window."""
    finals: dict[tuple[object, Window], float] = {}
    for result in results:
        finals[(result.key, result.window)] = result.value
    return finals


def initial_latencies(results: list[WindowResult]) -> list[float]:
    """Latency of each window's first (revision 0, frontier-closed) emission."""
    return [
        result.latency
        for result in results
        if result.revision == 0 and not result.flushed
    ]
