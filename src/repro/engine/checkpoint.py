"""Operator checkpointing: suspend a continuous query and resume it later.

Continuous queries are long-running by definition; restarts (deploys,
crashes, rebalances) must not lose window state or the adaptive
controller's learned slack.  Checkpoints capture the *entire* operator —
open-window accumulators, the disorder handler's buffer, delay samples,
controller gain — so a resumed query behaves byte-identically to one that
never stopped (verified by the resume-equivalence tests).

Implementation: the engine's state is plain Python data (dataclasses,
lists, dicts, heaps, numpy arrays), so the checkpoint format is a pickle of
the operator object.  Two consequences:

* any callables wired into the operator (side selectors, predicates,
  ``source_of``) must be module-level functions, not lambdas or closures,
  or pickling fails;
* checkpoints are a *trust boundary*: like every pickle, loading one
  executes code, so only load checkpoints you wrote.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.errors import ConfigurationError

CHECKPOINT_MAGIC = b"repro-checkpoint-v1\n"

#: Magic prefix for in-memory state snapshots shipped between processes
#: (shard specs, handler prototypes, partial-aggregate run records).  The
#: same pickle machinery as file checkpoints, minus the filesystem: the
#: process-pool shard executor uses these for its control-plane payloads.
STATE_MAGIC = b"repro-shard-state-v1\n"


def dumps_state(obj: object) -> bytes:
    """Serialize ``obj`` into a magic-prefixed state snapshot.

    Used by the process-pool shard executor for everything that crosses
    the process boundary *except* element chunks (which use the compact
    array codec in :mod:`repro.engine.process_pool`): the shard spec, the
    handler prototype, and each shard's partial-aggregate run record.
    Like file checkpoints, snapshots are a trust boundary — only load
    snapshots produced by this process family.
    """
    return STATE_MAGIC + pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def loads_state(payload: bytes) -> object:
    """Restore an object snapshotted by :func:`dumps_state`.

    Raises:
        ConfigurationError: the payload does not carry the state magic.
    """
    if not payload.startswith(STATE_MAGIC):
        raise ConfigurationError(
            "not a repro state snapshot (bad magic prefix); refusing to "
            "unpickle an unrecognized payload"
        )
    return pickle.loads(payload[len(STATE_MAGIC):])


def save_checkpoint(operator, path: str | Path) -> int:
    """Serialize ``operator`` (with all its state) to ``path``.

    Returns the number of bytes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = CHECKPOINT_MAGIC + pickle.dumps(operator, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(payload)
    return len(payload)


def load_checkpoint(path: str | Path):
    """Restore an operator saved by :func:`save_checkpoint`.

    Raises:
        ConfigurationError: missing file or unrecognized format.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint does not exist: {path}")
    payload = path.read_bytes()
    if not payload.startswith(CHECKPOINT_MAGIC):
        raise ConfigurationError(f"not a repro checkpoint: {path}")
    return pickle.loads(payload[len(CHECKPOINT_MAGIC):])
