"""Operator checkpointing: suspend a continuous query and resume it later.

Continuous queries are long-running by definition; restarts (deploys,
crashes, rebalances) must not lose window state or the adaptive
controller's learned slack.  Checkpoints capture the *entire* operator —
open-window accumulators, the disorder handler's buffer, delay samples,
controller gain — so a resumed query behaves byte-identically to one that
never stopped (verified by the resume-equivalence tests).

Implementation: the engine's state is plain Python data (dataclasses,
lists, dicts, heaps, numpy arrays), so the checkpoint format is a pickle of
the operator object.  Two consequences:

* any callables wired into the operator (side selectors, predicates,
  ``source_of``) must be module-level functions, not lambdas or closures,
  or pickling fails;
* checkpoints are a *trust boundary*: like every pickle, loading one
  executes code, so only load checkpoints you wrote.
"""

from __future__ import annotations

import pickle
from pathlib import Path

from repro.errors import ConfigurationError

CHECKPOINT_MAGIC = b"repro-checkpoint-v1\n"


def save_checkpoint(operator, path: str | Path) -> int:
    """Serialize ``operator`` (with all its state) to ``path``.

    Returns the number of bytes written.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = CHECKPOINT_MAGIC + pickle.dumps(operator, protocol=pickle.HIGHEST_PROTOCOL)
    path.write_bytes(payload)
    return len(payload)


def load_checkpoint(path: str | Path):
    """Restore an operator saved by :func:`save_checkpoint`.

    Raises:
        ConfigurationError: missing file or unrecognized format.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint does not exist: {path}")
    payload = path.read_bytes()
    if not payload.startswith(CHECKPOINT_MAGIC):
        raise ConfigurationError(f"not a repro checkpoint: {path}")
    return pickle.loads(payload[len(CHECKPOINT_MAGIC):])
