"""Pipeline execution: drive an operator over an arrival-ordered stream.

The simulated processing clock is the arrival timestamp of the element being
processed; wall-clock time is measured separately for throughput numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.metrics import LatencySummary, RunMetrics, SlackSample
from repro.engine.operator import Operator, WindowResult
from repro.streams.element import StreamElement


@dataclass
class RunOutput:
    """Results plus instrumentation of one pipeline run."""

    results: list[WindowResult]
    metrics: RunMetrics
    observed_errors: list[float] = field(default_factory=list)

    def latency_summary(self, include_flushed: bool = False) -> LatencySummary:
        """Latency distribution over frontier-closed windows.

        Windows force-closed at stream end are excluded by default: their
        emit time is the last arrival of the whole run, not a property of
        the disorder-handling policy under test.
        """
        return LatencySummary.from_values(
            [
                r.latency
                for r in self.results
                if include_flushed or not r.flushed
            ]
        )


def run_pipeline(
    elements: list[StreamElement],
    operator: Operator,
    sample_every: int = 0,
) -> RunOutput:
    """Feed ``elements`` (arrival order) through ``operator`` to completion.

    Args:
        elements: Arrival-ordered stream (see ``inject_disorder``).
        operator: The operator under test.
        sample_every: When positive and the operator exposes a disorder
            handler, record a :class:`SlackSample` every N elements for
            adaptation-timeline plots.

    Returns:
        :class:`RunOutput` with all emitted window results and run metrics.
    """
    metrics = RunMetrics()
    results: list[WindowResult] = []
    handler = getattr(operator, "handler", None)

    start = time.perf_counter()
    for index, element in enumerate(elements):
        results.extend(operator.process(element))
        if (
            sample_every > 0
            and handler is not None
            and index % sample_every == 0
            and element.arrival_time is not None
        ):
            metrics.slack_timeline.append(
                SlackSample(
                    arrival_time=element.arrival_time,
                    slack=handler.current_slack,
                    frontier=handler.frontier,
                    buffered=handler.buffered_count(),
                )
            )
    results.extend(operator.finish())
    metrics.wall_time_s = time.perf_counter() - start

    metrics.n_elements = len(elements)
    metrics.n_results = len(results)
    if handler is not None:
        metrics.max_buffered = handler.max_buffered_count()

    observed_errors: list[float] = []
    stats = getattr(operator, "stats", None)
    if stats is not None:
        metrics.late_dropped = getattr(stats, "late_dropped", 0)
        observed_errors = list(getattr(stats, "observed_errors", []))

    return RunOutput(results=results, metrics=metrics, observed_errors=observed_errors)
