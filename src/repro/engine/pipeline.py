"""Pipeline execution: drive an operator over an arrival-ordered stream.

The simulated processing clock is the arrival timestamp of the element being
processed; wall-clock time is measured separately for throughput numbers.

Observability: ``run_pipeline`` accepts a
:class:`~repro.obs.trace.Tracer` (``trace=``) — attached to the operator,
its handler and the sorting buffer for the duration of the run — and a
:class:`~repro.obs.registry.MetricsRegistry` (``registry=``), which the
run keeps current chunk-by-chunk so callers holding the registry can
sample progress live.  Both default to off and cost nothing when unused.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.metrics import LatencySummary, RunMetrics, SlackSample
from repro.engine.operator import Operator, WindowResult
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement


@dataclass
class RunOutput:
    """Results plus instrumentation of one pipeline run."""

    results: list[WindowResult]
    metrics: RunMetrics
    observed_errors: list[float] = field(default_factory=list)

    def latency_summary(self, include_flushed: bool = False) -> LatencySummary:
        """Latency distribution over frontier-closed windows.

        Windows force-closed at stream end are excluded by default: their
        emit time is the last arrival of the whole run, not a property of
        the disorder-handling policy under test.
        """
        return LatencySummary.from_values(
            [
                r.latency
                for r in self.results
                if include_flushed or not r.flushed
            ]
        )


def _sim_time_of(element: StreamElement) -> float:
    """Arrival-time stamp of an element, NaN when it has none."""
    arrival = element.arrival_time
    return arrival if arrival is not None else float("nan")


def run_pipeline(
    elements: list[StreamElement],
    operator: Operator,
    sample_every: int = 0,
    batch_size: int = 0,
    sanitize: bool | str = False,
    sanitize_probe_every: int = 0,
    trace: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> RunOutput:
    """Feed ``elements`` (arrival order) through ``operator`` to completion.

    Args:
        elements: Arrival-ordered stream (see ``inject_disorder``).
        operator: The operator under test.
        sample_every: When positive and the operator exposes a disorder
            handler, record a :class:`SlackSample` every N elements for
            adaptation-timeline plots.  Sampling is anchored at the first
            element that caused a release, so timelines never start with a
            spurious ``-inf`` frontier point.
        batch_size: When > 1, drive the operator through
            :meth:`~repro.engine.operator.Operator.process_many` in chunks
            of up to ``batch_size`` elements.  Simulated-time semantics
            (emit times, latencies, feedback, slack timeline) are identical
            to the scalar path; only wall-clock throughput changes.  Chunk
            boundaries are aligned to sampling points so timelines match the
            scalar run sample-for-sample.
        sanitize: ``True`` or ``"stream"`` wraps the operator and its
            handler in the StreamSan runtime checkers (see
            :mod:`repro.analysis.sanitizer`); ``"race"`` wraps them in the
            RaceSan lockset race detector instead (see
            :mod:`repro.analysis.concur.racesan` — single-threaded runs
            are bit-identical to unsanitized runs and never report);
            ``"numeric"`` shadow-executes the operator's aggregate against
            an exact reference and bounds the drift by the aggregate's
            declared ``__numeric__`` contract (see
            :mod:`repro.analysis.numeric.numsan` — emitted results are
            bit-identical to unsanitized runs).  Any violation raises
            :class:`~repro.errors.SanitizerError` at the call site.  When
            False (the default) nothing is wrapped and there is no
            overhead.
        sanitize_probe_every: With ``sanitize=True`` and a batched run,
            shadow-execute every N-th chunk through the scalar path on a
            deep copy of the operator and diff the emissions (0 disables
            the probe).
        trace: A :class:`~repro.obs.trace.Tracer` (usually a
            :class:`~repro.obs.trace.TraceRecorder`) attached to the
            operator, handler and buffer for this run.  ``None`` (default)
            leaves the shared null tracer in place — the hot path pays one
            attribute check per hook site.  Trace content never influences
            results: a traced run emits bit-identical windows.
        registry: Back the run's :class:`RunMetrics` with this registry
            and keep its instruments current while the run executes
            (element/result counts per chunk, live buffer occupancy under
            ``handler.buffered``).  ``None`` (default) uses a private
            registry updated only at the end of the run.

    Returns:
        :class:`RunOutput` with all emitted window results and run metrics.
    """
    if batch_size < 0:
        raise ConfigurationError(f"batch_size must be non-negative, got {batch_size}")
    configure_sanitizer = getattr(operator, "configure_sanitizer", None)
    if sanitize and configure_sanitizer is not None:
        # Sharded (or otherwise composite) operators sanitize each shard
        # inside its own worker instead of wrapping the coordinator: the
        # coordinator defers all emissions to finish, which the scalar
        # emission checkers would misread, while every shard operator
        # follows the scalar protocol exactly.
        if sanitize_probe_every:
            raise ConfigurationError(
                "sanitize_probe_every is not supported for operators that "
                "sanitize per shard"
            )
        configure_sanitizer("stream" if sanitize is True else sanitize)
    elif sanitize is True or sanitize == "stream":
        from repro.analysis.sanitizer import SanitizerConfig, SanitizingOperator

        operator = SanitizingOperator(
            operator,
            SanitizerConfig(divergence_probe_every=sanitize_probe_every),
        )
    elif sanitize == "race":
        if sanitize_probe_every:
            raise ConfigurationError(
                "sanitize_probe_every requires the stream sanitizer "
                '(sanitize=True or sanitize="stream")'
            )
        from repro.analysis.concur.racesan import RaceSan

        operator = RaceSan(
            tracer=trace if trace is not None else NULL_TRACER
        ).guard_operator(operator)
    elif sanitize == "numeric":
        if sanitize_probe_every:
            raise ConfigurationError(
                "sanitize_probe_every requires the stream sanitizer "
                '(sanitize=True or sanitize="stream")'
            )
        from repro.analysis.numeric.numsan import NumSan

        operator = NumSan(
            tracer=trace if trace is not None else NULL_TRACER
        ).guard_operator(operator)
    elif sanitize:
        raise ConfigurationError(
            f"unknown sanitizer {sanitize!r}; expected True, "
            '"stream", "race" or "numeric"'
        )
    elif sanitize_probe_every:
        raise ConfigurationError(
            "sanitize_probe_every requires sanitize=True"
        )
    tracer = trace if trace is not None else NULL_TRACER
    if tracer.enabled:
        set_tracer = getattr(operator, "set_tracer", None)
        if set_tracer is not None:
            set_tracer(tracer)
    metrics = RunMetrics(registry)
    if registry is not None:
        set_registry = getattr(operator, "set_registry", None)
        if set_registry is not None:
            set_registry(registry)
    results: list[WindowResult] = []
    handler = getattr(operator, "handler", None)
    sampling = sample_every > 0 and handler is not None
    n = len(elements)
    sample_anchor = -1
    timeline = metrics.slack_timeline
    live = registry is not None
    if registry is not None:
        live_elements = registry.counter("pipeline.elements_in")
        live_results = registry.counter("pipeline.results_out")
        live_buffered = registry.gauge("handler.buffered")

    def update_live(processed: int) -> None:
        live_elements.inc(processed)
        live_results.set(len(results))
        if handler is not None:
            live_buffered.set(handler.buffered_count())

    def maybe_sample(index: int) -> None:
        nonlocal sample_anchor
        if sample_anchor < 0:
            if handler.released_count() <= 0:
                return
            sample_anchor = index
        if (index - sample_anchor) % sample_every:
            return
        element = elements[index]
        if element.arrival_time is None:
            return
        timeline.append(
            SlackSample(
                arrival_time=element.arrival_time,
                slack=handler.current_slack,
                frontier=handler.frontier,
                buffered=handler.buffered_count(),
            )
        )

    if tracer.enabled:
        tracer.run_start(
            _sim_time_of(elements[0]) if elements else float("-inf"),
            handler.describe() if handler is not None else type(operator).__name__,
            n,
            batch_size,
            bool(sanitize),
        )
    # Wall-clock reads are banned in engine code (R01); this pair only
    # feeds the throughput metric and never influences results.
    start = time.perf_counter()  # repro-lint: disable=R01
    if batch_size > 1:
        process_many = operator.process_many
        boundary_of = (
            handler.next_adaptation_offset if handler is not None else None
        )
        index = 0
        while index < n:
            if sampling and sample_anchor < 0:
                # Scan one element at a time until the first release, so the
                # sampling anchor lands on the same element as a scalar run.
                results.extend(process_many(elements[index : index + 1]))
                maybe_sample(index)
                if live:
                    update_live(1)
                index += 1
                continue
            stop = min(index + batch_size, n)
            if sampling:
                ahead = (index - sample_anchor) % sample_every
                next_sample = index + (sample_every - ahead) % sample_every
                stop = min(stop, next_sample + 1)
            if boundary_of is not None:
                # Error-fed adaptations must start their own chunk so that
                # retirement feedback from earlier elements is replayed
                # before the adaptation fires (exact scalar interleaving).
                cut = boundary_of(elements, index, stop)
                if cut is not None:
                    stop = cut
            results.extend(process_many(elements[index:stop]))
            if tracer.enabled:
                tracer.chunk(_sim_time_of(elements[stop - 1]), stop - index)
            if sampling:
                maybe_sample(stop - 1)
            if live:
                update_live(stop - index)
            index = stop
    elif sampling or live:
        process = operator.process
        for index in range(n):
            results.extend(process(elements[index]))
            if sampling:
                maybe_sample(index)
            if live:
                update_live(1)
    else:
        process = operator.process
        extend = results.extend
        for element in elements:
            extend(process(element))
    results.extend(operator.finish())
    metrics.wall_time_s = time.perf_counter() - start  # repro-lint: disable=R01

    metrics.n_elements = n
    metrics.n_results = len(results)
    if handler is not None:
        metrics.max_buffered = handler.max_buffered_count()
        metrics.released_count = handler.released_count()

    observed_errors: list[float] = []
    stats = getattr(operator, "stats", None)
    if stats is not None:
        metrics.late_dropped = getattr(stats, "late_dropped", 0)
        observed_errors = list(getattr(stats, "observed_errors", []))

    if tracer.enabled:
        tracer.run_end(
            _sim_time_of(elements[-1]) if elements else float("-inf"),
            len(results),
            metrics.wall_time_s,
        )
    return RunOutput(results=results, metrics=metrics, observed_errors=observed_errors)
