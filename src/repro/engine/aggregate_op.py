"""The windowed aggregation operator with pluggable disorder handling.

:class:`WindowAggregateOperator` wires together a window assigner, an
aggregate function and a :class:`~repro.engine.handlers.DisorderHandler`:

1. every arriving element is offered to the handler, which may buffer it and
   releases zero or more elements downstream;
2. released elements are folded into their (still open) windows; elements
   whose windows were already finalized are **late** — they are dropped from
   results but recorded for quality feedback;
3. the handler's frontier finalizes windows (``end <= frontier``), emitting
   :class:`~repro.engine.operator.WindowResult` rows stamped with the
   current arrival time.

Quality feedback loop
---------------------

Closed windows are retained (accumulator included) for ``feedback_horizon``
seconds of event time.  Late elements arriving within the horizon keep
updating the retained accumulator, so when a record retires the operator
knows both the value it *emitted* and the best late-corrected value — their
relative difference is an *observed error* sample.  These samples are
reported to the handler via ``observe_error``; the adaptive quality-driven
handler uses them to correct its error model at runtime.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.numeric import relative_drift
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import SlidingWindowAssigner, Window, WindowAssigner
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement
from repro.streams.timebase import EventTimeStamp


class _SliceAssignCache:
    """Memoized sliding-window assignment keyed by slide index.

    ``SlidingWindowAssigner.assign`` is a per-element hot spot in batched
    ingest.  All timestamps falling into the same slide interval get the same
    window list, so the cache stores, per guard index, the window list plus
    the exact float interval ``[low, high)`` over which replaying
    ``assign`` is *provably* bit-identical:

    * ``high`` caps at ``(index + 1) * slide`` (same guard index) and at
      ``windows[0].end`` (no window drops off the low end earlier);
    * ``low`` floors at ``index * slide`` (same guard index) and at the end
      of the next-lower candidate window (it must stay excluded).

    Both bounds are computed from the same float expressions ``assign``
    itself evaluates, so cache hits return exactly what ``assign`` would.
    Timestamps outside the interval — and pathological rounding cases where
    the window list is not a contiguous index run — fall back to ``assign``.
    """

    __slots__ = ("assigner", "slide", "size", "entries")

    def __init__(self, assigner: SlidingWindowAssigner) -> None:
        self.assigner = assigner
        self.slide = assigner.slide
        self.size = assigner.size
        self.entries: dict[int, tuple[float, float, list[Window]]] = {}

    def assign(self, timestamp: EventTimeStamp) -> list[Window]:
        slide = self.slide
        index = math.floor(timestamp / slide)
        while index * slide > timestamp:
            index -= 1
        while (index + 1) * slide <= timestamp:
            index += 1
        entry = self.entries.get(index)
        if entry is not None and entry[0] <= timestamp < entry[1]:
            return entry[2]
        windows = self.assigner.assign(timestamp)
        low_index = index - len(windows) + 1
        # Exact float equality is intentional here (R03): the cache is only
        # valid when these starts equal the *bit-identical* expressions
        # ``assign`` itself computes; a tolerance would admit wrong hits.
        if (
            windows
            and windows[-1].start == index * slide  # repro-lint: disable=R03
            and windows[0].start == low_index * slide  # repro-lint: disable=R03
        ):
            high = min((index + 1) * slide, windows[0].end)
            low = index * slide
            if low_index >= 1:
                previous_end = (low_index - 1) * slide + self.size
                if previous_end > low:
                    low = previous_end
            entries = self.entries
            if len(entries) > 4096:
                entries.clear()
            entries[index] = (low, high, windows)
        return windows


def relative_error(emitted, truth, eps: float = 1e-9) -> float:
    """Symmetric-denominator relative error in [0, inf).

    ``nan`` emitted against real truth (a missed window) counts as full
    loss (1.0); two ``nan`` values agree (0.0).  Non-numeric results
    (set-valued aggregates like top-k) are scored exact-match: 0.0 when
    equal, 1.0 otherwise.
    """
    emitted_numeric = isinstance(emitted, (int, float)) and not isinstance(emitted, bool)
    truth_numeric = isinstance(truth, (int, float)) and not isinstance(truth, bool)
    if not emitted_numeric or not truth_numeric:
        return 0.0 if emitted == truth else 1.0
    emitted_nan = isinstance(emitted, float) and math.isnan(emitted)
    truth_nan = isinstance(truth, float) and math.isnan(truth)
    if emitted_nan and truth_nan:
        return 0.0
    if emitted_nan or truth_nan:
        return 1.0
    # Shared drift metric from the numerics module (identical formula;
    # the eps floor here is the quality-scoring one, not the drift one).
    return relative_drift(emitted, truth, eps)


@dataclass(slots=True)
class _ClosedRecord:
    """Bookkeeping for a finalized window awaiting late corrections."""

    accumulator: object
    emitted_value: float
    emitted_count: int
    end: float
    late_updates: int = 0


@dataclass(slots=True)
class OperatorStats:
    """Counters and samples collected during a run."""

    __concurrency__ = "single-thread"

    elements_in: int = 0
    results_out: int = 0
    late_dropped: int = 0
    late_applied_to_feedback: int = 0
    missed_windows: int = 0
    observed_errors: list[float] = field(default_factory=list)


class WindowAggregateOperator(Operator):
    """Sliding/tumbling window aggregation under a disorder handler."""

    #: Attached tracer (see :mod:`repro.obs.trace`); the shared null tracer
    #: keeps instrumented paths at one attribute check when tracing is off.
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        assigner: WindowAssigner,
        aggregate: AggregateFunction,
        handler: DisorderHandler,
        feedback_horizon: float | None = None,
        track_feedback: bool = True,
    ) -> None:
        self.assigner = assigner
        self.aggregate = aggregate
        self.handler = handler
        if feedback_horizon is None:
            size = getattr(assigner, "size", 10.0)
            feedback_horizon = 5.0 * size
        if feedback_horizon < 0:
            raise ConfigurationError(
                f"feedback_horizon must be non-negative, got {feedback_horizon}"
            )
        self.feedback_horizon = feedback_horizon
        self.track_feedback = track_feedback
        self.stats = OperatorStats()

        self._open: dict[tuple[object, Window], object] = {}
        self._open_counts: dict[tuple[object, Window], int] = {}
        self._open_heap: list[tuple[float, int, object, Window]] = []
        self._heap_seq = 0
        self._closed: OrderedDict[tuple[object, Window], _ClosedRecord] = OrderedDict()
        # Retained records keyed by window end, so retirement pops instead of
        # scanning every retained record per element.
        self._closed_heap: list[tuple[float, int, tuple[object, Window]]] = []
        self._close_frontier = float("-inf")
        self._last_arrival = 0.0

    # ------------------------------------------------------------------ #
    # tracing

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to this operator and its disorder handler."""
        self.tracer = tracer
        set_handler_tracer = getattr(self.handler, "set_tracer", None)
        if set_handler_tracer is not None:
            set_handler_tracer(tracer)

    # ------------------------------------------------------------------ #
    # ingestion

    def _ingest(self, element: StreamElement) -> None:
        tracer = self.tracer
        if tracer.enabled and tracer.detail:
            tracer.element_admitted(
                self._last_arrival, element.event_time, element.key
            )
        for window in self.assigner.assign(element.event_time):
            slot = (element.key, window)
            if window.end <= self._close_frontier:
                self._record_late(slot, element, window)
                continue
            accumulator = self._open.get(slot)
            if accumulator is None:
                accumulator = self.aggregate.create()
                self._open[slot] = accumulator
                self._open_counts[slot] = 0
                self._heap_seq += 1
                heapq.heappush(
                    self._open_heap,
                    (window.end, self._heap_seq, element.key, window),
                )
                if tracer.enabled:
                    tracer.window_open(
                        self._last_arrival, element.key, window.start, window.end
                    )
            self.aggregate.add(accumulator, element.value)
            self._open_counts[slot] += 1

    def _record_late(
        self,
        slot: tuple[object, Window],
        element: StreamElement,
        window: Window,
    ) -> None:
        self.stats.late_dropped += 1
        if self.tracer.enabled:
            self.tracer.late_drop(
                self._last_arrival, element.key, element.event_time, window.end
            )
        if not self.track_feedback:
            return
        record = self._closed.get(slot)
        if record is None:
            # Too old to still be retained, or the window never opened
            # before it closed (every element late).  Retain a phantom
            # record when still inside the horizon so the miss is scored.
            if window.end + self.feedback_horizon <= self._close_frontier:
                return
            record = _ClosedRecord(
                accumulator=self.aggregate.create(),
                emitted_value=math.nan,
                emitted_count=0,
                end=window.end,
            )
            self._closed[slot] = record
            self._heap_seq += 1
            heapq.heappush(self._closed_heap, (window.end, self._heap_seq, slot))
            self.stats.missed_windows += 1
        self.aggregate.add(record.accumulator, element.value)
        record.late_updates += 1
        self.stats.late_applied_to_feedback += 1

    # ------------------------------------------------------------------ #
    # window lifecycle

    def _close_windows(
        self, frontier: float, emit_time: float, flushed: bool = False
    ) -> list[WindowResult]:
        results = []
        tracing = self.tracer.enabled
        while self._open_heap and self._open_heap[0][0] <= frontier:
            end, __, key, window = heapq.heappop(self._open_heap)
            slot = (key, window)
            accumulator = self._open.pop(slot, None)
            if accumulator is None:
                continue
            count = self._open_counts.pop(slot)
            value = self.aggregate.result(accumulator)
            results.append(
                WindowResult(
                    key=key,
                    window=window,
                    value=value,
                    count=count,
                    emit_time=emit_time,
                    latency=emit_time - end,
                    flushed=flushed,
                )
            )
            if tracing:
                self.tracer.window_close(
                    emit_time,
                    key,
                    window.start,
                    end,
                    value,
                    count,
                    emit_time - end,
                    flushed,
                )
            if self.track_feedback:
                self._closed[slot] = _ClosedRecord(
                    accumulator=accumulator,
                    emitted_value=value,
                    emitted_count=count,
                    end=end,
                )
                self._heap_seq += 1
                heapq.heappush(self._closed_heap, (end, self._heap_seq, slot))
        if frontier > self._close_frontier:
            self._close_frontier = frontier
        self.stats.results_out += len(results)
        return results

    def _retire_records(self, frontier: float) -> None:
        if not self.track_feedback:
            return
        heap = self._closed_heap
        retire_before = frontier - self.feedback_horizon
        if not heap or not heap[0][0] <= retire_before:
            return
        closed = self._closed
        tracing = self.tracer.enabled
        while heap and heap[0][0] <= retire_before:
            __, __, slot = heapq.heappop(heap)
            record = closed.pop(slot, None)
            if record is None:
                continue
            corrected = self.aggregate.result(record.accumulator)
            error = relative_error(record.emitted_value, corrected)
            self.stats.observed_errors.append(error)
            if tracing:
                key, window = slot
                self.tracer.window_retire(
                    self._last_arrival,
                    key,
                    window.start,
                    record.end,
                    record.emitted_value,
                    corrected,
                    error,
                    record.late_updates,
                )
            self.handler.observe_error(error)

    # ------------------------------------------------------------------ #
    # Operator protocol

    def process(self, element: StreamElement) -> list[WindowResult]:
        self.stats.elements_in += 1
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        emit_time = self._last_arrival
        released = self.handler.offer(element)
        for out in released:
            self._ingest(out)
        frontier = self.handler.frontier
        if self.tracer.enabled:
            self.tracer.frontier_advance(
                emit_time, frontier, self.handler.buffered_count()
            )
        results = self._close_windows(frontier, emit_time)
        self._retire_records(frontier)
        return results

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Batched ingest: equivalent to ``process`` element-for-element.

        The handler releases the whole chunk at once; per-element frontier
        checkpoints then replay closes and retirement at exactly the scalar
        steps (late/on-time verdicts and feedback timing are unchanged).
        Between those steps, released elements are grouped by (key, slide
        interval) — every element of a group belongs to the same windows —
        and each group's pending values are folded once per close boundary
        via ``AggregateFunction.add_many``.
        """
        if not elements:
            return []
        self.stats.elements_in += len(elements)
        released, checkpoints = self.handler.offer_many(elements)
        aggregate = self.aggregate
        open_slots = self._open
        open_counts = self._open_counts
        open_heap = self._open_heap
        closed_heap = self._closed_heap
        track = self.track_feedback
        horizon = self.feedback_horizon
        tracer = self.tracer
        tracing = tracer.enabled
        results: list[WindowResult] = []
        last_arrival = self._last_arrival

        grouped = isinstance(self.assigner, SlidingWindowAssigner)
        if grouped:
            cache = _SliceAssignCache(self.assigner)
            assign = cache.assign
        else:
            assign = self.assigner.assign
        # group: [on_time_windows, values, late_windows, key]
        groups: dict[tuple[object, int], list] = {}
        get_group = groups.get

        def flush_groups() -> None:
            for group in groups.values():
                values = group[1]
                if not values:
                    continue
                key = group[3]
                added = len(values)
                for window in group[0]:
                    slot = (key, window)
                    aggregate.add_many(open_slots[slot], values)
                    open_counts[slot] += added
                group[1] = []
            groups.clear()

        prev_offset = 0
        for index, element in enumerate(elements):
            arrival = element.arrival_time
            if arrival is not None and arrival > last_arrival:
                last_arrival = arrival
            end_offset, frontier = checkpoints[index]
            while prev_offset < end_offset:
                out = released[prev_offset]
                prev_offset += 1
                if not grouped:
                    self._ingest(out)
                    continue
                if tracing and tracer.detail:
                    tracer.element_admitted(last_arrival, out.event_time, out.key)
                windows = assign(out.event_time)
                group_key = (out.key, id(windows))
                group = get_group(group_key)
                if group is None:
                    close_frontier = self._close_frontier
                    on_time = windows
                    late: list[Window] = []
                    if windows and windows[0].end <= close_frontier:
                        on_time = [w for w in windows if w.end > close_frontier]
                        late = [w for w in windows if w.end <= close_frontier]
                    for window in on_time:
                        slot = (out.key, window)
                        if slot not in open_slots:
                            open_slots[slot] = aggregate.create()
                            open_counts[slot] = 0
                            self._heap_seq += 1
                            heapq.heappush(
                                open_heap,
                                (window.end, self._heap_seq, out.key, window),
                            )
                            if tracing:
                                tracer.window_open(
                                    last_arrival, out.key, window.start, window.end
                                )
                    # Keep a reference to the cached list itself: the group
                    # key uses id(windows), which must stay un-recyclable
                    # for as long as the group exists.
                    groups[group_key] = group = [on_time, [], late, out.key, windows]
                group[1].append(out.value)
                if group[2]:
                    for window in group[2]:
                        self._record_late((out.key, window), out, window)
            if tracing:
                tracer.frontier_advance(
                    last_arrival, frontier, self.handler.buffered_count()
                )
            if frontier > self._close_frontier:
                if open_heap and open_heap[0][0] <= frontier:
                    flush_groups()
                    results.extend(self._close_windows(frontier, last_arrival))
                else:
                    self._close_frontier = frontier
                if track and closed_heap and closed_heap[0][0] <= frontier - horizon:
                    self._retire_records(frontier)
        flush_groups()
        self._last_arrival = last_arrival
        return results

    def finish(self) -> list[WindowResult]:
        emit_time = self._last_arrival
        for out in self.handler.flush():
            self._ingest(out)
        results = self._close_windows(float("inf"), emit_time, flushed=True)
        self._retire_records(float("inf"))
        return results
