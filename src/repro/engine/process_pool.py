"""Process-pool shard execution: true multicore parallelism for shards.

The thread executor in :mod:`repro.engine.parallel` interleaves shards
under the GIL, so sharding buys algorithmic wins (smaller per-shard
windows) but no CPU parallelism — E20 measured sharded(4) *slower* than a
single tree.  :class:`ProcessShardExecutor` escapes the GIL: a persistent
warm pool of spawn-started worker processes each drives a subset of the
shards with the exact same :class:`~repro.engine.parallel.ShardRunner`
the thread path uses, so results are bit-identical across executors by
construction (property-tested in
``tests/property/test_process_equivalence.py``).

Three design points distinguish this from ``multiprocessing.Pool.map``:

* **Chunked, incremental dispatch.**  The coordinator ships each shard's
  elements in fixed-size chunks *while routing is still in progress*
  (the streaming half of the executor seam: ``begin``/``dispatch``/
  ``collect``), so workers compute during ingest instead of idling until
  stream end.
* **Compact wire encoding.**  Chunks cross the process boundary as a
  handful of ``array`` buffers (event times, arrivals, seqs, float
  values) plus at most two pickles per chunk (a non-float value list and
  a unique-key table) — never one pickle per element.  The module-level
  :data:`CODEC_STATS` probe counts pickle calls so tests can assert the
  contract.
* **Mergeable worker telemetry.**  Workers return picklable
  :class:`~repro.engine.parallel._ShardRun` snapshots (partial-aggregate
  accumulators ride along via ``_ShardPartial.__reduce__``) carrying
  serialized frontier timelines, per-shard trace events (re-timestamped
  into the coordinator's clock by ``TraceRecorder.absorb``) and metric
  deltas merged under ``shard.<id>.*``.

Failure handling: a worker exception is reported with its full traceback
and raised on the coordinator as
:class:`~repro.errors.ShardWorkerError`; a worker that dies without
reporting (crash, ``os._exit``, OOM kill) is detected by liveness
polling and raised with its exit code and owned shards.  Handlers,
assigners and aggregates that cannot pickle are rejected at *build* time
with a clear :class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import pickle
import struct
import traceback
from array import array
from dataclasses import dataclass
from queue import Empty
from typing import Any, Callable, Sequence

from repro.engine.checkpoint import dumps_state, loads_state
from repro.engine.parallel import ShardExecutor, ShardRunner, ShardTask, _ShardRun
from repro.errors import ConfigurationError, ShardWorkerError
from repro.streams.element import StreamElement

__all__ = [
    "CODEC_STATS",
    "ChunkCodecStats",
    "DEFAULT_CHUNK_SIZE",
    "ProcessShardExecutor",
    "ShardSpec",
    "decode_chunk",
    "encode_chunk",
]

#: Default elements per dispatched chunk.  Large enough that the fixed
#: per-chunk costs (queue round trip, header, key-table pickle) amortize
#: to well under a microsecond per element, small enough that workers
#: start computing long before stream end (see the tuning table in
#: ``docs/SCALING.md``).
DEFAULT_CHUNK_SIZE = 512

#: Wire header: element count, key-table size, value encoding kind, flags.
_CHUNK_HEADER = struct.Struct("<IIBB")

#: Value encodings: a raw float64 array, or one pickled list per chunk.
_VALUES_FLOAT64 = 0
_VALUES_PICKLE = 1

#: Header flag: every element's key is ``None`` (no key table on the wire).
_FLAG_NO_KEYS = 1


@dataclass(slots=True)
class ChunkCodecStats:
    """Serialization counters for the chunk codec (the wire-format probe).

    Tests assert ``pickle_calls <= 2 * chunks_encoded`` after arbitrarily
    large runs — the "no per-element pickling" acceptance criterion made
    checkable.  The module-level :data:`CODEC_STATS` instance is updated
    by every :func:`encode_chunk` call in the coordinator process.
    """

    __concurrency__ = "single-thread"

    chunks_encoded: int = 0
    elements_encoded: int = 0
    pickle_calls: int = 0
    wire_bytes: int = 0

    def reset(self) -> None:
        """Zero all counters (tests call this before a probed run)."""
        self.chunks_encoded = 0
        self.elements_encoded = 0
        self.pickle_calls = 0
        self.wire_bytes = 0


#: Process-wide codec probe; coordinator-side only (workers decode).
CODEC_STATS = ChunkCodecStats()


def encode_chunk(elements: Sequence[StreamElement]) -> bytes:
    """Encode an arrival-ordered element slice into the compact wire form.

    Timestamps and seqs travel as raw ``array`` buffers (``None`` arrival
    becomes a NaN sentinel); values take a float64 fast path when every
    payload is exactly a float, otherwise one pickle for the whole list;
    keys are deduplicated into a table pickled once per chunk plus a
    ``uint32`` index array.  At most two ``pickle.dumps`` calls per chunk,
    independent of the element count.
    """
    n = len(elements)
    event_times = array("d", (element.event_time for element in elements))
    arrivals = array(
        "d",
        (
            element.arrival_time if element.arrival_time is not None else math.nan
            for element in elements
        ),
    )
    seqs = array("q", (element.seq for element in elements))

    pickle_calls = 0
    values = [element.value for element in elements]
    if all(type(value) is float for value in values):
        values_kind = _VALUES_FLOAT64
        values_blob = array("d", values).tobytes()
    else:
        values_kind = _VALUES_PICKLE
        values_blob = pickle.dumps(values, protocol=pickle.HIGHEST_PROTOCOL)
        pickle_calls += 1

    flags = 0
    key_indices = b""
    key_table_blob = b""
    n_keys = 0
    if all(element.key is None for element in elements):
        flags |= _FLAG_NO_KEYS
    else:
        table: dict[Any, int] = {}
        indices = array("I")
        for element in elements:
            index = table.get(element.key)
            if index is None:
                index = len(table)
                table[element.key] = index
            indices.append(index)
        n_keys = len(table)
        key_indices = indices.tobytes()
        key_table_blob = pickle.dumps(
            list(table), protocol=pickle.HIGHEST_PROTOCOL
        )
        pickle_calls += 1

    payload = b"".join(
        (
            _CHUNK_HEADER.pack(n, n_keys, values_kind, flags),
            event_times.tobytes(),
            arrivals.tobytes(),
            seqs.tobytes(),
            struct.pack("<I", len(values_blob)),
            values_blob,
            key_indices,
            key_table_blob,
        )
    )
    CODEC_STATS.chunks_encoded += 1
    CODEC_STATS.elements_encoded += n
    CODEC_STATS.pickle_calls += pickle_calls
    CODEC_STATS.wire_bytes += len(payload)
    return payload


def decode_chunk(payload: bytes) -> list[StreamElement]:
    """Reconstruct the element slice encoded by :func:`encode_chunk`."""
    n, n_keys, values_kind, flags = _CHUNK_HEADER.unpack_from(payload, 0)
    offset = _CHUNK_HEADER.size

    event_times = array("d")
    event_times.frombytes(payload[offset : offset + 8 * n])
    offset += 8 * n
    arrivals = array("d")
    arrivals.frombytes(payload[offset : offset + 8 * n])
    offset += 8 * n
    seqs = array("q")
    seqs.frombytes(payload[offset : offset + 8 * n])
    offset += 8 * n

    (values_length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    values_blob = payload[offset : offset + values_length]
    offset += values_length
    if values_kind == _VALUES_FLOAT64:
        values_array = array("d")
        values_array.frombytes(values_blob)
        values: Sequence[Any] = values_array
    elif values_kind == _VALUES_PICKLE:
        values = pickle.loads(values_blob)
    else:
        raise ConfigurationError(f"unknown chunk value encoding {values_kind}")

    keys: Sequence[Any]
    if flags & _FLAG_NO_KEYS:
        keys = (None,) * n
    else:
        indices = array("I")
        indices.frombytes(payload[offset : offset + 4 * n])
        offset += 4 * n
        table = pickle.loads(payload[offset:])
        keys = [table[index] for index in indices]

    return [
        StreamElement(
            event_time=event_times[i],
            value=values[i],
            key=keys[i],
            arrival_time=None if math.isnan(arrivals[i]) else arrivals[i],
            seq=seqs[i],
        )
        for i in range(n)
    ]


@dataclass(frozen=True, slots=True)
class ShardSpec:
    """Everything a worker needs to run shards for one session.

    Broadcast (pickled once) to every worker at ``begin``; the handler
    travels as a :func:`~repro.engine.checkpoint.dumps_state` blob of a
    freshly built *prototype instance* — each shard unpickles its own
    copy, so per-shard adaptive state never crosses shards, exactly like
    the thread path calling the handler factory per shard.
    """

    __concurrency__ = "immutable"

    n_shards: int
    mode: str
    assigner: Any
    aggregate: Any
    handler_blob: bytes
    feedback_horizon: float | None
    track_feedback: bool
    sanitize: str | None
    trace_enabled: bool
    trace_detail: bool


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any) -> None:
    """Worker process loop: decode chunks, drive shard runners, report.

    Message protocol (all tuples, first item is the kind):

    * ``("begin", session, spec_blob)`` — reset state for a new run.
    * ``("chunk", session, shard_id, payload)`` — feed one encoded chunk.
    * ``("finish", session)`` — finish every owned shard, send one
      ``("run", session, shard_id, run_blob)`` per shard followed by
      ``("done", session, worker_id, shard_ids)``.
    * ``("stop",)`` — exit the loop.

    Any exception is reported as ``("error", session, worker_id, phase,
    shard_id, formatted_traceback)`` and the session is poisoned: further
    messages for it are ignored (the coordinator raises on the first
    error and tears the pool down).
    """
    from repro.obs.trace import NULL_TRACER, TraceRecorder

    spec: ShardSpec | None = None
    session = -1
    failed_session = -1
    runners: dict[int, ShardRunner] = {}
    tracers: dict[int, TraceRecorder] = {}
    chunk_counts: dict[int, int] = {}
    wire_bytes: dict[int, int] = {}
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "stop":
            return
        phase = kind
        shard_id = -1
        try:
            if kind == "begin":
                session = message[1]
                spec = loads_state(message[2])  # type: ignore[assignment]
                runners = {}
                tracers = {}
                chunk_counts = {}
                wire_bytes = {}
            elif kind == "chunk":
                if message[1] != session or session == failed_session:
                    continue
                shard_id = message[2]
                if spec is None:
                    raise ConfigurationError("chunk received before begin")
                runner = runners.get(shard_id)
                if runner is None:
                    tracer: Any = NULL_TRACER
                    if spec.trace_enabled:
                        tracer = TraceRecorder(detail=spec.trace_detail)
                        tracers[shard_id] = tracer
                    runner = ShardRunner(
                        shard_id,
                        spec.mode,
                        spec.assigner,
                        spec.aggregate,
                        loads_state(spec.handler_blob),  # type: ignore[arg-type]
                        feedback_horizon=spec.feedback_horizon,
                        track_feedback=spec.track_feedback,
                        sanitize=spec.sanitize,
                        tracer=tracer,
                    )
                    runners[shard_id] = runner
                    chunk_counts[shard_id] = 0
                    wire_bytes[shard_id] = 0
                payload = message[3]
                runner.feed(decode_chunk(payload))
                chunk_counts[shard_id] += 1
                wire_bytes[shard_id] += len(payload)
            elif kind == "finish":
                if message[1] != session or session == failed_session:
                    continue
                for shard_id in sorted(runners):
                    run = runners[shard_id].finish()
                    tracer_used = tracers.get(shard_id)
                    if tracer_used is not None:
                        run.trace_events = list(tracer_used.events)
                    run.metric_deltas = {
                        "chunks": chunk_counts[shard_id],
                        "wire_bytes": wire_bytes[shard_id],
                    }
                    result_queue.put(
                        ("run", session, shard_id, dumps_state(run))
                    )
                result_queue.put(
                    ("done", session, worker_id, sorted(runners))
                )
                runners = {}
                tracers = {}
                chunk_counts = {}
                wire_bytes = {}
        except BaseException:  # noqa: BLE001 — reported to the coordinator
            failed_session = session
            result_queue.put(
                ("error", session, worker_id, phase, shard_id, traceback.format_exc())
            )


class ProcessShardExecutor(ShardExecutor):
    """Streaming shard executor backed by a warm pool of worker processes.

    Args:
        max_workers: Process-count cap; defaults to
            ``min(n_shards, os.cpu_count())`` like the thread executor.
        chunk_size: Elements per dispatched chunk
            (default :data:`DEFAULT_CHUNK_SIZE`); the coordinator reads
            this through the executor seam to decide when to ship.
        start_method: Multiprocessing start method; ``"spawn"`` (the
            default) is the only portable, fork-safety-proof choice and
            is what the warm pool exists to amortize.

    The pool is *persistent*: workers survive :meth:`collect` and are
    reused by the next :meth:`begin` with a compatible worker count, so
    repeated runs (benchmarks, property tests) pay the spawn cost once.
    Workers are daemons — an abandoned executor cannot outlive the
    coordinator process — but :meth:`close` tears the pool down eagerly.
    Shards map to workers stickily (``shard_id % n_workers``), keeping
    each shard's chunks ordered on one worker's queue.
    """

    __concurrency__ = "single-thread"

    streaming = True

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        start_method: str = "spawn",
    ) -> None:
        if max_workers is not None and (
            not isinstance(max_workers, int)
            or isinstance(max_workers, bool)
            or max_workers < 1
        ):
            raise ConfigurationError(
                f"max_workers must be a positive int or None, got {max_workers!r}"
            )
        if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be a positive int, got {chunk_size!r}"
            )
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self._context = multiprocessing.get_context(start_method)
        self._workers: list[Any] = []
        self._task_queues: list[Any] = []
        self._result_queue: Any = None
        self._session = 0
        self._dispatched: set[int] = set()

    # -- seam: build-time validation ----------------------------------- #

    def validate(self, assigner: Any, aggregate: Any, handler: Any) -> None:
        """Reject unpicklable query parts at build time, with a real hint.

        Raises:
            ConfigurationError: naming the offending part, instead of the
                pickle traceback that would otherwise surface mid-run.
        """
        for label, part in (
            ("window assigner", assigner),
            ("aggregate", aggregate),
            ("disorder handler", handler),
        ):
            try:
                dumps_state(part)
            except Exception as error:
                raise ConfigurationError(
                    f"the process executor requires a picklable {label}, but "
                    f"{type(part).__name__} failed to pickle ({error}); use "
                    "module-level classes and functions — no lambdas, "
                    "closures or open resources — so shard workers can "
                    "reconstruct it"
                ) from None

    # -- pool lifecycle ------------------------------------------------- #

    def worker_count(self, n_shards: int) -> int:
        """Number of worker processes a run over ``n_shards`` will use."""
        cap = self.max_workers if self.max_workers is not None else (os.cpu_count() or 1)
        return max(1, min(n_shards, cap))

    def _ensure_pool(self, n_workers: int) -> None:
        if (
            len(self._workers) == n_workers
            and all(worker.is_alive() for worker in self._workers)
        ):
            return
        self.close()
        self._result_queue = self._context.Queue()
        for worker_id in range(n_workers):
            task_queue = self._context.Queue()
            worker = self._context.Process(
                target=_worker_main,
                args=(worker_id, task_queue, self._result_queue),
                name=f"repro-shard-worker-{worker_id}",
                daemon=True,
            )
            worker.start()
            self._task_queues.append(task_queue)
            self._workers.append(worker)

    def begin(self, spec: ShardSpec) -> None:
        """Start a session: (re)warm the pool and broadcast the spec."""
        self._ensure_pool(self.worker_count(spec.n_shards))
        self._session += 1
        self._dispatched = set()
        spec_blob = dumps_state(spec)
        for task_queue in self._task_queues:
            task_queue.put(("begin", self._session, spec_blob))

    def dispatch(self, shard_id: int, elements: Sequence[StreamElement]) -> int:
        """Encode and ship one chunk; returns its wire size in bytes."""
        payload = encode_chunk(elements)
        worker_index = shard_id % len(self._workers)
        self._task_queues[worker_index].put(
            ("chunk", self._session, shard_id, payload)
        )
        self._dispatched.add(shard_id)
        return len(payload)

    def collect(self) -> list[_ShardRun]:
        """Finish every shard and join the per-shard runs, by shard id.

        Raises:
            ShardWorkerError: a worker reported an exception (the message
                carries the worker-side traceback) or died silently (the
                message carries its exit code and owned shards).
        """
        for task_queue in self._task_queues:
            task_queue.put(("finish", self._session))
        awaiting = set(range(len(self._workers)))
        runs: dict[int, _ShardRun] = {}
        while awaiting:
            try:
                message = self._result_queue.get(timeout=0.2)
            except Empty:
                self._check_liveness(awaiting)
                continue
            kind = message[0]
            if message[1] != self._session:
                continue
            if kind == "run":
                run = loads_state(message[3])
                runs[message[2]] = run  # type: ignore[assignment]
            elif kind == "done":
                awaiting.discard(message[2])
            elif kind == "error":
                _, _, worker_id, phase, shard_id, trace_text = message
                self.close()
                where = f"shard {shard_id}" if shard_id >= 0 else "its control loop"
                raise ShardWorkerError(
                    f"shard worker {worker_id} failed in phase {phase!r} on "
                    f"{where}:\n--- worker traceback ---\n{trace_text}"
                )
        missing = self._dispatched - set(runs)
        if missing:
            self.close()
            raise ShardWorkerError(
                f"workers finished without reporting shards {sorted(missing)}"
            )
        return [runs[shard_id] for shard_id in sorted(runs)]

    def _check_liveness(self, awaiting: set[int]) -> None:
        """Raise if any worker we are waiting on has died silently."""
        n_workers = len(self._workers)
        for worker_id in sorted(awaiting):
            worker = self._workers[worker_id]
            if worker.is_alive():
                continue
            owned = sorted(
                shard_id
                for shard_id in self._dispatched
                if shard_id % n_workers == worker_id
            )
            exit_code = worker.exitcode
            self.close()
            raise ShardWorkerError(
                f"shard worker {worker_id} died (exit code {exit_code}) "
                f"before reporting; it owned shards {owned}"
            )

    def close(self) -> None:
        """Tear the pool down; the next ``begin`` will rebuild it."""
        for task_queue, worker in zip(self._task_queues, self._workers):
            if worker.is_alive():
                try:
                    task_queue.put(("stop",))
                except (OSError, ValueError):
                    pass
        for worker in self._workers:
            worker.join(timeout=2.0)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=1.0)
        for task_queue in self._task_queues:
            task_queue.close()
            task_queue.cancel_join_thread()
        if self._result_queue is not None:
            self._result_queue.close()
            self._result_queue.cancel_join_thread()
        self._workers = []
        self._task_queues = []
        self._result_queue = None

    # -- the batch half of the seam is not this executor's job ---------- #

    def run(
        self,
        fn: Callable[[ShardTask], _ShardRun],
        tasks: Sequence[ShardTask],
    ) -> list[_ShardRun]:
        """Unsupported: streaming executors are driven via the chunk path."""
        raise ConfigurationError(
            "ProcessShardExecutor is streaming-only; drive it through a "
            "ShardedWindowOperator (begin/dispatch/collect), not run()"
        )

    def describe(self) -> str:
        """Label the execution strategy for reports, e.g. ``processes(4)``."""
        if self._workers:
            return f"processes({len(self._workers)})"
        if self.max_workers is not None:
            return f"processes({self.max_workers})"
        return "processes(auto)"
