"""Reordering buffers used by buffer-based disorder handling.

A :class:`SortingBuffer` holds elements in a min-heap keyed by event time and
releases, on demand, every element at or below a threshold — turning an
arrival-ordered stream back into an event-time-ordered one up to the chosen
slack.
"""

from __future__ import annotations

import heapq

from repro.streams.element import StreamElement


class SortingBuffer:
    """Min-heap of stream elements ordered by (event_time, seq)."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, StreamElement]] = []
        self._max_size = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def max_size(self) -> int:
        """High-water mark of buffered elements (memory proxy)."""
        return self._max_size

    def push(self, element: StreamElement) -> None:
        """Insert one element (any event time, including below released)."""
        heapq.heappush(self._heap, (element.event_time, element.seq, element))
        if len(self._heap) > self._max_size:
            self._max_size = len(self._heap)

    def peek_event_time(self) -> float | None:
        """Event time of the oldest buffered element, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def release_until(self, threshold: float) -> list[StreamElement]:
        """Pop every element with ``event_time <= threshold``, in order."""
        released = []
        while self._heap and self._heap[0][0] <= threshold:
            released.append(heapq.heappop(self._heap)[2])
        return released

    def drain(self) -> list[StreamElement]:
        """Pop everything, in event-time order."""
        released = []
        while self._heap:
            released.append(heapq.heappop(self._heap)[2])
        return released
