"""Reordering buffers used by buffer-based disorder handling.

A :class:`SortingBuffer` holds elements in a min-heap keyed by event time and
releases, on demand, every element at or below a threshold — turning an
arrival-ordered stream back into an event-time-ordered one up to the chosen
slack.

The buffer exposes both scalar (``push``/``release_until`` one at a time) and
bulk (``push_many``, sort-and-split releases) entry points.  The bulk paths
exist for the batched execution layer: pushing a chunk re-heapifies once
instead of sifting per element, and a release that would pop a large fraction
of the heap switches from per-element ``heappop`` (O(m log n)) to sorting the
backing list and splitting it (O(n log n) with C-speed constants — faster in
practice once m is a sizeable share of n).  A sorted list is a valid min-heap,
so the remainder needs no re-heapify.
"""

from __future__ import annotations

import heapq

from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement


class SortingBuffer:
    """Min-heap of stream elements ordered by (event_time, seq).

    When a :class:`~repro.obs.trace.Tracer` is attached (handlers propagate
    theirs via ``set_tracer``), pushes, releases and the end-of-stream drain
    emit ``buffer.*`` trace records.  Buffer records are stamped with the
    **event-time** threshold of the operation (the buffer sits below the
    arrival clock and never sees arrival timestamps); the trace schema
    documents this domain caveat.
    """

    __concurrency__ = "single-thread"

    __slots__ = ("tracer", "_heap", "_max_size", "_released_total", "_tail_key")

    def __init__(self) -> None:
        #: Attached tracer; the shared null tracer keeps the hot path at one
        #: attribute check when tracing is off.
        self.tracer: Tracer = NULL_TRACER
        self._heap: list[tuple[float, int, StreamElement]] = []
        self._max_size = 0
        self._released_total = 0
        # Upper bound on the largest sort key ever pushed.  A batch whose
        # keys ascend from at least this bound extends the heap tail without
        # re-heapifying (appending an ascending run above the current max
        # keeps the heap invariant).  Never lowered on release: a released
        # key was <= some pushed key, so the bound stays valid.
        self._tail_key: tuple[float, int] = (float("-inf"), -(2**62))

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def max_size(self) -> int:
        """High-water mark of buffered elements (memory proxy)."""
        return self._max_size

    @property
    def released_total(self) -> int:
        """Cumulative count of elements released (``release_until``/``drain``)."""
        return self._released_total

    def push(self, element: StreamElement) -> None:
        """Insert one element (any event time, including below released)."""
        key = (element.event_time, element.seq)
        if key > self._tail_key:
            self._tail_key = key
        heapq.heappush(self._heap, (element.event_time, element.seq, element))
        if len(self._heap) > self._max_size:
            self._max_size = len(self._heap)
        if self.tracer.enabled:
            self.tracer.buffer_push(element.event_time, 1, len(self._heap))

    def push_many(self, elements: list[StreamElement]) -> None:
        """Insert a batch of elements.

        A batch that is already in event-time order and starts at or above
        every key pushed so far — the common shape during low-disorder
        phases — extends the heap tail directly: no re-heapify, no sift-ups.
        Otherwise, batches large relative to the heap extend the backing
        list and re-heapify once (O(n + m), beats m sift-ups); small ones
        sift per element.
        """
        if not elements:
            return
        heap = self._heap
        entries = [(element.event_time, element.seq, element) for element in elements]
        first_key = (entries[0][0], entries[0][1])
        if first_key >= self._tail_key and all(
            entries[i][:2] <= entries[i + 1][:2] for i in range(len(entries) - 1)
        ):
            heap.extend(entries)
            batch_max = (entries[-1][0], entries[-1][1])
        else:
            if len(entries) * 8 > len(heap):
                heap.extend(entries)
                heapq.heapify(heap)
            else:
                push = heapq.heappush
                for entry in entries:
                    push(heap, entry)
            batch_max = max(entry[:2] for entry in entries)
        if batch_max > self._tail_key:
            self._tail_key = batch_max
        if len(heap) > self._max_size:
            self._max_size = len(heap)
        if elements and self.tracer.enabled:
            self.tracer.buffer_push(
                elements[-1].event_time, len(elements), len(heap)
            )

    def peek_event_time(self) -> float | None:
        """Event time of the oldest buffered element, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def release_until(self, threshold: float) -> list[StreamElement]:
        """Pop every element with ``event_time <= threshold``, in order.

        Small releases use per-element ``heappop``; once a release turns out
        to cover a large fraction of the heap, the remainder is sorted and
        split instead (the sorted tail stays a valid heap).
        """
        heap = self._heap
        released: list[StreamElement] = []
        if not heap or heap[0][0] > threshold:
            return released
        append = released.append
        pop = heapq.heappop
        pop_budget = max(16, len(heap) // 4)
        while heap and heap[0][0] <= threshold:
            append(pop(heap)[2])
            pop_budget -= 1
            if pop_budget == 0 and heap and heap[0][0] <= threshold:
                heap.sort()
                split = self._split_index(threshold)
                released.extend(entry[2] for entry in heap[:split])
                del heap[:split]
                break
        self._released_total += len(released)
        if released and self.tracer.enabled:
            self.tracer.buffer_release(threshold, len(released), len(heap))
        return released

    def _split_index(self, threshold: float) -> int:
        """First index in the (sorted) backing list with event time > threshold."""
        heap = self._heap
        lo, hi = 0, len(heap)
        while lo < hi:
            mid = (lo + hi) // 2
            if heap[mid][0] <= threshold:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def drain(self) -> list[StreamElement]:
        """Pop everything, in event-time order."""
        heap = self._heap
        heap.sort()
        released = [entry[2] for entry in heap]
        heap.clear()
        self._released_total += len(released)
        if released and self.tracer.enabled:
            self.tracer.buffer_flush(released[-1].event_time, len(released))
        return released
