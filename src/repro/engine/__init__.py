"""Continuous-query engine: operators, windows, aggregates, disorder handling."""

from repro.engine.aggregate_op import (
    OperatorStats,
    WindowAggregateOperator,
    relative_error,
)
from repro.engine.aggregates import (
    AggregateFunction,
    CountAggregate,
    DistinctCountAggregate,
    MaxAggregate,
    MeanAggregate,
    MedianAggregate,
    MinAggregate,
    QuantileAggregate,
    RangeAggregate,
    StdDevAggregate,
    SumAggregate,
    make_aggregate,
)
from repro.engine.buffer import SortingBuffer
from repro.engine.handlers import (
    DisorderHandler,
    KSlackHandler,
    MPKSlackHandler,
    NoBufferHandler,
)
from repro.engine.join import IntervalJoinOperator, JoinResult, oracle_join_pairs
from repro.engine.metrics import LatencySummary, RunMetrics, SlackSample
from repro.engine.multisource import MultiSourceWatermarkHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.oracle import oracle_results
from repro.engine.partial_tree import (
    EXECUTION_MODES,
    SharedSliceStore,
    TreeWindowAggregateOperator,
    make_window_operator,
    run_shared_slices,
)
from repro.engine.parallel import (
    ShardExecutor,
    ShardRunner,
    ShardTask,
    ShardedHandlerView,
    ShardedWindowOperator,
    ThreadShardExecutor,
    stable_shard,
)
from repro.engine.process_pool import (
    DEFAULT_CHUNK_SIZE,
    ProcessShardExecutor,
    ShardSpec,
    decode_chunk,
    encode_chunk,
)
from repro.engine.pipeline import RunOutput, run_pipeline
from repro.engine.retraction import (
    SpeculativeAggregateOperator,
    final_values,
    initial_latencies,
)
from repro.engine.checkpoint import load_checkpoint, save_checkpoint
from repro.engine.pattern import (
    PatternMatch,
    SequencePatternOperator,
    oracle_pattern_matches,
    pattern_recall,
)
from repro.engine.session_op import SessionAggregateOperator
from repro.engine.sliced_op import SlicedWindowAggregateOperator
from repro.engine.topk import ApproxTopKAggregate, TopKCountAggregate
from repro.engine.sketches import (
    ApproxDistinctAggregate,
    ApproxQuantileAggregate,
    HyperLogLog,
    P2Quantile,
    SpaceSaving,
)
from repro.engine.watermarks import (
    FixedLagWatermarkHandler,
    HeuristicWatermarkHandler,
    PerfectWatermarkHandler,
)
from repro.engine.windows import (
    SessionWindowMerger,
    SlidingWindowAssigner,
    TumblingWindowAssigner,
    Window,
    WindowAssigner,
    sliding,
    tumbling,
)

__all__ = [
    "AggregateFunction",
    "ApproxDistinctAggregate",
    "ApproxQuantileAggregate",
    "ApproxTopKAggregate",
    "CountAggregate",
    "DEFAULT_CHUNK_SIZE",
    "DisorderHandler",
    "DistinctCountAggregate",
    "EXECUTION_MODES",
    "FixedLagWatermarkHandler",
    "HeuristicWatermarkHandler",
    "HyperLogLog",
    "IntervalJoinOperator",
    "JoinResult",
    "KSlackHandler",
    "LatencySummary",
    "MPKSlackHandler",
    "MaxAggregate",
    "MeanAggregate",
    "MedianAggregate",
    "MinAggregate",
    "MultiSourceWatermarkHandler",
    "NoBufferHandler",
    "Operator",
    "OperatorStats",
    "P2Quantile",
    "PatternMatch",
    "PerfectWatermarkHandler",
    "ProcessShardExecutor",
    "QuantileAggregate",
    "RangeAggregate",
    "RunMetrics",
    "RunOutput",
    "SequencePatternOperator",
    "SessionAggregateOperator",
    "SessionWindowMerger",
    "ShardExecutor",
    "ShardRunner",
    "ShardSpec",
    "ShardTask",
    "ShardedHandlerView",
    "ShardedWindowOperator",
    "SharedSliceStore",
    "SlackSample",
    "SlicedWindowAggregateOperator",
    "SlidingWindowAssigner",
    "SortingBuffer",
    "SpaceSaving",
    "SpeculativeAggregateOperator",
    "StdDevAggregate",
    "SumAggregate",
    "ThreadShardExecutor",
    "TopKCountAggregate",
    "TreeWindowAggregateOperator",
    "TumblingWindowAssigner",
    "Window",
    "WindowAggregateOperator",
    "WindowAssigner",
    "WindowResult",
    "decode_chunk",
    "encode_chunk",
    "final_values",
    "initial_latencies",
    "load_checkpoint",
    "make_aggregate",
    "make_window_operator",
    "oracle_join_pairs",
    "oracle_pattern_matches",
    "oracle_results",
    "pattern_recall",
    "relative_error",
    "run_pipeline",
    "run_shared_slices",
    "save_checkpoint",
    "sliding",
    "stable_shard",
    "tumbling",
]
