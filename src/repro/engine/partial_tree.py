"""Partial-aggregate tree execution and the shared slice store.

The sliced operator (:mod:`repro.engine.sliced_op`) already reduces
per-element work to one accumulator add, but a *closing window* still pays a
merge chain over all ``size/slide`` constituent slices, and every late
element invalidates nothing — corrections re-merge the full chain again at
retirement.  Following the FiBA line of work (Tangwongsan, Hirzel &
Schneider: amortized O(1) in-order inserts, O(log d) out-of-order inserts),
this module keeps the event-time-ordered slices as the leaves of a **dyadic
partial-aggregate tree**:

* node ``(level, i)`` caches the merged aggregate of slices
  ``[i * 2^level, (i + 1) * 2^level)``; nodes are materialized lazily the
  first time a window reads them and reused by every later window;
* a closing window combines the ~``2 * log2(size/slide)`` cached nodes of
  its dyadic decomposition instead of merging ``size/slide`` slices;
* an in-order append touches one leaf slice and defers a single dirty-mark
  walk — amortized O(1);
* a late element patches only the O(log d) path of cached ancestors above
  its slice; every other cached partial stays valid, and retirement
  corrections reuse the patched partials.

:class:`TreeWindowAggregateOperator` wires the tree into the standard
operator protocol (``mode="tree"`` of :func:`make_window_operator`), with
semantics identical to the naive and sliced operators — enforced by the
property suite in ``tests/property/test_tree_equivalence.py``.

:class:`SharedSliceStore` extends the sharing across *queries*: concurrent
queries over the same stream whose windows are multiples of one common
slide share a single slice stream and a single tree.  Each query keeps only
its own close/retire cursors and release schedule (fixed slack or an
adaptive advisor fed observation-only), so per-element aggregation work is
paid once instead of once per query — the scaling experiment E19 measures
both effects.

Numerics: interior nodes are built exclusively with ``aggregate.merge``,
so the tree inherits the compensated arithmetic of
:mod:`repro.core.numeric` for sum/mean — partial totals carry their
Neumaier compensation term upward, keeping the whole dyadic decomposition
at O(1)-ulp error regardless of tree depth (``docs/NUMERICS.md``); the
NumSan sanitizer verifies this against an exact reference in tree mode
too.
"""

from __future__ import annotations

import heapq
import math
import threading

from repro.engine.aggregate_op import OperatorStats, relative_error
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import SlidingWindowAssigner, Window
from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement
from repro.streams.timebase import (
    ArrivalTimeStamp,
    DurationS,
    EventTimeFrontier,
    EventTimeStamp,
    MonotoneFrontier,
)


def _ignore_error(error: float) -> None:
    """Error sink for shared queries without an adaptive advisor."""


class _SliceTree:
    """Dyadic tree of cached partial aggregates over event-time slices.

    Leaves (level 0) are the slice accumulators — the source of truth,
    updated in place by ingestion.  Interior nodes are created lazily at
    query time and cached as ``[accumulator, count, dirty]``.  Two
    invariants keep reads cheap and writes O(log):

    1. a cached node whose covered slices changed is marked ``dirty``;
    2. a cached *clean* node has only clean cached descendants (recomputes
       refresh whole dirty subtrees, creations derive from fresh children).

    Invariant 2 lets the dirty-mark walk stop at the first already-dirty
    ancestor.  Marking itself is deferred: ingestion only records touched
    slices in a set, and :meth:`flush_touched` walks them immediately
    before any partials are read — so a burst of appends into one slice
    costs one walk, not one per element.
    """

    __concurrency__ = "single-thread"

    __slots__ = (
        "aggregate",
        "slide",
        "span",
        "max_level",
        "tracer",
        "sim_time",
        "patches",
        "max_patch_depth",
        "recomputes",
        "_slices",
        "_nodes",
        "_touched",
        "_slice_gc",
        "_node_gc",
        "_gc_seq",
    )

    def __init__(self, aggregate: AggregateFunction, slide: DurationS, span: int) -> None:
        self.aggregate = aggregate
        self.slide = slide
        self.set_span(span)
        self.tracer: Tracer = NULL_TRACER
        #: Simulated-time stamp for trace records; the owning operator
        #: refreshes it (only while tracing) before driving the tree.
        self.sim_time = 0.0
        self.patches = 0
        self.max_patch_depth = 0
        self.recomputes = 0
        # (key, slice_index) -> [accumulator, count]
        self._slices: dict[tuple[object, int], list] = {}
        # (key, level, index) -> [accumulator, count, dirty]
        self._nodes: dict[tuple[object, int, int], list] = {}
        self._touched: set[tuple[object, int]] = set()
        self._slice_gc: list[tuple[float, int, tuple[object, int]]] = []
        self._node_gc: list[tuple[float, int, tuple[object, int, int]]] = []
        self._gc_seq = 0

    def set_span(self, span: int) -> None:
        """Set the widest window extent (in slices) any reader uses.

        The span bounds both garbage-collection expiries and the height of
        the dirty-mark walk; :class:`SharedSliceStore` raises it as queries
        register (before any element is ingested).
        """
        if span < 1:
            raise ConfigurationError(f"span must be >= 1, got {span}")
        self.span = span
        # Decompositions of a span-length range use nodes up to one level
        # above log2(span); the +1 absorbs the off-by-one of odd alignments.
        self.max_level = max(1, (span - 1).bit_length() + 1)

    # ------------------------------------------------------------------ #
    # ingestion side

    def slice_of(self, timestamp: EventTimeStamp) -> int:
        """Slice index containing ``timestamp`` (FP-guarded floor)."""
        slide = self.slide
        index = math.floor(timestamp / slide)
        while index * slide > timestamp:
            index -= 1
        while (index + 1) * slide <= timestamp:
            index += 1
        return index

    def entry(self, key: object, slice_index: int) -> list:
        """Get-or-create the leaf accumulator entry for a slice."""
        slot = (key, slice_index)
        entry = self._slices.get(slot)
        if entry is None:
            entry = [self.aggregate.create(), 0]
            self._slices[slot] = entry
            self._gc_seq += 1
            heapq.heappush(
                self._slice_gc,
                ((slice_index + self.span) * self.slide, self._gc_seq, slot),
            )
        return entry

    def touch(self, key: object, slice_index: int) -> None:
        """Record that a slice's accumulator changed (mark walk deferred)."""
        self._touched.add((key, slice_index))

    def flush_touched(self) -> None:
        """Dirty-mark the cached ancestors of every touched slice."""
        touched = self._touched
        if not touched:
            return
        nodes = self._nodes
        max_level = self.max_level
        tracer = self.tracer
        tracing = tracer.enabled
        for key, index in touched:
            depth = 0
            idx = index
            for level in range(1, max_level + 1):
                idx >>= 1
                node = nodes.get((key, level, idx))
                if node is not None:
                    if node[2]:
                        # Invariant 2: its cached ancestors are already dirty.
                        break
                    node[2] = True
                    depth += 1
            if depth:
                self.patches += 1
                if depth > self.max_patch_depth:
                    self.max_patch_depth = depth
                if tracing:
                    tracer.tree_patch(self.sim_time, index, depth)
        touched.clear()

    # ------------------------------------------------------------------ #
    # query side

    def _node_value(self, key: object, level: int, index: int) -> list | None:
        """Fresh value of node ``(level, index)``: ``[acc, count, ...]``.

        Level 0 reads the slice store directly; interior nodes are served
        from cache when clean and recomputed (recursively, refreshing the
        whole dirty subtree) otherwise.  Returns ``None`` for uncovered
        ranges; callers skip entries with a zero count.
        """
        if level == 0:
            return self._slices.get((key, index))
        slot = (key, level, index)
        node = self._nodes.get(slot)
        if node is not None and not node[2]:
            return node
        left = self._node_value(key, level - 1, index + index)
        right = self._node_value(key, level - 1, index + index + 1)
        aggregate = self.aggregate
        accumulator = aggregate.create()
        count = 0
        if left is not None and left[1]:
            aggregate.merge(accumulator, left[0])
            count += left[1]
        if right is not None and right[1]:
            aggregate.merge(accumulator, right[0])
            count += right[1]
        self.recomputes += 1
        if node is None:
            node = [accumulator, count, False]
            self._nodes[slot] = node
            self._gc_seq += 1
            last_slice = ((index + 1) << level) - 1
            heapq.heappush(
                self._node_gc,
                ((last_slice + self.span) * self.slide, self._gc_seq, slot),
            )
        else:
            node[0] = accumulator
            node[1] = count
            node[2] = False
        return node

    def assemble(self, key: object, lo: int, hi: int) -> tuple[object, int, int]:
        """Combine cached partials covering slices ``[lo, hi)``.

        Classic bottom-up dyadic decomposition: ~``2 * log2(hi - lo)``
        node reads, each served from cache or recomputed along its dirty
        path.  Returns ``(accumulator, count, nodes_combined)``; the
        accumulator is fresh (cached partials are never mutated).
        Callers must :meth:`flush_touched` first.
        """
        aggregate = self.aggregate
        accumulator = aggregate.create()
        count = 0
        nodes_combined = 0
        node_value = self._node_value
        level = 0
        while lo < hi:
            if lo & 1:
                entry = node_value(key, level, lo)
                lo += 1
                if entry is not None and entry[1]:
                    aggregate.merge(accumulator, entry[0])
                    count += entry[1]
                    nodes_combined += 1
            if hi & 1:
                hi -= 1
                entry = node_value(key, level, hi)
                if entry is not None and entry[1]:
                    aggregate.merge(accumulator, entry[0])
                    count += entry[1]
                    nodes_combined += 1
            lo >>= 1
            hi >>= 1
            level += 1
        return accumulator, count, nodes_combined

    # ------------------------------------------------------------------ #
    # retention

    def gc_due(self, threshold: EventTimeStamp) -> bool:
        """Whether :meth:`gc` would drop anything at this threshold."""
        slice_gc = self._slice_gc
        node_gc = self._node_gc
        return bool(
            (slice_gc and slice_gc[0][0] <= threshold)
            or (node_gc and node_gc[0][0] <= threshold)
        )

    def gc(self, threshold: EventTimeStamp) -> None:
        """Drop slices and nodes no reader can reach anymore.

        An entry covering slices up to ``s`` expires once the last window
        containing ``s`` (ending at ``(s + span) * slide``) is past the
        threshold — the caller subtracts its feedback horizon first.
        """
        heap = self._slice_gc
        slices = self._slices
        pop = heapq.heappop
        while heap and heap[0][0] <= threshold:
            slices.pop(pop(heap)[2], None)
        heap = self._node_gc
        nodes = self._nodes
        while heap and heap[0][0] <= threshold:
            nodes.pop(pop(heap)[2], None)

    def slice_count(self) -> int:
        """Currently retained leaf slices (memory proxy)."""
        return len(self._slices)

    def node_count(self) -> int:
        """Currently cached interior nodes (memory proxy)."""
        return len(self._nodes)


class _QueryWindowView:
    """Per-query window close/retire cursors over a shared slice tree.

    The sliced operator registers every window end of every new slice in a
    global heap — O(size/slide) pushes per slice, which would cap the tree's
    win exactly where overlap is high.  A view instead tracks, per key, the
    contiguous range of window-end indices still to close
    (``next_end..max_end``) plus one scheduling entry per key in a heap:
    closing a window is O(1) amortized regardless of overlap.
    """

    __concurrency__ = "single-thread"

    __slots__ = (
        "tree",
        "size",
        "span",
        "feedback_horizon",
        "track_feedback",
        "stats",
        "close_frontier",
        "_next_end",
        "_max_end",
        "_scheduled",
        "_pending",
        "_heap_seq",
        "_emitted",
        "_emitted_heap",
    )

    def __init__(
        self,
        tree: _SliceTree,
        size: DurationS,
        span: int,
        feedback_horizon: DurationS,
        track_feedback: bool,
    ) -> None:
        self.tree = tree
        self.size = size
        self.span = span
        self.feedback_horizon = feedback_horizon
        self.track_feedback = track_feedback
        self.stats = OperatorStats()
        self.close_frontier = float("-inf")
        self._next_end: dict[object, int] = {}
        self._max_end: dict[object, int] = {}
        self._scheduled: set[object] = set()
        # One entry per key with closable windows: (next end time, seq, key).
        self._pending: list[tuple[float, int, object]] = []
        self._heap_seq = 0
        # Emitted values awaiting feedback retirement: (key, end) -> value.
        self._emitted: dict[tuple[object, float], float] = {}
        self._emitted_heap: list[tuple[float, int, object]] = []

    def late_count(self, slice_index: int) -> int:
        """Already-closed windows containing the slice (lateness verdict).

        Mirrors the sliced operator's accounting exactly: one drop per
        closed window with a non-negative start.
        """
        close_frontier = self.close_frontier
        slide = self.tree.slide
        if (slice_index + 1) * slide > close_frontier:
            return 0
        size = self.size
        late = 0
        for offset in range(self.span):
            end = (slice_index + 1 + offset) * slide
            if end <= close_frontier and end - size >= 0:
                late += 1
        return late

    def note_slice(self, key: object, slice_index: int) -> None:
        """Extend the key's closable end range to cover a touched slice.

        The range can grow at *both* ends: behind a sorting buffer only the
        top moves, but the shared store ingests at raw arrival order, so an
        out-of-order (yet not late) element may touch a slice below the
        current range start.  The rewind is clamped to the first end above
        the close frontier — everything at or below it is skipped by
        ``close_windows``'s previous-frontier check anyway, and an unclamped
        rewind would make every late element cost a re-walk proportional to
        its lateness.  The clamp also means truly late elements (the common
        case behind a sorting buffer) never lower ``_next_end`` at all.
        """
        first_end = slice_index + 1
        last_end = slice_index + self.span
        max_end_map = self._max_end
        max_end = max_end_map.get(key)
        if max_end is None:
            max_end_map[key] = max_end = last_end
            self._next_end[key] = first_end
        else:
            if last_end > max_end:
                max_end_map[key] = max_end = last_end
            elif first_end >= self._next_end[key]:
                # Late data inside the known range: every containing window
                # is either already pending or already closed.
                return
            if first_end < self._next_end[key]:
                rewind_to = first_end
                close_frontier = self.close_frontier
                if close_frontier > float("-inf"):
                    slide = self.tree.slide
                    floor = int(close_frontier / slide)
                    while floor * slide <= close_frontier:
                        floor += 1
                    if floor > rewind_to:
                        rewind_to = floor
                if rewind_to < self._next_end[key]:
                    self._next_end[key] = rewind_to
                    # Any queued entry for this key now has a stale (too
                    # high) priority; drop the guard so a fresh entry is
                    # pushed below.
                    self._scheduled.discard(key)
        if key not in self._scheduled and self._next_end[key] <= max_end:
            self._heap_seq += 1
            heapq.heappush(
                self._pending,
                (self._next_end[key] * self.tree.slide, self._heap_seq, key),
            )
            self._scheduled.add(key)

    def close_windows(
        self,
        frontier: EventTimeStamp,
        emit_time: ArrivalTimeStamp,
        tracer: Tracer,
        flushed: bool = False,
    ) -> list[WindowResult]:
        """Emit every window with ``end <= frontier`` not yet closed."""
        pending = self._pending
        if not pending or pending[0][0] > frontier:
            if frontier > self.close_frontier:
                self.close_frontier = frontier
            return []
        tree = self.tree
        tree.flush_touched()
        aggregate = tree.aggregate
        slide = tree.slide
        size = self.size
        span = self.span
        previous_frontier = self.close_frontier
        track = self.track_feedback
        tracing = tracer.enabled
        results: list[WindowResult] = []
        while pending and pending[0][0] <= frontier:
            __, __, key = heapq.heappop(pending)
            self._scheduled.discard(key)
            next_end = self._next_end[key]
            max_end = self._max_end[key]
            while next_end <= max_end:
                end = next_end * slide
                if end > frontier:
                    break
                end_index = next_end
                next_end += 1
                if end <= previous_frontier:
                    continue  # closed before this key's data appeared
                start = end - size
                if start < 0:
                    continue
                lo = end_index - span
                accumulator, count, nodes_combined = tree.assemble(
                    key, lo if lo > 0 else 0, end_index
                )
                if tracing:
                    tracer.tree_assemble(emit_time, key, end, nodes_combined)
                if count == 0:
                    continue
                value = aggregate.result(accumulator)
                results.append(
                    WindowResult(
                        key=key,
                        window=Window(start, end),
                        value=value,
                        count=count,
                        emit_time=emit_time,
                        latency=emit_time - end,
                        flushed=flushed,
                    )
                )
                if tracing:
                    tracer.window_close(
                        emit_time, key, start, end, value, count,
                        emit_time - end, flushed,
                    )
                if track:
                    self._emitted[(key, end)] = value
                    self._heap_seq += 1
                    heapq.heappush(self._emitted_heap, (end, self._heap_seq, key))
            self._next_end[key] = next_end
            if next_end <= max_end:
                self._heap_seq += 1
                heapq.heappush(pending, (next_end * slide, self._heap_seq, key))
                self._scheduled.add(key)
        if frontier > self.close_frontier:
            self.close_frontier = frontier
        self.stats.results_out += len(results)
        return results

    def retire_due(self, frontier: EventTimeStamp) -> bool:
        """Whether retirement at this frontier would score any window."""
        heap = self._emitted_heap
        return bool(
            self.track_feedback
            and heap
            and heap[0][0] <= frontier - self.feedback_horizon
        )

    def retire(self, frontier: EventTimeStamp, observe_error) -> None:
        """Score emitted-vs-corrected error for windows leaving the horizon.

        Corrections reuse the tree: the patched partials above late slices
        serve every correction in O(log) instead of a fresh merge chain.
        """
        if not self.track_feedback:
            return
        heap = self._emitted_heap
        retire_before = frontier - self.feedback_horizon
        if not heap or heap[0][0] > retire_before:
            return
        tree = self.tree
        tree.flush_touched()
        aggregate = tree.aggregate
        slide = tree.slide
        span = self.span
        while heap and heap[0][0] <= retire_before:
            end, __, key = heapq.heappop(heap)
            emitted = self._emitted.pop((key, end), None)
            if emitted is None:
                continue
            end_index = int(round(end / slide))
            lo = end_index - span
            accumulator, count, __ = tree.assemble(
                key, lo if lo > 0 else 0, end_index
            )
            corrected = aggregate.result(accumulator) if count else math.nan
            error = relative_error(emitted, corrected)
            self.stats.observed_errors.append(error)
            observe_error(error)


class TreeWindowAggregateOperator(Operator):
    """Sliding-window aggregation over a partial-aggregate slice tree.

    Drop-in alternative to the naive and sliced operators (``mode="tree"``):
    same results, same late/feedback semantics, but closing a window costs
    O(log(size/slide)) cached-partial merges instead of a full slice chain,
    and late elements invalidate only their O(log) ancestor path.  Requires
    the slide to divide the window size and a mergeable aggregate — the
    same preconditions as sliced execution.
    """

    __concurrency__ = "single-thread"

    #: Attached tracer (see :mod:`repro.obs.trace`); the shared null tracer
    #: keeps instrumented paths at one attribute check when tracing is off.
    tracer: Tracer = NULL_TRACER

    def __init__(
        self,
        assigner: SlidingWindowAssigner,
        aggregate: AggregateFunction,
        handler: DisorderHandler,
        feedback_horizon: DurationS | None = None,
        track_feedback: bool = True,
    ) -> None:
        if not isinstance(assigner, SlidingWindowAssigner):
            raise ConfigurationError(
                "tree execution requires a sliding/tumbling window assigner"
            )
        ratio = assigner.size / assigner.slide
        if abs(ratio - round(ratio)) > 1e-9:
            raise ConfigurationError(
                "tree execution requires slide to divide size "
                f"(got size={assigner.size}, slide={assigner.slide}); "
                "use WindowAggregateOperator for unaligned windows"
            )
        self.assigner = assigner
        self.aggregate = aggregate
        self.handler = handler
        self.slices_per_window = int(round(ratio))
        if feedback_horizon is None:
            feedback_horizon = 5.0 * assigner.size
        if feedback_horizon < 0:
            raise ConfigurationError(
                f"feedback_horizon must be non-negative, got {feedback_horizon}"
            )
        self.feedback_horizon = feedback_horizon
        self.track_feedback = track_feedback
        self._tree = _SliceTree(aggregate, assigner.slide, self.slices_per_window)
        self._view = _QueryWindowView(
            self._tree,
            assigner.size,
            self.slices_per_window,
            feedback_horizon,
            track_feedback,
        )
        self.stats = self._view.stats
        self._last_arrival = 0.0

    # ------------------------------------------------------------------ #
    # tracing

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to this operator, its tree and its handler."""
        self.tracer = tracer
        self._tree.tracer = tracer
        set_handler_tracer = getattr(self.handler, "set_tracer", None)
        if set_handler_tracer is not None:
            set_handler_tracer(tracer)

    # ------------------------------------------------------------------ #
    # ingestion

    def _ingest(self, element: StreamElement) -> None:
        tree = self._tree
        slice_index = tree.slice_of(element.event_time)
        key = element.key
        entry = tree.entry(key, slice_index)
        late = self._view.late_count(slice_index)
        if late:
            self.stats.late_dropped += late
        self.aggregate.add(entry[0], element.value)
        entry[1] += 1
        tree.touch(key, slice_index)
        self._view.note_slice(key, slice_index)

    def _retire(self, frontier: EventTimeStamp) -> None:
        self._view.retire(frontier, self.handler.observe_error)
        horizon = self.feedback_horizon if self.track_feedback else 0.0
        self._tree.gc(frontier - horizon)

    # ------------------------------------------------------------------ #
    # Operator protocol

    def process(self, element: StreamElement) -> list[WindowResult]:
        self.stats.elements_in += 1
        arrival = element.arrival_time
        if arrival is not None and arrival > self._last_arrival:
            self._last_arrival = arrival
        emit_time = self._last_arrival
        tracer = self.tracer
        if tracer.enabled:
            self._tree.sim_time = emit_time
        for out in self.handler.offer(element):
            self._ingest(out)
        frontier = self.handler.frontier
        results = self._view.close_windows(frontier, emit_time, tracer)
        self._retire(frontier)
        return results

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Batched ingest: equivalent to ``process`` element-for-element.

        Released elements are grouped by (key, slice); each group's values
        fold into the leaf accumulator once per close/retire boundary via
        ``add_many``.  Per-element frontier checkpoints from the handler
        replay closes and retirement at exactly the scalar steps.
        """
        if not elements:
            return []
        self.stats.elements_in += len(elements)
        released, checkpoints = self.handler.offer_many(elements)
        aggregate = self.aggregate
        tree = self._tree
        view = self._view
        pending = view._pending
        track = self.track_feedback
        gc_horizon = self.feedback_horizon if track else 0.0
        slice_of = tree.slice_of
        tracer = self.tracer
        tracing = tracer.enabled
        results: list[WindowResult] = []
        last_arrival = self._last_arrival
        # group: [slice_entry, values, late_count]
        groups: dict[tuple[object, int], list] = {}
        get_group = groups.get

        def flush_groups() -> None:
            for group in groups.values():
                values = group[1]
                if values:
                    entry = group[0]
                    aggregate.add_many(entry[0], values)
                    entry[1] += len(values)
            groups.clear()

        prev_offset = 0
        for index, element in enumerate(elements):
            arrival = element.arrival_time
            if arrival is not None and arrival > last_arrival:
                last_arrival = arrival
            end_offset, frontier = checkpoints[index]
            while prev_offset < end_offset:
                out = released[prev_offset]
                prev_offset += 1
                slice_index = slice_of(out.event_time)
                group_key = (out.key, slice_index)
                group = get_group(group_key)
                if group is None:
                    entry = tree.entry(out.key, slice_index)
                    tree.touch(out.key, slice_index)
                    view.note_slice(out.key, slice_index)
                    groups[group_key] = group = [
                        entry,
                        [],
                        view.late_count(slice_index),
                    ]
                group[1].append(out.value)
                if group[2]:
                    self.stats.late_dropped += group[2]
            if frontier > view.close_frontier:
                if tracing:
                    tree.sim_time = last_arrival
                if pending and pending[0][0] <= frontier:
                    flush_groups()
                    results.extend(view.close_windows(frontier, last_arrival, tracer))
                else:
                    view.close_frontier = frontier
                if view.retire_due(frontier) or tree.gc_due(frontier - gc_horizon):
                    flush_groups()
                    self._retire(frontier)
        flush_groups()
        self._last_arrival = last_arrival
        return results

    def finish(self) -> list[WindowResult]:
        emit_time = self._last_arrival
        tracer = self.tracer
        if tracer.enabled:
            self._tree.sim_time = emit_time
        for out in self.handler.flush():
            self._ingest(out)
        results = self._view.close_windows(
            float("inf"), emit_time, tracer, flushed=True
        )
        self._retire(float("inf"))
        return results

    # ------------------------------------------------------------------ #
    # introspection

    def slice_count(self) -> int:
        """Currently retained leaf slices (memory proxy)."""
        return self._tree.slice_count()

    def node_count(self) -> int:
        """Currently cached interior partial-aggregate nodes."""
        return self._tree.node_count()

    @property
    def patch_count(self) -> int:
        """Dirty-path patches applied (one per touched slice with cached
        ancestors)."""
        return self._tree.patches

    @property
    def max_patch_depth(self) -> int:
        """Deepest ancestor path invalidated by a single patch."""
        return self._tree.max_patch_depth

    @property
    def recompute_count(self) -> int:
        """Interior nodes computed or recomputed at query time."""
        return self._tree.recomputes


class _SharedQuery:
    """Registration record of one query inside a :class:`SharedSliceStore`."""

    __concurrency__ = "single-thread"  # driven under the store's lock

    __slots__ = (
        "query_id",
        "view",
        "advisor",
        "slack",
        "frontier",
        "observe_error",
        "cursor",
    )

    def __init__(
        self,
        query_id: str,
        view: _QueryWindowView,
        advisor: object | None,
        slack: DurationS,
    ) -> None:
        self.query_id = query_id
        self.view = view
        self.advisor = advisor
        self.slack = slack
        self.frontier = MonotoneFrontier()
        self.observe_error = (
            advisor.observe_error
            if advisor is not None and hasattr(advisor, "observe_error")
            else _ignore_error
        )
        #: Absolute index into the store's ingest log of the next element
        #: this query has yet to process (see SharedSliceStore.advance).
        self.cursor = 0


class SharedSliceStore:
    """One slice stream and one partial-aggregate tree, many queries.

    Concurrent queries over the same stream whose window sizes are
    multiples of a common ``slide`` (the E11 scenario) duplicate all
    aggregation state when run independently.  The store ingests every
    element **once** into a shared :class:`_SliceTree`; each registered
    query keeps only its own release schedule (a fixed slack, or an
    adaptive advisor such as :class:`~repro.core.aqk.AQKSlackHandler` fed
    through its ``observe_only`` hook) and its own close/retire cursors.
    Per-element aggregation work is therefore O(1) total instead of
    O(queries), and window results per query are identical to running that
    query alone — elements are ingested at arrival rather than at release,
    which is safe because a buffered element is always released no later
    than the close of any window containing it (its event time precedes
    every such window's end, and release happens before closes within a
    step).

    Results accumulate in :attr:`results` (``query_id -> [WindowResult]``);
    drive the store with :func:`run_shared_slices`.

    **Thread safety.**  The store is ``__concurrency__ = "guarded"``: every
    mutating entry point takes the store's reentrant lock, so ingestion and
    query advancement may be driven from multiple threads (one ingester,
    one owner thread per query is the intended topology — see
    :mod:`repro.analysis.concur.stress`).  :meth:`ingest` appends each
    arriving element to an internal replay log; :meth:`advance` replays the
    log for one query using the *ingest-time* clock and arrival frontier,
    so per-query results are bit-identical to a single-threaded
    :meth:`offer` loop regardless of thread interleaving.  :meth:`collect`
    garbage-collects the tree below every query's horizon and trims the
    fully consumed prefix of the log.
    """

    __concurrency__ = "guarded"

    def __init__(
        self,
        slide: DurationS,
        aggregate: AggregateFunction,
        track_feedback: bool = True,
    ) -> None:
        if slide <= 0:
            raise ConfigurationError(f"slide must be positive, got {slide}")
        self.slide = slide
        self.aggregate = aggregate
        self.track_feedback = track_feedback
        self._lock = threading.RLock()
        self._tree = _SliceTree(aggregate, slide, 1)
        self._queries: dict[str, _SharedQuery] = {}
        self._clock = EventTimeFrontier()
        self._last_arrival = 0.0
        #: Replay log of ingested elements: (element, slice index, event-time
        #: clock after observing it, arrival frontier after observing it).
        self._log: list[tuple[StreamElement, int, EventTimeStamp, ArrivalTimeStamp]] = []
        #: Absolute index of ``self._log[0]`` (grows as the log is trimmed).
        self._log_base = 0
        self.results: dict[str, list[WindowResult]] = {}

    # ------------------------------------------------------------------ #
    # registration

    def register(
        self,
        query_id: str,
        size: DurationS,
        slack: DurationS | None = None,
        advisor: object | None = None,
        feedback_horizon: DurationS | None = None,
    ) -> _QueryWindowView:
        """Register a query reading windows of ``size`` seconds.

        Exactly one of ``slack`` (fixed K-slack release schedule) or
        ``advisor`` (an object exposing ``observe_only(element) -> k``,
        e.g. an :class:`~repro.core.aqk.AQKSlackHandler`) must be given.
        Returns the query's view, whose ``stats`` mirror an operator's.
        """
        with self._lock:
            if query_id in self._queries:
                raise ConfigurationError(f"query id {query_id!r} already registered")
            if self._clock.count:
                raise ConfigurationError(
                    "register all queries before offering elements"
                )
            if (slack is None) == (advisor is None):
                raise ConfigurationError(
                    "exactly one of slack= or advisor= must be provided"
                )
            if advisor is not None and not hasattr(advisor, "observe_only"):
                raise ConfigurationError(
                    "advisor must expose observe_only(element) -> slack "
                    "(see AQKSlackHandler.observe_only)"
                )
            if slack is not None and slack < 0:
                raise ConfigurationError(f"slack must be non-negative, got {slack}")
            ratio = size / self.slide
            if size <= 0 or abs(ratio - round(ratio)) > 1e-9:
                raise ConfigurationError(
                    "shared slices require the common slide to divide each "
                    f"window size (got size={size}, slide={self.slide})"
                )
            span = int(round(ratio))
            if span > self._tree.span:
                self._tree.set_span(span)
            if feedback_horizon is None:
                feedback_horizon = 5.0 * size
            view = _QueryWindowView(
                self._tree, size, span, feedback_horizon, self.track_feedback
            )
            self._queries[query_id] = _SharedQuery(
                query_id, view, advisor, 0.0 if slack is None else slack
            )
            self.results[query_id] = []
            return view

    def stats_for(self, query_id: str) -> OperatorStats:
        """Operator-style counters of one registered query."""
        with self._lock:
            return self._queries[query_id].view.stats

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to the shared tree."""
        with self._lock:
            self._tree.tracer = tracer

    # ------------------------------------------------------------------ #
    # dispatch

    def ingest(self, element: StreamElement) -> None:
        """Add one arriving element to the shared tree and the replay log.

        Ingestion is query-independent: the element lands in its slice
        exactly once, and the store's event-time clock and arrival
        frontier are captured *at ingest time* so that any thread can
        later :meth:`advance` a query and observe the same clocks a
        single-threaded run would have.
        """
        with self._lock:
            if not self._queries:
                raise ConfigurationError("no queries registered")
            if element.arrival_time is None:
                raise ConfigurationError(
                    "shared slices require arrival timestamps"
                )
            tree = self._tree
            slice_index = tree.slice_of(element.event_time)
            key = element.key
            entry = tree.entry(key, slice_index)
            self.aggregate.add(entry[0], element.value)
            entry[1] += 1
            tree.touch(key, slice_index)
            clock = self._clock.observe(element.event_time)
            arrival = element.arrival_time
            if arrival > self._last_arrival:
                self._last_arrival = arrival
            self._log.append((element, slice_index, clock, self._last_arrival))

    def advance(self, query_id: str) -> list[WindowResult]:
        """Replay every not-yet-seen ingested element for one query.

        Runs the query's release schedule (fixed slack or advisor) over
        the log entries past its cursor, closing and retiring windows
        exactly as the single-threaded :meth:`offer` loop would.  Newly
        closed results are appended to :attr:`results` and returned.
        """
        with self._lock:
            query = self._queries[query_id]
            log = self._log
            base = self._log_base
            tree = self._tree
            tracer = tree.tracer
            view = query.view
            advisor = query.advisor
            out: list[WindowResult] = []
            while query.cursor - base < len(log):
                element, slice_index, clock, emit_time = log[query.cursor - base]
                query.cursor += 1
                if tracer.enabled:
                    tree.sim_time = emit_time
                view.stats.elements_in += 1
                slack = (
                    query.slack
                    if advisor is None
                    else advisor.observe_only(element)
                )
                frontier = query.frontier.advance(clock - slack)
                late = view.late_count(slice_index)
                if late:
                    view.stats.late_dropped += late
                view.note_slice(element.key, slice_index)
                closed = view.close_windows(frontier, emit_time, tracer)
                if closed:
                    out.extend(closed)
                view.retire(frontier, query.observe_error)
            if out:
                self.results[query_id].extend(out)
            return out

    def collect(self) -> None:
        """Garbage-collect the tree and trim the consumed log prefix.

        The GC threshold is the minimum over all queries of ``frontier -
        feedback_horizon``, so a query whose owner thread lags keeps every
        slice it may still need alive.  Log entries every query has
        replayed are dropped.
        """
        with self._lock:
            if not self._queries:
                return
            horizon_tracked = self.track_feedback
            gc_threshold = None
            min_cursor = None
            for query in self._queries.values():
                threshold = query.frontier.value - (
                    query.view.feedback_horizon if horizon_tracked else 0.0
                )
                if gc_threshold is None or threshold < gc_threshold:
                    gc_threshold = threshold
                if min_cursor is None or query.cursor < min_cursor:
                    min_cursor = query.cursor
            if gc_threshold is not None and gc_threshold > float("-inf"):
                self._tree.gc(gc_threshold)
            if min_cursor is not None and min_cursor > self._log_base:
                del self._log[: min_cursor - self._log_base]
                self._log_base = min_cursor

    def offer(self, element: StreamElement) -> None:
        """Ingest one arriving element and advance every query's schedule.

        Single-threaded convenience equal to :meth:`ingest` followed by
        :meth:`advance` for every query and one :meth:`collect`; threaded
        drivers call the three stages from their own threads instead.
        """
        with self._lock:
            self.ingest(element)
            for query_id in self._queries:
                self.advance(query_id)
            self.collect()

    def finish_query(self, query_id: str) -> None:
        """End-of-stream for one query: drain the log, close everything."""
        with self._lock:
            self.advance(query_id)
            query = self._queries[query_id]
            emit_time = self._last_arrival
            tracer = self._tree.tracer
            if tracer.enabled:
                self._tree.sim_time = emit_time
            view = query.view
            query.frontier.close()
            closed = view.close_windows(
                float("inf"), emit_time, tracer, flushed=True
            )
            if closed:
                self.results[query_id].extend(closed)
            view.retire(float("inf"), query.observe_error)

    def finish(self) -> None:
        """Stream ended: close and retire everything for every query."""
        with self._lock:
            for query_id in self._queries:
                self.finish_query(query_id)
            self._tree.gc(float("inf"))
            self._log_base += len(self._log)
            del self._log[:]

    def slice_count(self) -> int:
        """Currently retained leaf slices of the shared tree."""
        with self._lock:
            return self._tree.slice_count()

    def node_count(self) -> int:
        """Currently cached interior nodes of the shared tree."""
        with self._lock:
            return self._tree.node_count()


def run_shared_slices(
    elements: list[StreamElement], store: SharedSliceStore
) -> dict[str, list[WindowResult]]:
    """Drive a shared slice store over an arrival-ordered stream.

    Returns ``query_id -> list of WindowResult`` for every registered query.
    """
    offer = store.offer
    for element in elements:
        offer(element)
    store.finish()
    return store.results


#: Names accepted by :func:`make_window_operator` and the query builder.
EXECUTION_MODES = ("naive", "sliced", "tree")


def make_window_operator(
    mode: str,
    assigner,
    aggregate: AggregateFunction,
    handler: DisorderHandler,
    feedback_horizon: DurationS | None = None,
    track_feedback: bool = True,
) -> Operator:
    """Build a window aggregation operator for the given execution mode.

    ``"naive"`` adds every element to each containing window; ``"sliced"``
    shares one accumulator per slice (requires slide | size); ``"tree"``
    additionally caches dyadic partial aggregates over the slices.  All
    three produce identical results.
    """
    if mode == "naive":
        from repro.engine.aggregate_op import WindowAggregateOperator

        return WindowAggregateOperator(
            assigner, aggregate, handler,
            feedback_horizon=feedback_horizon, track_feedback=track_feedback,
        )
    if mode == "sliced":
        from repro.engine.sliced_op import SlicedWindowAggregateOperator

        return SlicedWindowAggregateOperator(
            assigner, aggregate, handler,
            feedback_horizon=feedback_horizon, track_feedback=track_feedback,
        )
    if mode == "tree":
        return TreeWindowAggregateOperator(
            assigner, aggregate, handler,
            feedback_horizon=feedback_horizon, track_feedback=track_feedback,
        )
    raise ConfigurationError(
        f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
    )
