"""In-order oracle execution: the ground truth for quality measurement.

The oracle evaluates the same windowed aggregation over the stream sorted by
event time with no lateness at all, producing the exact value of every
non-empty window.  Emitted results are scored against this truth by
:mod:`repro.core.quality`.
"""

from __future__ import annotations

from repro.engine.aggregates import AggregateFunction
from repro.engine.windows import Window, WindowAssigner
from repro.streams.element import StreamElement


def oracle_results(
    elements: list[StreamElement],
    assigner: WindowAssigner,
    aggregate: AggregateFunction,
) -> dict[tuple[object, Window], tuple[float, int]]:
    """Exact per-window aggregates of the complete stream.

    Args:
        elements: The stream in any order; the oracle sorts by event time.
        assigner: Window assigner matching the query under test.
        aggregate: Aggregate function matching the query under test.

    Returns:
        Mapping ``(key, window) -> (exact value, element count)`` for every
        window that contains at least one element.
    """
    accumulators: dict[tuple[object, Window], object] = {}
    counts: dict[tuple[object, Window], int] = {}
    for element in sorted(elements, key=StreamElement.event_sort_key):
        for window in assigner.assign(element.event_time):
            slot = (element.key, window)
            accumulator = accumulators.get(slot)
            if accumulator is None:
                accumulator = aggregate.create()
                accumulators[slot] = accumulator
                counts[slot] = 0
            aggregate.add(accumulator, element.value)
            counts[slot] += 1
    return {
        slot: (aggregate.result(accumulator), counts[slot])
        for slot, accumulator in accumulators.items()
    }
