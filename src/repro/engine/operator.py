"""Operator base types and the results they emit."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.engine.windows import Window
from repro.streams.element import StreamElement


@dataclass(frozen=True, slots=True)
class WindowResult:
    """One finalized window aggregate.

    Attributes:
        key: Partitioning key (``None`` for unkeyed queries).
        window: The event-time window the result covers.
        value: Aggregate value at emission time.
        count: Number of elements folded in before emission.
        emit_time: Arrival-time instant the result was produced.
        latency: ``emit_time - window.end`` — how long the answer for this
            window was delayed past the moment it became askable.  This is
            the latency the quality/latency tradeoff is about.
        revision: 0 for the first emission of a window; speculative
            operators emit corrected results with increasing revisions.
        flushed: True when the window was force-closed at stream end
            rather than by the frontier.  Flushed windows carry no
            meaningful latency (their emit time is the last arrival of the
            whole run) and are excluded from latency summaries.
    """

    __concurrency__ = "immutable"

    key: object
    window: Window
    value: float
    count: int
    emit_time: float
    latency: float
    revision: int = 0
    flushed: bool = False


class Operator(ABC):
    """A streaming operator consuming arrival-ordered elements."""

    __concurrency__ = "single-thread"

    @abstractmethod
    def process(self, element: StreamElement) -> list[WindowResult]:
        """Consume one element; return any results finalized by it."""

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Consume a chunk of elements; return all results they finalized.

        Must be equivalent to concatenating :meth:`process` over the chunk —
        same results, same emit times, same feedback.  The base
        implementation is exactly that loop; operators with batched hot
        paths override it.
        """
        results: list[WindowResult] = []
        extend = results.extend
        process = self.process
        for element in elements:
            extend(process(element))
        return results

    @abstractmethod
    def finish(self) -> list[WindowResult]:
        """Stream ended: flush buffers and finalize remaining windows."""
