"""Disorder handlers: the pluggable policies that decide when to trust time.

A :class:`DisorderHandler` sits in front of a windowed operator.  It receives
the arrival-ordered stream and decides

* which elements to release downstream (possibly reordered), and
* how far the operator's **event-time frontier** has advanced — windows
  ending at or before the frontier may be finalized.

The frontier is the single knob that trades latency for quality: a frontier
that hugs the newest event time closes windows immediately (low latency,
wrong results under disorder); a frontier lagging by the maximum delay closes
windows only when they are certainly complete (exact results, worst-case
latency).

This module provides the baselines; the paper's adaptive, quality-driven
handler lives in :mod:`repro.core.aqk`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import EventTimeFrontier
from repro.engine.buffer import SortingBuffer


class DisorderHandler(ABC):
    """Policy controlling element release and frontier advancement."""

    name = "handler"

    @abstractmethod
    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Accept one arriving element; return elements released downstream."""

    @abstractmethod
    def flush(self) -> list[StreamElement]:
        """Stream ended: release everything still buffered."""

    @property
    @abstractmethod
    def frontier(self) -> float:
        """Monotone event-time frontier; ``-inf`` before any element."""

    @property
    def current_slack(self) -> float:
        """Slack (buffering lag, seconds) currently in effect; 0 if none."""
        return 0.0

    def buffered_count(self) -> int:
        """Number of elements currently held back."""
        return 0

    def max_buffered_count(self) -> int:
        """High-water mark of held-back elements (memory proxy)."""
        return 0

    def observe_error(self, error: float) -> None:
        """Feedback hook: observed relative error of a retired window.

        Baselines ignore feedback; the adaptive handler consumes it.
        """

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return self.name


class NoBufferHandler(DisorderHandler):
    """Zero-latency baseline: release immediately, frontier = newest event.

    Every out-of-order element whose windows already closed is dropped by the
    operator downstream — this is the quality floor of the evaluation.
    """

    name = "no-buffer"

    def __init__(self) -> None:
        self._frontier = EventTimeFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        self._frontier.observe(element.event_time)
        return [element]

    def flush(self) -> list[StreamElement]:
        return []

    @property
    def frontier(self) -> float:
        return self._frontier.value


class KSlackHandler(DisorderHandler):
    """Classic fixed K-slack buffering.

    Elements are buffered and released in event-time order once the running
    maximum event time ("clock") exceeds their timestamp by at least ``K``.
    The frontier is ``clock - K`` (monotone because the clock is monotone).
    Elements delayed by more than ``K`` are still forwarded, but arrive past
    the frontier and are counted late downstream.
    """

    name = "k-slack"

    def __init__(self, k: float) -> None:
        if k < 0:
            raise ConfigurationError(f"slack K must be non-negative, got {k}")
        self.k = k
        self._clock = EventTimeFrontier()
        self._buffer = SortingBuffer()
        self._frontier_value = float("-inf")

    def _advance_frontier(self) -> None:
        candidate = self._clock.value - self.k
        if candidate > self._frontier_value:
            self._frontier_value = candidate

    def offer(self, element: StreamElement) -> list[StreamElement]:
        self._clock.observe(element.event_time)
        self._buffer.push(element)
        self._advance_frontier()
        return self._buffer.release_until(self._frontier_value)

    def flush(self) -> list[StreamElement]:
        return self._buffer.drain()

    @property
    def frontier(self) -> float:
        return self._frontier_value

    @property
    def current_slack(self) -> float:
        return self.k

    def buffered_count(self) -> int:
        return len(self._buffer)

    def max_buffered_count(self) -> int:
        return self._buffer.max_size

    def describe(self) -> str:
        return f"k-slack(K={self.k:g}s)"


class MPKSlackHandler(DisorderHandler):
    """MP-K-slack: conservative adaptive baseline tracking the max delay.

    ``K`` grows to the largest element delay observed so far (optionally
    padded by ``safety_factor``), so results become exact once the true
    worst case has been seen — at the price of worst-case latency forever
    after.  This is the "conservative" comparison point of experiment E3.
    """

    name = "mp-k-slack"

    def __init__(self, initial_k: float = 0.0, safety_factor: float = 1.0) -> None:
        if initial_k < 0:
            raise ConfigurationError(f"initial K must be non-negative, got {initial_k}")
        if safety_factor < 1.0:
            raise ConfigurationError(
                f"safety_factor must be >= 1, got {safety_factor}"
            )
        self.k = initial_k
        self.safety_factor = safety_factor
        self._clock = EventTimeFrontier()
        self._buffer = SortingBuffer()
        self._frontier_value = float("-inf")

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if element.arrival_time is not None:
            observed = element.delay * self.safety_factor
            if observed > self.k:
                self.k = observed
        self._clock.observe(element.event_time)
        self._buffer.push(element)
        candidate = self._clock.value - self.k
        if candidate > self._frontier_value:
            self._frontier_value = candidate
        return self._buffer.release_until(self._frontier_value)

    def flush(self) -> list[StreamElement]:
        return self._buffer.drain()

    @property
    def frontier(self) -> float:
        return self._frontier_value

    @property
    def current_slack(self) -> float:
        return self.k

    def buffered_count(self) -> int:
        return len(self._buffer)

    def max_buffered_count(self) -> int:
        return self._buffer.max_size

    def describe(self) -> str:
        return f"mp-k-slack(K={self.k:g}s)"
