"""Disorder handlers: the pluggable policies that decide when to trust time.

A :class:`DisorderHandler` sits in front of a windowed operator.  It receives
the arrival-ordered stream and decides

* which elements to release downstream (possibly reordered), and
* how far the operator's **event-time frontier** has advanced — windows
  ending at or before the frontier may be finalized.

The frontier is the single knob that trades latency for quality: a frontier
that hugs the newest event time closes windows immediately (low latency,
wrong results under disorder); a frontier lagging by the maximum delay closes
windows only when they are certainly complete (exact results, worst-case
latency).

This module provides the baselines; the paper's adaptive, quality-driven
handler lives in :mod:`repro.core.aqk`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement
from repro.streams.timebase import (
    DurationS,
    EventTimeFrontier,
    EventTimeStamp,
    MonotoneFrontier,
)
from repro.engine.buffer import SortingBuffer

#: Below this batch size the bulk release machinery costs more than the
#: scalar loop it replaces; specialized ``offer_many`` implementations fall
#: back to the generic per-element path.
MIN_BULK_BATCH = 8

#: ``offer_many`` checkpoints: one ``(released_end_offset, frontier)`` pair
#: per offered element, in offer order.
Checkpoints = list[tuple[int, float]]


def bulk_release(
    buffer: SortingBuffer,
    elements: list[StreamElement],
    frontiers: "np.ndarray",
) -> tuple[list[StreamElement], list[int]]:
    """Push a batch and release in bulk, reconstructing per-element steps.

    ``frontiers[i]`` must be the (monotone) frontier in effect after offering
    ``elements[i]``.  Pushes the whole batch, releases everything at or below
    the final frontier in one buffer call, then assigns each released element
    the exact scalar release step: the first i with ``frontiers[i] >=
    event_time``, but never before the element's own offer position.  Returns
    the released elements reordered into scalar release order plus, per
    offered element, the end offset of its release slice.
    """
    buffer.push_many(elements)
    n = len(elements)
    released = buffer.release_until(float(frontiers[-1]))
    if not released:
        return [], [0] * n
    position = {id(element): i for i, element in enumerate(elements)}
    event_times = np.fromiter(
        (element.event_time for element in released), dtype=float, count=len(released)
    )
    steps = np.searchsorted(frontiers, event_times, side="left").tolist()
    for j, element in enumerate(released):
        own = position.get(id(element))
        if own is not None and own > steps[j]:
            steps[j] = own
    # Stable sort keeps (event_time, seq) order within a step — exactly the
    # order the scalar heap pops would have produced.
    order = sorted(range(len(released)), key=steps.__getitem__)
    released_ordered = [released[j] for j in order]
    counts = np.bincount(np.asarray(steps, dtype=np.intp), minlength=n)
    offsets = np.cumsum(counts).tolist()
    return released_ordered, offsets


class DisorderHandler(ABC):
    """Policy controlling element release and frontier advancement."""

    __concurrency__ = "single-thread"

    name = "handler"

    #: Attached tracer (see :mod:`repro.obs.trace`); the shared null tracer
    #: keeps instrumented paths at one attribute check when tracing is off.
    tracer: Tracer = NULL_TRACER

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to this handler (and its sorting buffer).

        Handlers that own a :class:`~repro.engine.buffer.SortingBuffer`
        store it as ``_buffer``; the buffer inherits the tracer so its
        push/release records land in the same trace.
        """
        self.tracer = tracer
        buffer = getattr(self, "_buffer", None)
        if buffer is not None:
            buffer.tracer = tracer

    @abstractmethod
    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Accept one arriving element; return elements released downstream."""

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        """Accept a batch of arriving elements at once.

        Returns ``(released, checkpoints)`` where ``checkpoints[i]`` is the
        pair ``(end_offset, frontier)`` after offering ``elements[i]``:
        ``released[start:end_offset]`` (with ``start`` the previous end
        offset) are the elements element i's offer released, and ``frontier``
        is the handler frontier at that point.  The concatenation of the
        slices equals the scalar release sequence exactly — batched callers
        replay closes/retirement at each checkpoint to stay bit-identical to
        the scalar path.

        The base implementation loops :meth:`offer`; subclasses override it
        with amortized bulk paths.
        """
        released: list[StreamElement] = []
        checkpoints: Checkpoints = []
        extend = released.extend
        append = checkpoints.append
        for element in elements:
            extend(self.offer(element))
            append((len(released), self.frontier))
        return released, checkpoints

    @abstractmethod
    def flush(self) -> list[StreamElement]:
        """Stream ended: release everything still buffered."""

    def released_count(self) -> int:
        """Cumulative number of elements released downstream so far."""
        return 0

    @property
    @abstractmethod
    def frontier(self) -> EventTimeStamp:
        """Monotone event-time frontier; ``-inf`` before any element.

        **Contract** (relied on by every downstream window lifecycle):
        across any sequence of :meth:`offer` / :meth:`offer_many` /
        :meth:`flush` calls the frontier NEVER decreases — a window closed
        at frontier T must stay closed.  ``flush`` may jump it to ``+inf``.
        Implementations should store their frontier in a
        :class:`~repro.streams.timebase.MonotoneFrontier`, whose
        ``advance`` clamps regressions structurally; the StreamSan runtime
        checkers (:mod:`repro.analysis.sanitizer`) additionally enforce the
        contract on every call when a pipeline runs with ``sanitize=True``.
        """

    @property
    def current_slack(self) -> DurationS:
        """Slack (buffering lag, seconds) currently in effect; 0 if none."""
        return 0.0

    def buffered_count(self) -> int:
        """Number of elements currently held back."""
        return 0

    def max_buffered_count(self) -> int:
        """High-water mark of held-back elements (memory proxy)."""
        return 0

    def observe_error(self, error: float) -> None:
        """Feedback hook: observed relative error of a retired window.

        Baselines ignore feedback; the adaptive handler consumes it.
        """

    def next_adaptation_offset(
        self, elements: list[StreamElement], start: int, stop: int
    ) -> int | None:
        """First index in ``(start, stop)`` at which a *feedback-coupled*
        adaptation would fire while offering ``elements[start:stop]``.

        Batched drivers split chunks at this index so every error-fed
        adaptation observes exactly the ``observe_error`` state a scalar
        run would (retirements for earlier elements are replayed before
        the boundary element is offered).  Handlers without error-coupled
        adaptation return ``None``; the batched path then never splits.
        """
        return None

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return self.name


class NoBufferHandler(DisorderHandler):
    """Zero-latency baseline: release immediately, frontier = newest event.

    Every out-of-order element whose windows already closed is dropped by the
    operator downstream — this is the quality floor of the evaluation.
    """

    name = "no-buffer"

    def __init__(self) -> None:
        self._frontier = EventTimeFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        self._frontier.observe(element.event_time)
        return [element]

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        frontier = self._frontier
        checkpoints: Checkpoints = []
        append = checkpoints.append
        offset = 0
        for element in elements:
            offset += 1
            append((offset, frontier.observe(element.event_time)))
        return list(elements), checkpoints

    def flush(self) -> list[StreamElement]:
        return []

    @property
    def frontier(self) -> EventTimeStamp:
        return self._frontier.value

    def released_count(self) -> int:
        return self._frontier.count


class KSlackHandler(DisorderHandler):
    """Classic fixed K-slack buffering.

    Elements are buffered and released in event-time order once the running
    maximum event time ("clock") exceeds their timestamp by at least ``K``.
    The frontier is ``clock - K`` (monotone because the clock is monotone).
    Elements delayed by more than ``K`` are still forwarded, but arrive past
    the frontier and are counted late downstream.
    """

    name = "k-slack"

    def __init__(self, k: DurationS) -> None:
        if k < 0:
            raise ConfigurationError(f"slack K must be non-negative, got {k}")
        self.k = k
        self._clock = EventTimeFrontier()
        self._buffer = SortingBuffer()
        self._front = MonotoneFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        self._clock.observe(element.event_time)
        self._buffer.push(element)
        return self._buffer.release_until(
            self._front.advance(self._clock.value - self.k)
        )

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        if len(elements) < MIN_BULK_BATCH:
            return DisorderHandler.offer_many(self, elements)
        event_times = np.fromiter(
            (element.event_time for element in elements),
            dtype=float,
            count=len(elements),
        )
        clocks = np.maximum.accumulate(event_times)
        np.maximum(clocks, self._clock.value, out=clocks)
        frontiers = clocks - self.k
        np.maximum(frontiers, self._front.value, out=frontiers)
        self._clock.observe_many(float(clocks[-1]), len(elements))
        self._front.advance(float(frontiers[-1]))
        released, offsets = bulk_release(self._buffer, elements, frontiers)
        return released, list(zip(offsets, frontiers.tolist()))

    def flush(self) -> list[StreamElement]:
        return self._buffer.drain()

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    @property
    def current_slack(self) -> DurationS:
        return self.k

    def buffered_count(self) -> int:
        return len(self._buffer)

    def max_buffered_count(self) -> int:
        return self._buffer.max_size

    def released_count(self) -> int:
        return self._buffer.released_total

    def describe(self) -> str:
        return f"k-slack(K={self.k:g}s)"


class MPKSlackHandler(DisorderHandler):
    """MP-K-slack: conservative adaptive baseline tracking the max delay.

    ``K`` grows to the largest element delay observed so far (optionally
    padded by ``safety_factor``), so results become exact once the true
    worst case has been seen — at the price of worst-case latency forever
    after.  This is the "conservative" comparison point of experiment E3.
    """

    name = "mp-k-slack"

    def __init__(self, initial_k: DurationS = 0.0, safety_factor: float = 1.0) -> None:
        if initial_k < 0:
            raise ConfigurationError(f"initial K must be non-negative, got {initial_k}")
        if safety_factor < 1.0:
            raise ConfigurationError(
                f"safety_factor must be >= 1, got {safety_factor}"
            )
        self.k = initial_k
        self.safety_factor = safety_factor
        self._clock = EventTimeFrontier()
        self._buffer = SortingBuffer()
        self._front = MonotoneFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if element.arrival_time is not None:
            observed = element.delay * self.safety_factor
            if observed > self.k:
                self.k = observed
        self._clock.observe(element.event_time)
        self._buffer.push(element)
        return self._buffer.release_until(
            self._front.advance(self._clock.value - self.k)
        )

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        if len(elements) < MIN_BULK_BATCH:
            return DisorderHandler.offer_many(self, elements)
        n = len(elements)
        event_times = np.fromiter(
            (element.event_time for element in elements), dtype=float, count=n
        )
        # Elements without an arrival time leave K unchanged; a negative
        # placeholder can never raise K (K >= 0 always).
        scaled_delays = np.fromiter(
            (
                (element.arrival_time - element.event_time) * self.safety_factor
                if element.arrival_time is not None
                else -1.0
                for element in elements
            ),
            dtype=float,
            count=n,
        )
        ks = np.maximum.accumulate(scaled_delays)
        np.maximum(ks, self.k, out=ks)
        clocks = np.maximum.accumulate(event_times)
        np.maximum(clocks, self._clock.value, out=clocks)
        frontiers = np.maximum.accumulate(clocks - ks)
        np.maximum(frontiers, self._front.value, out=frontiers)
        self.k = float(ks[-1])
        self._clock.observe_many(float(clocks[-1]), n)
        self._front.advance(float(frontiers[-1]))
        released, offsets = bulk_release(self._buffer, elements, frontiers)
        return released, list(zip(offsets, frontiers.tolist()))

    def flush(self) -> list[StreamElement]:
        return self._buffer.drain()

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    @property
    def current_slack(self) -> DurationS:
        return self.k

    def buffered_count(self) -> int:
        return len(self._buffer)

    def max_buffered_count(self) -> int:
        return self._buffer.max_size

    def released_count(self) -> int:
        return self._buffer.released_total

    def describe(self) -> str:
        return f"mp-k-slack(K={self.k:g}s)"
