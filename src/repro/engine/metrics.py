"""Run instrumentation: latency summaries, throughput, buffer telemetry."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distribution summary of per-window result latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def from_values(values: list[float]) -> "LatencySummary":
        if not values:
            return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        array = np.asarray(values, dtype=float)
        return LatencySummary(
            count=len(values),
            mean=float(array.mean()),
            p50=float(np.quantile(array, 0.5)),
            p95=float(np.quantile(array, 0.95)),
            p99=float(np.quantile(array, 0.99)),
            maximum=float(array.max()),
        )


@dataclass(frozen=True)
class SlackSample:
    """One point of the handler timeline (for adaptation plots)."""

    arrival_time: float
    slack: float
    frontier: float
    buffered: int


@dataclass
class RunMetrics:
    """Everything measured during one pipeline run."""

    n_elements: int = 0
    n_results: int = 0
    wall_time_s: float = 0.0
    late_dropped: int = 0
    max_buffered: int = 0
    released_count: int = 0
    slack_timeline: list[SlackSample] = field(default_factory=list)

    @property
    def throughput_eps(self) -> float:
        """Elements processed per wall-clock second."""
        if self.wall_time_s <= 0:
            return math.nan
        return self.n_elements / self.wall_time_s
