"""Run instrumentation: latency summaries, throughput, buffer telemetry.

:class:`RunMetrics` is a **view over a metrics registry**
(:class:`repro.obs.registry.MetricsRegistry`): every scalar it exposes is
backed by a named counter or gauge, which the pipeline keeps current while
a run executes.  Callers that only read the finished object see exactly
the pre-registry behaviour; callers that pass their own registry to
:func:`~repro.engine.pipeline.run_pipeline` can sample the same numbers
*live* mid-run (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs.registry import MetricsRegistry
from repro.streams.timebase import DurationS


@dataclass(frozen=True, slots=True)
class LatencySummary:
    """Distribution summary of per-window result latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    @staticmethod
    def from_values(values: list[float]) -> "LatencySummary":
        """Summarize a list of latency samples.

        NaN samples are dropped before summarizing (a NaN latency means
        "no meaningful latency", e.g. an unmatched oracle window — folding
        it in would poison every percentile); an input of only-NaN or no
        samples yields the all-NaN summary with ``count == 0``.
        """
        finite = [value for value in values if not math.isnan(value)]
        if not finite:
            return LatencySummary(0, math.nan, math.nan, math.nan, math.nan, math.nan)
        array = np.asarray(finite, dtype=float)
        return LatencySummary(
            count=len(finite),
            mean=float(array.mean()),
            p50=float(np.quantile(array, 0.5)),
            p95=float(np.quantile(array, 0.95)),
            p99=float(np.quantile(array, 0.99)),
            maximum=float(array.max()),
        )


@dataclass(frozen=True, slots=True)
class SlackSample:
    """One point of the handler timeline (for adaptation plots)."""

    arrival_time: float
    slack: float
    frontier: float
    buffered: int


#: Registry names backing each RunMetrics scalar; the pipeline updates
#: these instruments live, RunMetrics reads them back.  Documented in
#: docs/OBSERVABILITY.md ("Metric names").
METRIC_NAMES = {
    "n_elements": "pipeline.elements_in",
    "n_results": "pipeline.results_out",
    "wall_time_s": "pipeline.wall_time_s",
    "late_dropped": "operator.late_dropped",
    "max_buffered": "handler.max_buffered",
    "released_count": "handler.released",
}


class RunMetrics:
    """Everything measured during one pipeline run.

    A thin view over a :class:`~repro.obs.registry.MetricsRegistry`:
    reading a field reads the backing instrument, assigning a field writes
    it.  Constructing with an existing registry makes this object a live
    window onto counts another component is still updating.
    """

    registry: MetricsRegistry
    slack_timeline: list[SlackSample]

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        n_elements: int = 0,
        n_results: int = 0,
        wall_time_s: DurationS = 0.0,
        late_dropped: int = 0,
        max_buffered: int = 0,
        released_count: int = 0,
        slack_timeline: list[SlackSample] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._elements_in = self.registry.counter(METRIC_NAMES["n_elements"])
        self._results_out = self.registry.counter(METRIC_NAMES["n_results"])
        self._wall_time = self.registry.gauge(METRIC_NAMES["wall_time_s"])
        self._late_dropped = self.registry.counter(METRIC_NAMES["late_dropped"])
        self._max_buffered = self.registry.gauge(METRIC_NAMES["max_buffered"])
        self._released = self.registry.counter(METRIC_NAMES["released_count"])
        # Only nonzero initializers overwrite the instruments: a registry
        # handed in mid-flight keeps its live values.
        if n_elements:
            self._elements_in.set(n_elements)
        if n_results:
            self._results_out.set(n_results)
        if wall_time_s:
            self._wall_time.set(wall_time_s)
        if late_dropped:
            self._late_dropped.set(late_dropped)
        if max_buffered:
            self._max_buffered.set(max_buffered)
        if released_count:
            self._released.set(released_count)
        self.slack_timeline = slack_timeline if slack_timeline is not None else []

    # ------------------------------------------------------------------ #
    # registry-backed fields

    @property
    def n_elements(self) -> int:
        """Elements fed into the pipeline."""
        return self._elements_in.value

    @n_elements.setter
    def n_elements(self, value: int) -> None:
        self._elements_in.set(value)

    @property
    def n_results(self) -> int:
        """Window results emitted (including flushed ones)."""
        return self._results_out.value

    @n_results.setter
    def n_results(self, value: int) -> None:
        self._results_out.set(value)

    @property
    def wall_time_s(self) -> DurationS:
        """Wall-clock seconds the run took (throughput measurement only)."""
        return self._wall_time.value

    @wall_time_s.setter
    def wall_time_s(self, value: DurationS) -> None:
        self._wall_time.set(value)

    @property
    def late_dropped(self) -> int:
        """Elements that arrived after their windows were finalized."""
        return self._late_dropped.value

    @late_dropped.setter
    def late_dropped(self, value: int) -> None:
        self._late_dropped.set(value)

    @property
    def max_buffered(self) -> int:
        """High-water mark of elements held back by the handler."""
        return int(self._max_buffered.value)

    @max_buffered.setter
    def max_buffered(self, value: int) -> None:
        self._max_buffered.set(value)

    @property
    def released_count(self) -> int:
        """Elements the handler released downstream."""
        return self._released.value

    @released_count.setter
    def released_count(self, value: int) -> None:
        self._released.set(value)

    # ------------------------------------------------------------------ #
    # derived views

    @property
    def throughput_eps(self) -> float:
        """Elements processed per wall-clock second."""
        if self.wall_time_s <= 0:
            return math.nan
        return self.n_elements / self.wall_time_s

    def as_dict(self) -> dict[str, object]:
        """Scalar fields as a plain dict (reports, JSON export)."""
        return {
            "n_elements": self.n_elements,
            "n_results": self.n_results,
            "wall_time_s": self.wall_time_s,
            "late_dropped": self.late_dropped,
            "max_buffered": self.max_buffered,
            "released_count": self.released_count,
        }

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"RunMetrics({parts})"
