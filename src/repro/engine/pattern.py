"""Sequence-pattern matching (CEP) under disorder handling.

:class:`SequencePatternOperator` detects the canonical two-stage pattern
*"A followed by B within t seconds"* per key, in **event time**: a match is
a pair (a, b) with ``first_predicate(a)``, ``second_predicate(b)``,
``a.key == b.key`` and ``a.event_time < b.event_time <= a.event_time + within``.

Sequence patterns are the most disorder-sensitive query shape: unlike
windows (where a late element shifts an aggregate slightly) a late A or B
makes an entire match appear or disappear.  The operator therefore consumes
its input through a :class:`~repro.engine.handlers.DisorderHandler`, stores
candidate A's and B's until the frontier proves no partner can still
arrive, and counts matches lost to pruning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.handlers import DisorderHandler
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS


@dataclass(frozen=True, slots=True)
class PatternMatch:
    """One detected A-then-B occurrence."""

    key: object
    first_time: float
    second_time: float
    first_value: object
    second_value: object
    emit_time: float

    @property
    def latency(self) -> DurationS:
        """Delay of the detection past the pattern's completion time."""
        return self.emit_time - self.second_time


class SequencePatternOperator:
    """Detects ``A -> B within t`` per key over a disordered stream."""

    def __init__(
        self,
        first_predicate: Callable[[StreamElement], bool],
        second_predicate: Callable[[StreamElement], bool],
        within: float,
        handler: DisorderHandler,
        shadow_horizon: DurationS = 0.0,
    ) -> None:
        if within <= 0:
            raise ConfigurationError(f"within must be positive, got {within}")
        if shadow_horizon < 0:
            raise ConfigurationError(
                f"shadow_horizon must be non-negative, got {shadow_horizon}"
            )
        self.first_predicate = first_predicate
        self.second_predicate = second_predicate
        self.within = within
        self.handler = handler
        self.shadow_horizon = shadow_horizon
        # key -> list of candidate elements per role.
        self._firsts: dict[object, list[StreamElement]] = {}
        self._seconds: dict[object, list[StreamElement]] = {}
        # Pruned candidates retained for loss measurement (feedback).
        self._shadow_firsts: dict[object, list[StreamElement]] = {}
        self._shadow_seconds: dict[object, list[StreamElement]] = {}
        self.matches_emitted = 0
        self.matches_lost = 0
        self.late_dropped = 0
        self._prune_frontier = float("-inf")
        self._last_arrival = 0.0

    def _is_match(self, first: StreamElement, second: StreamElement) -> bool:
        gap = second.event_time - first.event_time
        return 0.0 < gap <= self.within

    def _emit(self, first: StreamElement, second: StreamElement) -> PatternMatch:
        self.matches_emitted += 1
        return PatternMatch(
            key=first.key,
            first_time=first.event_time,
            second_time=second.event_time,
            first_value=first.value,
            second_value=second.value,
            emit_time=self._last_arrival,
        )

    def _count_lost(self, element: StreamElement, is_first: bool, is_second: bool) -> None:
        """Count matches this element can no longer form: partners pruned."""
        if is_second:
            for first in self._shadow_firsts.get(element.key, []):
                if self._is_match(first, element):
                    self.matches_lost += 1
        if is_first:
            for second in self._shadow_seconds.get(element.key, []):
                if self._is_match(element, second):
                    self.matches_lost += 1

    def _ingest(self, element: StreamElement) -> list[PatternMatch]:
        if element.event_time < self._prune_frontier:
            self.late_dropped += 1
        matches = []
        is_first = self.first_predicate(element)
        is_second = self.second_predicate(element)
        if self.shadow_horizon > 0:
            self._count_lost(element, is_first, is_second)
        if is_second:
            for first in self._firsts.get(element.key, []):
                if self._is_match(first, element):
                    matches.append(self._emit(first, element))
        if is_first:
            # Out-of-order release (watermark handlers) can deliver the B
            # before its A: match stored seconds as well.
            for second in self._seconds.get(element.key, []):
                if self._is_match(element, second):
                    matches.append(self._emit(element, second))
        if is_first:
            self._firsts.setdefault(element.key, []).append(element)
        if is_second:
            self._seconds.setdefault(element.key, []).append(element)
        return matches

    def _prune(self, frontier: float) -> None:
        threshold = frontier - self.within
        if threshold <= self._prune_frontier:
            return
        self._prune_frontier = threshold
        for store, shadow in (
            (self._firsts, self._shadow_firsts),
            (self._seconds, self._shadow_seconds),
        ):
            for key, elements in list(store.items()):
                kept = [el for el in elements if el.event_time >= threshold]
                if self.shadow_horizon > 0:
                    pruned = [el for el in elements if el.event_time < threshold]
                    if pruned:
                        shadow.setdefault(key, []).extend(pruned)
                if kept:
                    store[key] = kept
                else:
                    del store[key]
        if self.shadow_horizon > 0:
            expiry = threshold - self.shadow_horizon
            for shadow in (self._shadow_firsts, self._shadow_seconds):
                for key, elements in list(shadow.items()):
                    kept = [el for el in elements if el.event_time >= expiry]
                    if kept:
                        shadow[key] = kept
                    else:
                        del shadow[key]

    def process(self, element: StreamElement) -> list[PatternMatch]:
        """Consume one arriving element; return matches completed by it."""
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        matches = []
        for out in self.handler.offer(element):
            matches.extend(self._ingest(out))
        self._prune(self.handler.frontier)
        return matches

    def finish(self) -> list[PatternMatch]:
        """Stream ended: flush the handler and emit remaining matches."""
        matches = []
        for out in self.handler.flush():
            matches.extend(self._ingest(out))
        return matches

    def stored_count(self) -> int:
        """Candidate elements currently retained."""
        return sum(
            len(elements)
            for store in (self._firsts, self._seconds)
            for elements in store.values()
        )

    def recall_loss_estimate(self) -> float:
        """Observed fraction of matches lost to lateness (lower bound)."""
        total = self.matches_emitted + self.matches_lost
        if total == 0:
            return 0.0
        return self.matches_lost / total


def oracle_pattern_matches(
    elements: list[StreamElement],
    first_predicate: Callable[[StreamElement], bool],
    second_predicate: Callable[[StreamElement], bool],
    within: float,
) -> set[tuple[object, float, float]]:
    """All (key, first_time, second_time) matches of the complete stream."""
    firsts: dict[object, list[StreamElement]] = {}
    seconds: dict[object, list[StreamElement]] = {}
    for element in elements:
        if first_predicate(element):
            firsts.setdefault(element.key, []).append(element)
        if second_predicate(element):
            seconds.setdefault(element.key, []).append(element)
    matches = set()
    for key, candidates in firsts.items():
        for first in candidates:
            for second in seconds.get(key, []):
                gap = second.event_time - first.event_time
                if 0.0 < gap <= within:
                    matches.add((key, first.event_time, second.event_time))
    return matches


def pattern_recall(
    matches: list[PatternMatch],
    oracle: set[tuple[object, float, float]],
) -> float:
    """Fraction of true matches actually detected."""
    if not oracle:
        return float("nan")
    emitted = {(m.key, m.first_time, m.second_time) for m in matches}
    return len(emitted & oracle) / len(oracle)
