"""Constant-memory sketches for streaming state.

The exact aggregates in :mod:`repro.engine.aggregates` retain values
(quantiles) or value sets (distinct count), which is fine for the window
sizes the evaluation uses but not for unbounded keys/windows.  This module
provides the sketch counterparts a production engine ships:

* :class:`P2Quantile` — the Jain/Chlamtac P² algorithm: an O(1)-memory
  streaming quantile estimate using five markers and parabolic
  interpolation.  Also usable as a delay tracker
  (:class:`~repro.core.sampling` offers an adapter).
* :class:`HyperLogLog` — approximate distinct counting with
  ``1.04/sqrt(2^p)`` relative standard error.
* :class:`SpaceSaving` — heavy hitters / top-k with bounded counters.

plus window-aggregate adapters (:class:`ApproxQuantileAggregate`,
:class:`ApproxDistinctAggregate`) so queries can opt into bounded state.
"""

from __future__ import annotations

import hashlib
import math
import struct

from repro.engine.aggregates import AggregateFunction
from repro.errors import ConfigurationError


class P2Quantile:
    """Streaming quantile estimation via the P-squared algorithm.

    Keeps five markers whose heights approximate the q-quantile without
    storing observations.  Exact while fewer than five values have been
    seen (falls back to sorting them).
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"q must lie in (0, 1), got {q}")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments: list[float] = []
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def _initialize(self) -> None:
        self._initial.sort()
        self._heights = list(self._initial)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        q = self.q
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def observe(self, value: float) -> None:
        """Fold one observation into the marker state."""
        self._count += 1
        if self._count <= 5:
            self._initial.append(value)
            if self._count == 5:
                self._initialize()
            return

        heights = self._heights
        positions = self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            step = 1.0 if delta >= 1.0 else -1.0 if delta <= -1.0 else 0.0
            if step == 0.0:
                continue
            gap_next = positions[index + 1] - positions[index]
            gap_prev = positions[index - 1] - positions[index]
            if (step == 1.0 and gap_next > 1.0) or (step == -1.0 and gap_prev < -1.0):
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        numerator_left = positions[index] - positions[index - 1] + step
        numerator_right = positions[index + 1] - positions[index] - step
        slope_right = (heights[index + 1] - heights[index]) / (
            positions[index + 1] - positions[index]
        )
        slope_left = (heights[index] - heights[index - 1]) / (
            positions[index] - positions[index - 1]
        )
        return heights[index] + (step / (positions[index + 1] - positions[index - 1])) * (
            numerator_left * slope_right + numerator_right * slope_left
        )

    def _linear(self, index: int, step: float) -> float:
        heights = self._heights
        positions = self._positions
        other = index + int(step)
        return heights[index] + step * (heights[other] - heights[index]) / (
            positions[other] - positions[index]
        )

    def value(self) -> float:
        """Current quantile estimate (``nan`` before any observation)."""
        if self._count == 0:
            return math.nan
        if self._count <= 5:
            ordered = sorted(self._initial)
            rank = min(len(ordered) - 1, int(math.ceil(self.q * len(ordered))) - 1)
            return ordered[max(rank, 0)]
        return self._heights[2]


def _hash64(value) -> int:
    digest = hashlib.blake2b(repr(value).encode(), digest_size=8).digest()
    return struct.unpack(">Q", digest)[0]


class HyperLogLog:
    """Approximate distinct counting (Flajolet et al., with small-range
    linear counting correction)."""

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ConfigurationError(
                f"precision must lie in [4, 18], got {precision}"
            )
        self.precision = precision
        self.m = 1 << precision
        self._registers = bytearray(self.m)
        if self.m >= 128:
            self._alpha = 0.7213 / (1.0 + 1.079 / self.m)
        elif self.m == 64:
            self._alpha = 0.709
        elif self.m == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673

    def add(self, value) -> None:
        """Fold one value in (hashed by repr; duplicates are free)."""
        hashed = _hash64(value)
        register = hashed >> (64 - self.precision)
        remainder = hashed << self.precision & ((1 << 64) - 1)
        # Rank: position of the leftmost 1-bit in the remaining 64-p bits.
        rank = 1
        probe = 1 << 63
        while rank <= 64 - self.precision and not remainder & probe:
            rank += 1
            probe >>= 1
        if rank > self._registers[register]:
            self._registers[register] = rank

    def estimate(self) -> float:
        """Approximate number of distinct values added so far."""
        total = sum(2.0 ** -register for register in self._registers)
        raw = self._alpha * self.m * self.m / total
        if raw <= 2.5 * self.m:
            zeros = self._registers.count(0)
            if zeros:
                return self.m * math.log(self.m / zeros)
        return raw

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union in place: register-wise max with ``other``; returns self."""
        if other.precision != self.precision:
            raise ConfigurationError("cannot merge HLLs of different precision")
        for index, register in enumerate(other._registers):
            if register > self._registers[index]:
                self._registers[index] = register
        return self

    @property
    def relative_error(self) -> float:
        """Expected relative standard error of the estimate."""
        return 1.04 / math.sqrt(self.m)


class SpaceSaving:
    """Heavy-hitter tracking with at most ``capacity`` counters
    (Metwally et al.).  Guarantees ``count_true <= count_est <=
    count_true + min_counter``."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._counts: dict[object, int] = {}
        self._errors: dict[object, int] = {}

    def add(self, item, weight: int = 1) -> None:
        """Count ``item``, evicting the smallest counter when full."""
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        if item in self._counts:
            self._counts[item] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[item] = weight
            self._errors[item] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        victim_count = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[item] = victim_count + weight
        self._errors[item] = victim_count

    def top(self, k: int) -> list[tuple[object, int]]:
        """The k largest estimated counts, descending."""
        ordered = sorted(self._counts.items(), key=lambda kv: -kv[1])
        return ordered[:k]

    def guaranteed(self, k: int) -> list[tuple[object, int]]:
        """Top-k entries whose estimated count is provably above the
        possible true count of anything evicted."""
        return [
            (item, count)
            for item, count in self.top(k)
            if count - self._errors[item] > 0
        ]


class ApproxQuantileAggregate(AggregateFunction):
    """Window quantile via P² — O(1) state per window."""

    error_model_kind = "rank"
    __numeric__ = "reassoc-tolerant"  # P-squared parabolic interpolation

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigurationError(f"q must lie in (0, 1), got {q}")
        self.q = q
        self.name = f"~p{int(round(q * 100))}"

    def create(self) -> P2Quantile:
        return P2Quantile(self.q)

    def add(self, accumulator: P2Quantile, value: float) -> None:
        accumulator.observe(value)

    def result(self, accumulator: P2Quantile) -> float:
        return accumulator.value()

    def merge(self, accumulator: P2Quantile, other: P2Quantile) -> P2Quantile:
        raise ConfigurationError(
            "P2 sketches cannot be merged; use the exact QuantileAggregate "
            "for shared/merging execution"
        )


class ApproxDistinctAggregate(AggregateFunction):
    """Window distinct count via HyperLogLog — bounded state, mergeable."""

    error_model_kind = "distinct"
    __numeric__ = "reassoc-tolerant"  # harmonic-mean estimate from registers

    def __init__(self, precision: int = 12) -> None:
        self.precision = precision
        self.name = "~distinct"

    def create(self) -> HyperLogLog:
        return HyperLogLog(self.precision)

    def add(self, accumulator: HyperLogLog, value) -> None:
        accumulator.add(value)

    def result(self, accumulator: HyperLogLog) -> float:
        return accumulator.estimate()

    def merge(self, accumulator: HyperLogLog, other: HyperLogLog) -> HyperLogLog:
        return accumulator.merge(other)
