"""Top-k window aggregates: exact and sketch-backed.

``result`` returns a tuple of ``(value, count)`` pairs ordered by
descending count (ties broken by value), so results are hashable and
quality scoring degrades gracefully to exact-match (a top-k list is either
the right list or it is not — see
:func:`repro.engine.aggregate_op.relative_error`).
"""

from __future__ import annotations

from collections import Counter

from repro.engine.aggregates import AggregateFunction
from repro.engine.sketches import SpaceSaving
from repro.errors import ConfigurationError


def _ranked(counts: dict, k: int) -> tuple:
    ordered = sorted(counts.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return tuple(ordered[:k])


class TopKCountAggregate(AggregateFunction):
    """Exact k most frequent values in the window."""

    error_model_kind = "distinct"
    __numeric__ = "exact"  # integer counters only

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k
        self.name = f"top{k}"

    def create(self) -> Counter:
        return Counter()

    def add(self, accumulator: Counter, value) -> None:
        accumulator[value] += 1

    def result(self, accumulator: Counter) -> tuple:
        return _ranked(accumulator, self.k)

    def merge(self, accumulator: Counter, other: Counter) -> Counter:
        accumulator.update(other)
        return accumulator


class ApproxTopKAggregate(AggregateFunction):
    """Top-k via SpaceSaving: at most ``capacity`` counters per window.

    Counts can overestimate by at most the smallest tracked counter; with
    ``capacity`` comfortably above the number of genuinely frequent values
    the ranking matches the exact aggregate.
    """

    error_model_kind = "distinct"
    __numeric__ = "exact"  # integer counters only

    def __init__(self, k: int, capacity: int | None = None) -> None:
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self.k = k
        self.capacity = capacity if capacity is not None else 10 * k
        if self.capacity < k:
            raise ConfigurationError(
                f"capacity must be >= k, got {self.capacity} < {k}"
            )
        self.name = f"~top{k}"

    def create(self) -> SpaceSaving:
        return SpaceSaving(self.capacity)

    def add(self, accumulator: SpaceSaving, value) -> None:
        accumulator.add(value)

    def result(self, accumulator: SpaceSaving) -> tuple:
        return tuple(accumulator.top(self.k))

    def merge(self, accumulator: SpaceSaving, other: SpaceSaving) -> SpaceSaving:
        raise ConfigurationError(
            "SpaceSaving sketches cannot be merged losslessly; use the "
            "exact TopKCountAggregate for shared/merging execution"
        )
