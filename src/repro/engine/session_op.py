"""Session-window aggregation under disorder handling.

Sessions group events per key that are separated by less than ``gap``
seconds; a session closes when the frontier passes ``last_event + gap``.
Late elements may *split-brain* sessions (an event that would have bridged
two sessions arrives after both closed) — session queries are therefore
particularly sensitive to disorder, which is why they appear in the extended
evaluation.
"""

from __future__ import annotations

from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.engine.windows import SessionWindowMerger, Window
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS


class SessionAggregateOperator(Operator):
    """Aggregates per-key session windows with a pluggable handler."""

    def __init__(
        self,
        gap: DurationS,
        aggregate: AggregateFunction,
        handler: DisorderHandler,
    ) -> None:
        if gap <= 0:
            raise ConfigurationError(f"gap must be positive, got {gap}")
        self.gap = gap
        self.aggregate = aggregate
        self.handler = handler
        self._merger = SessionWindowMerger(gap)
        # key -> {session_start: [accumulator, count, last_event]}
        self._state: dict[object, dict[float, list]] = {}
        self._last_arrival = 0.0
        self._close_frontier = float("-inf")
        self.late_dropped = 0

    def _ingest(self, element: StreamElement) -> None:
        # Late means: the session this event could belong to was already
        # closed in a previous round (lateness is judged against the
        # frontier at the last close, not the one that released the batch).
        if element.event_time + self.gap <= self._close_frontier:
            # The session this event belongs to (if any) already closed.
            self.late_dropped += 1
            return
        key_state = self._state.setdefault(element.key, {})
        before = set(key_state)
        start, last = self._merger.add(element.key, element.event_time)
        merged_starts = [s for s in before if start <= s <= last and s in key_state]
        accumulator = self.aggregate.create()
        count = 0
        for old_start in merged_starts:
            old_acc, old_count, __ = key_state.pop(old_start)
            self.aggregate.merge(accumulator, old_acc)
            count += old_count
        self.aggregate.add(accumulator, element.value)
        key_state[start] = [accumulator, count + 1, last]

    def _close(self, frontier: float, flushed: bool = False) -> list[WindowResult]:
        results = []
        for key in list(self._state):
            for start, last in self._merger.closable(key, frontier):
                entry = self._state[key].pop(start, None)
                if entry is None:
                    continue
                accumulator, count, __ = entry
                window = Window(start, last + self.gap)
                results.append(
                    WindowResult(
                        key=key,
                        window=window,
                        value=self.aggregate.result(accumulator),
                        count=count,
                        emit_time=self._last_arrival,
                        latency=self._last_arrival - window.end,
                        flushed=flushed,
                    )
                )
            if not self._state[key]:
                del self._state[key]
        if frontier > self._close_frontier:
            self._close_frontier = frontier
        results.sort(key=lambda r: (r.window.end, str(r.key)))
        return results

    def process(self, element: StreamElement) -> list[WindowResult]:
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        for out in self.handler.offer(element):
            self._ingest(out)
        return self._close(self.handler.frontier)

    def finish(self) -> list[WindowResult]:
        for out in self.handler.flush():
            self._ingest(out)
        return self._close(float("inf"), flushed=True)
