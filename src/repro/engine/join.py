"""Event-time interval join under disorder handling.

:class:`IntervalJoinOperator` joins two logical streams (distinguished by a
side selector) on equal join keys and event times within ``bound`` seconds
of each other.  A disorder handler supplies the frontier; each side's
released elements are retained until no in-frontier partner can still
appear, so elements later than the handler's slack lose their matches —
the join analogue of dropped-late aggregation input, and the quantity the
quality metrics score (pair recall).

With ``shadow_horizon > 0`` the operator additionally keeps *pruned*
elements in a bounded shadow store: when a late element arrives it is
matched against the shadow to count the pairs that were **lost** (partner
already pruned).  This lost-pair counter is the observed-error signal the
quality-driven join (:class:`repro.core.join_quality.QualityDrivenIntervalJoin`)
feeds back into its adaptive slack controller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.handlers import DisorderHandler
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS


@dataclass(frozen=True, slots=True)
class JoinResult:
    """One emitted join pair."""

    key: object
    left_time: float
    right_time: float
    left_value: object
    right_value: object
    emit_time: float

    @property
    def latency(self) -> DurationS:
        """Delay of the pair past the moment both events had happened."""
        return self.emit_time - max(self.left_time, self.right_time)


class IntervalJoinOperator:
    """Equi-key interval join: ``|t_left - t_right| <= bound``."""

    def __init__(
        self,
        bound: DurationS,
        handler: DisorderHandler,
        side_selector: Callable[[StreamElement], str],
        shadow_horizon: DurationS = 0.0,
    ) -> None:
        if bound < 0:
            raise ConfigurationError(f"bound must be non-negative, got {bound}")
        if shadow_horizon < 0:
            raise ConfigurationError(
                f"shadow_horizon must be non-negative, got {shadow_horizon}"
            )
        self.bound = bound
        self.handler = handler
        self.side_selector = side_selector
        self.shadow_horizon = shadow_horizon
        self._stores: dict[str, dict[object, list[StreamElement]]] = {
            "left": {},
            "right": {},
        }
        self._shadows: dict[str, dict[object, list[StreamElement]]] = {
            "left": {},
            "right": {},
        }
        self.late_dropped = 0
        self.emitted_pairs = 0
        self.lost_pairs = 0
        self._prune_frontier = float("-inf")
        self._last_arrival = 0.0

    def _match(self, element: StreamElement, side: str) -> list[JoinResult]:
        other_side = "right" if side == "left" else "left"
        partners = self._stores[other_side].get(element.key, [])
        results = []
        for partner in partners:
            if abs(partner.event_time - element.event_time) <= self.bound:
                left, right = (element, partner) if side == "left" else (partner, element)
                results.append(
                    JoinResult(
                        key=element.key,
                        left_time=left.event_time,
                        right_time=right.event_time,
                        left_value=left.value,
                        right_value=right.value,
                        emit_time=self._last_arrival,
                    )
                )
        return results

    def _count_lost(self, element: StreamElement, side: str) -> None:
        """Count matches this late element can no longer form."""
        other_side = "right" if side == "left" else "left"
        for partner in self._shadows[other_side].get(element.key, []):
            if abs(partner.event_time - element.event_time) <= self.bound:
                self.lost_pairs += 1

    def _ingest(self, element: StreamElement) -> list[JoinResult]:
        side = self.side_selector(element)
        if side not in ("left", "right"):
            raise ConfigurationError(f"side selector returned {side!r}")
        if element.event_time < self._prune_frontier:
            # Partners below the prune line are gone: matches are lost.
            self.late_dropped += 1
        if self.shadow_horizon > 0:
            # Loss accounting runs for EVERY element, not only flagged-late
            # ones: an on-time element can still have in-bound partners in
            # the shadow (partners pruned while this element was in flight).
            self._count_lost(element, side)
        results = self._match(element, side)
        self.emitted_pairs += len(results)
        self._stores[side].setdefault(element.key, []).append(element)
        return results

    def _prune(self, frontier: float) -> None:
        threshold = frontier - self.bound
        if threshold <= self._prune_frontier:
            return
        self._prune_frontier = threshold
        for side, store in self._stores.items():
            shadow = self._shadows[side]
            for key, elements in list(store.items()):
                kept = [el for el in elements if el.event_time >= threshold]
                if self.shadow_horizon > 0:
                    pruned = [el for el in elements if el.event_time < threshold]
                    if pruned:
                        shadow.setdefault(key, []).extend(pruned)
                if kept:
                    store[key] = kept
                else:
                    del store[key]
        if self.shadow_horizon > 0:
            expiry = threshold - self.shadow_horizon
            for shadow in self._shadows.values():
                for key, elements in list(shadow.items()):
                    kept = [el for el in elements if el.event_time >= expiry]
                    if kept:
                        shadow[key] = kept
                    else:
                        del shadow[key]

    def process(self, element: StreamElement) -> list[JoinResult]:
        """Consume one arriving element; return pairs completed by it."""
        if element.arrival_time is not None:
            self._last_arrival = max(self._last_arrival, element.arrival_time)
        results = []
        for out in self.handler.offer(element):
            results.extend(self._ingest(out))
        self._prune(self.handler.frontier)
        return results

    def finish(self) -> list[JoinResult]:
        """Stream ended: flush the handler and emit remaining pairs."""
        results = []
        for out in self.handler.flush():
            results.extend(self._ingest(out))
        self.emitted_pairs += 0  # counted in _ingest
        return results

    def stored_count(self) -> int:
        """Total elements currently retained across both sides."""
        return sum(
            len(elements)
            for store in self._stores.values()
            for elements in store.values()
        )

    def shadow_count(self) -> int:
        """Elements retained in the feedback shadow store."""
        return sum(
            len(elements)
            for shadow in self._shadows.values()
            for elements in shadow.values()
        )

    def recall_loss_estimate(self) -> float:
        """Observed fraction of pairs lost to lateness (lower bound)."""
        total = self.emitted_pairs + self.lost_pairs
        if total == 0:
            return 0.0
        return self.lost_pairs / total


def oracle_join_pairs(
    elements: list[StreamElement],
    bound: DurationS,
    side_selector: Callable[[StreamElement], str],
) -> set[tuple[object, float, float]]:
    """All (key, left_time, right_time) pairs a complete join would emit."""
    by_key: dict[object, tuple[list[StreamElement], list[StreamElement]]] = {}
    for element in elements:
        left, right = by_key.setdefault(element.key, ([], []))
        if side_selector(element) == "left":
            left.append(element)
        else:
            right.append(element)
    pairs = set()
    for key, (lefts, rights) in by_key.items():
        for left in lefts:
            for right in rights:
                if abs(left.event_time - right.event_time) <= bound:
                    pairs.add((key, left.event_time, right.event_time))
    return pairs
