"""Watermark-based disorder handling (the Flink-style baseline).

Watermark handlers release elements immediately (no reordering) and advance
the frontier according to a watermark policy:

* :class:`FixedLagWatermarkHandler` — frontier = newest event time − lag,
  updated every ``period`` seconds of arrival time.  This is Flink's
  ``BoundedOutOfOrderness`` watermark.
* :class:`HeuristicWatermarkHandler` — the lag is re-estimated periodically
  as a configured quantile of recently observed delays; a non-adaptive
  cousin of the paper's approach (it tracks *delays*, not *result quality*).
* :class:`PerfectWatermarkHandler` — an oracle that knows, for each frontier
  advance, that no earlier event is still in flight.  Implemented by
  pre-scanning the arrival-ordered stream; used to isolate quality loss
  caused by the policy from loss caused by genuinely unbounded lateness.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import (
    DurationS,
    EventTimeFrontier,
    EventTimeStamp,
    MonotoneFrontier,
)
from repro.engine.handlers import Checkpoints, DisorderHandler


class FixedLagWatermarkHandler(DisorderHandler):
    """Periodic watermark at ``newest event time - lag``."""

    name = "watermark-fixed"

    def __init__(self, lag: DurationS, period: DurationS = 0.0) -> None:
        if lag < 0:
            raise ConfigurationError(f"lag must be non-negative, got {lag}")
        if period < 0:
            raise ConfigurationError(f"period must be non-negative, got {period}")
        self.lag = lag
        self.period = period
        self._clock = EventTimeFrontier()
        self._front = MonotoneFrontier()
        self._last_emit_arrival = float("-inf")

    def _maybe_advance(self, arrival_time: float | None) -> None:
        if self.period > 0 and arrival_time is not None:
            if arrival_time - self._last_emit_arrival < self.period:
                return
            self._last_emit_arrival = arrival_time
        self._front.advance(self._clock.value - self.lag)

    def offer(self, element: StreamElement) -> list[StreamElement]:
        self._clock.observe(element.event_time)
        self._maybe_advance(element.arrival_time)
        return [element]

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        clock = self._clock
        advance = self._maybe_advance
        checkpoints: Checkpoints = []
        append = checkpoints.append
        offset = 0
        for element in elements:
            offset += 1
            clock.observe(element.event_time)
            advance(element.arrival_time)
            append((offset, self._front.value))
        return list(elements), checkpoints

    def flush(self) -> list[StreamElement]:
        return []

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    @property
    def current_slack(self) -> DurationS:
        return self.lag

    def released_count(self) -> int:
        return self._clock.count

    def describe(self) -> str:
        return f"watermark(lag={self.lag:g}s, period={self.period:g}s)"


class HeuristicWatermarkHandler(DisorderHandler):
    """Watermark whose lag tracks a quantile of recently observed delays.

    Delay-driven (not quality-driven) adaptation: it aims at "release after
    the p-th percentile delay" regardless of what that does to result error.
    """

    name = "watermark-heuristic"

    def __init__(
        self,
        delay_quantile: float = 0.95,
        window_size: int = 1000,
        update_every: int = 100,
        initial_lag: DurationS = 0.0,
    ) -> None:
        if not 0.0 <= delay_quantile <= 1.0:
            raise ConfigurationError(
                f"delay_quantile must lie in [0,1], got {delay_quantile}"
            )
        if window_size <= 0 or update_every <= 0:
            raise ConfigurationError("window_size and update_every must be positive")
        self.delay_quantile = delay_quantile
        self.window_size = window_size
        self.update_every = update_every
        self.lag = initial_lag
        self._delays: list[float] = []
        self._since_update = 0
        self._clock = EventTimeFrontier()
        self._front = MonotoneFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if element.arrival_time is not None:
            self._delays.append(element.delay)
            if len(self._delays) > self.window_size:
                del self._delays[: len(self._delays) - self.window_size]
            self._since_update += 1
            if self._since_update >= self.update_every:
                self._since_update = 0
                ordered = sorted(self._delays)
                rank = min(
                    len(ordered) - 1, int(self.delay_quantile * (len(ordered) - 1))
                )
                self.lag = ordered[rank]
        self._clock.observe(element.event_time)
        self._front.advance(self._clock.value - self.lag)
        return [element]

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        checkpoints: Checkpoints = []
        append = checkpoints.append
        offset = 0
        for element in elements:
            offset += 1
            self.offer(element)
            append((offset, self._front.value))
        return list(elements), checkpoints

    def flush(self) -> list[StreamElement]:
        return []

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    @property
    def current_slack(self) -> DurationS:
        return self.lag

    def released_count(self) -> int:
        return self._clock.count

    def describe(self) -> str:
        return (
            f"watermark-heuristic(q={self.delay_quantile:g}, "
            f"window={self.window_size})"
        )


class PerfectWatermarkHandler(DisorderHandler):
    """Oracle watermarks: exact results at the minimum possible latency.

    Built from the full arrival-ordered stream ahead of time: after the
    i-th arrival the frontier is the largest event time T such that every
    element with ``event_time <= T`` has already arrived.  No real system
    can implement this; it lower-bounds the latency of any exact policy.
    """

    name = "watermark-perfect"

    def __init__(self, arrival_ordered: list[StreamElement]) -> None:
        # frontier after arrival i = min over j > i of event_time[j], capped
        # by the running max of event times seen so far; computed via a
        # suffix-minimum scan.
        n = len(arrival_ordered)
        suffix_min = [float("inf")] * (n + 1)
        for index in range(n - 1, -1, -1):
            suffix_min[index] = min(
                suffix_min[index + 1], arrival_ordered[index].event_time
            )
        self._frontiers: list[float] = []
        running_max = float("-inf")
        for index, element in enumerate(arrival_ordered):
            running_max = max(running_max, element.event_time)
            # Everything with event_time < suffix_min[index+1] has arrived.
            self._frontiers.append(min(running_max, suffix_min[index + 1]))
        self._position = 0
        self._front = MonotoneFrontier()

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if self._position >= len(self._frontiers):
            raise ConfigurationError(
                "PerfectWatermarkHandler saw more elements than it was built for"
            )
        candidate = self._frontiers[self._position]
        self._position += 1
        self._front.advance(candidate)
        return [element]

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        n = len(elements)
        start = self._position
        if start + n > len(self._frontiers):
            raise ConfigurationError(
                "PerfectWatermarkHandler saw more elements than it was built for"
            )
        value = self._front.value
        frontiers = self._frontiers
        checkpoints: Checkpoints = []
        append = checkpoints.append
        for index in range(n):
            candidate = frontiers[start + index]
            if candidate > value:
                value = candidate
            append((index + 1, value))
        self._position = start + n
        self._front.advance(value)
        return list(elements), checkpoints

    def flush(self) -> list[StreamElement]:
        self._front.close()
        return []

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    def released_count(self) -> int:
        return self._position
