"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class StreamOrderError(ReproError):
    """A stream violated an ordering invariant it promised to uphold."""


class QueryError(ReproError):
    """A query definition is incomplete or inconsistent."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""


class ShardWorkerError(ReproError):
    """A shard worker process failed or died before returning its results.

    Raised by the process-pool shard executor
    (:mod:`repro.engine.process_pool`) on the coordinator when a worker
    reports an exception (the message carries the worker-side traceback,
    the shard id and the phase that failed) or when a worker process
    exits without reporting at all (crash, ``os._exit``, OOM kill) — the
    message then carries the exit code and the shards the worker owned.
    """


class SanitizerError(ReproError):
    """A StreamSan runtime checker caught an engine invariant violation.

    Raised by :mod:`repro.analysis.sanitizer` the moment a wrapped handler
    or operator breaks one of its contracts (frontier monotonicity,
    release/buffer bookkeeping, window lifecycle ordering, batched-vs-
    scalar equivalence) — failing fast at the violation site instead of
    surfacing as a wrong number in an experiment table.
    """
