"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class StreamOrderError(ReproError):
    """A stream violated an ordering invariant it promised to uphold."""


class QueryError(ReproError):
    """A query definition is incomplete or inconsistent."""


class ExperimentError(ReproError):
    """An experiment configuration or run failed."""
