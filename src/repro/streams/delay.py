"""Delay models: the stochastic processes that create stream disorder.

A delay model maps each event to the latency it experiences between source
and processor.  Disorder arises because delays differ between events: an
event with a large delay arrives after later-born events with small delays.

The models here cover the distributions used throughout the evaluation:

* light-tailed (:class:`ExponentialDelay`, :class:`UniformDelay`,
  :class:`GaussianDelay`),
* heavy-tailed (:class:`ParetoDelay`, :class:`LognormalDelay`) — the regime
  where quality-driven buffering pays off most, because sizing a buffer for
  the tail costs enormous latency,
* composite (:class:`MixtureDelay`, :class:`ShiftedDelay`), and
* non-stationary (:class:`BurstyDelay`, :class:`RegimeSwitchingDelay`) for
  the adaptation experiments.

All models are driven by an explicit ``numpy.random.Generator`` so every
experiment is reproducible from a seed.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.errors import ConfigurationError


class DelayModel(ABC):
    """Distribution of per-event delays (seconds, non-negative)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        """Draw the delay of one event born at ``event_time``."""

    def mean(self) -> float:
        """Analytic mean delay; models without one raise."""
        raise NotImplementedError(f"{type(self).__name__} has no analytic mean")

    def describe(self) -> str:
        """Short human-readable description for experiment reports."""
        return type(self).__name__


class ConstantDelay(DelayModel):
    """Every event is delayed by the same amount: no disorder at all."""

    def __init__(self, delay: float = 0.0) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def describe(self) -> str:
        return f"constant({self.delay:g}s)"


class UniformDelay(DelayModel):
    """Delays drawn uniformly from ``[low, high)``."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ConfigurationError(f"need 0 <= low <= high, got [{low}, {high})")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def describe(self) -> str:
        return f"uniform[{self.low:g},{self.high:g})"


class ExponentialDelay(DelayModel):
    """Memoryless delays with the given mean — classic queueing latency."""

    def __init__(self, mean_delay: float) -> None:
        if mean_delay <= 0:
            raise ConfigurationError(f"mean_delay must be positive, got {mean_delay}")
        self.mean_delay = mean_delay

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return float(rng.exponential(self.mean_delay))

    def mean(self) -> float:
        return self.mean_delay

    def describe(self) -> str:
        return f"exp(mean={self.mean_delay:g}s)"


class ParetoDelay(DelayModel):
    """Heavy-tailed (Lomax) delays: ``scale * (Pareto(shape) - 1)``.

    Smaller ``shape`` means a heavier tail; for ``shape <= 1`` the mean is
    infinite, which is exactly the regime where max-delay buffering degrades
    without bound.
    """

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ConfigurationError(
                f"shape and scale must be positive, got shape={shape}, scale={scale}"
            )
        self.shape = shape
        self.scale = scale

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return float(self.scale * rng.pareto(self.shape))

    def mean(self) -> float:
        if self.shape <= 1:
            return math.inf
        return self.scale / (self.shape - 1)

    def describe(self) -> str:
        return f"pareto(shape={self.shape:g},scale={self.scale:g})"


class LognormalDelay(DelayModel):
    """Lognormal delays, a common fit for wide-area network latency."""

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {sigma}")
        self.mu = mu
        self.sigma = sigma

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def describe(self) -> str:
        return f"lognormal(mu={self.mu:g},sigma={self.sigma:g})"


class GaussianDelay(DelayModel):
    """Gaussian delays truncated at zero (jitter around a base latency)."""

    def __init__(self, mean_delay: float, std: float) -> None:
        if mean_delay < 0 or std < 0:
            raise ConfigurationError(
                f"mean and std must be non-negative, got {mean_delay}, {std}"
            )
        self.mean_delay = mean_delay
        self.std = std

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return max(0.0, float(rng.normal(self.mean_delay, self.std)))

    def mean(self) -> float:
        # Truncation bias is ignored: callers use this as a nominal value.
        return self.mean_delay

    def describe(self) -> str:
        return f"gaussian(mean={self.mean_delay:g},std={self.std:g})"


class ShiftedDelay(DelayModel):
    """A base propagation delay plus jitter from an inner model."""

    def __init__(self, base: float, jitter: DelayModel) -> None:
        if base < 0:
            raise ConfigurationError(f"base delay must be non-negative, got {base}")
        self.base = base
        self.jitter = jitter

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return self.base + self.jitter.sample(rng, event_time)

    def mean(self) -> float:
        return self.base + self.jitter.mean()

    def describe(self) -> str:
        return f"{self.base:g}s+{self.jitter.describe()}"


class MixtureDelay(DelayModel):
    """Mixture of delay models: e.g. 95% fast-path, 5% heavy-tailed retries."""

    def __init__(self, components: list[tuple[float, DelayModel]]) -> None:
        if not components:
            raise ConfigurationError("mixture needs at least one component")
        total = sum(weight for weight, _ in components)
        if total <= 0 or any(weight < 0 for weight, _ in components):
            raise ConfigurationError("mixture weights must be non-negative, sum > 0")
        self.components = [(weight / total, model) for weight, model in components]
        self._weights = np.array([weight for weight, _ in self.components])

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        index = int(rng.choice(len(self.components), p=self._weights))
        return self.components[index][1].sample(rng, event_time)

    def mean(self) -> float:
        return sum(weight * model.mean() for weight, model in self.components)

    def describe(self) -> str:
        parts = ", ".join(
            f"{weight:.2f}*{model.describe()}" for weight, model in self.components
        )
        return f"mixture({parts})"


class RegimeSwitchingDelay(DelayModel):
    """Deterministic schedule of delay regimes over event time.

    ``schedule`` maps event-time breakpoints to models: the model whose
    interval contains the event's birth time generates its delay.  Used for
    the burst-adaptation experiment (calm -> burst -> calm).
    """

    def __init__(self, schedule: list[tuple[float, DelayModel]]) -> None:
        if not schedule:
            raise ConfigurationError("schedule must contain at least one regime")
        starts = [start for start, _ in schedule]
        if starts != sorted(starts):
            raise ConfigurationError("schedule breakpoints must be ascending")
        if starts[0] != 0.0:
            raise ConfigurationError("first regime must start at event time 0")
        self.schedule = list(schedule)

    def _model_for(self, event_time: float) -> DelayModel:
        active = self.schedule[0][1]
        for start, model in self.schedule:
            if event_time >= start:
                active = model
            else:
                break
        return active

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return self._model_for(event_time).sample(rng, event_time)

    def describe(self) -> str:
        parts = ", ".join(
            f"t>={start:g}: {model.describe()}" for start, model in self.schedule
        )
        return f"regimes({parts})"


class BurstyDelay(DelayModel):
    """Calm delays with a single burst window of much larger delays.

    A convenience wrapper over :class:`RegimeSwitchingDelay` for the common
    calm -> burst -> calm shape of experiment E4.
    """

    def __init__(
        self,
        calm: DelayModel,
        burst: DelayModel,
        burst_start: float,
        burst_end: float,
    ) -> None:
        if not 0 <= burst_start < burst_end:
            raise ConfigurationError(
                f"need 0 <= burst_start < burst_end, got [{burst_start}, {burst_end})"
            )
        self.calm = calm
        self.burst = burst
        self.burst_start = burst_start
        self.burst_end = burst_end
        self._regimes = RegimeSwitchingDelay(
            [(0.0, calm), (burst_start, burst), (burst_end, calm)]
        )

    def sample(self, rng: np.random.Generator, event_time: float) -> float:
        return self._regimes.sample(rng, event_time)

    def describe(self) -> str:
        return (
            f"bursty(calm={self.calm.describe()}, burst={self.burst.describe()} "
            f"in [{self.burst_start:g},{self.burst_end:g}))"
        )


def empirical_quantile(
    model: DelayModel,
    q: float,
    rng: np.random.Generator,
    n_samples: int = 20000,
) -> float:
    """Estimate the ``q``-quantile of a delay model by Monte Carlo sampling.

    Useful for sizing fixed K-slack baselines in experiments where the model
    has no closed-form quantile.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"quantile must lie in [0, 1], got {q}")
    samples = np.array([model.sample(rng, 0.0) for __ in range(n_samples)])
    return float(np.quantile(samples, q))
