"""Stream substrate: data model, delay models, disorder, generators, IO."""

from repro.streams.delay import (
    BurstyDelay,
    ConstantDelay,
    DelayModel,
    ExponentialDelay,
    GaussianDelay,
    LognormalDelay,
    MixtureDelay,
    ParetoDelay,
    RegimeSwitchingDelay,
    ShiftedDelay,
    UniformDelay,
    empirical_quantile,
)
from repro.streams.disorder import (
    DisorderStats,
    inject_disorder,
    inject_fifo_disorder,
    measure_disorder,
)
from repro.streams.element import StreamElement, Watermark, ensure_arrival_order
from repro.streams.generators import (
    ConstantValues,
    GaussianValues,
    RandomWalkValues,
    SinusoidValues,
    SpikyValues,
    UniformValues,
    ValueProcess,
    generate_stream,
)
from repro.streams.io import read_trace, write_trace
from repro.streams.multisource import merge_streams
from repro.streams.timebase import (
    EventTimeFrontier,
    MonotoneFrontier,
    SimulatedClock,
    times_equal,
)

__all__ = [
    "BurstyDelay",
    "ConstantDelay",
    "ConstantValues",
    "DelayModel",
    "DisorderStats",
    "EventTimeFrontier",
    "ExponentialDelay",
    "GaussianDelay",
    "GaussianValues",
    "LognormalDelay",
    "MixtureDelay",
    "MonotoneFrontier",
    "ParetoDelay",
    "RandomWalkValues",
    "RegimeSwitchingDelay",
    "ShiftedDelay",
    "SimulatedClock",
    "SinusoidValues",
    "SpikyValues",
    "StreamElement",
    "UniformDelay",
    "UniformValues",
    "ValueProcess",
    "Watermark",
    "empirical_quantile",
    "ensure_arrival_order",
    "generate_stream",
    "inject_disorder",
    "inject_fifo_disorder",
    "measure_disorder",
    "merge_streams",
    "read_trace",
    "times_equal",
    "write_trace",
]
