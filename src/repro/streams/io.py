"""Trace persistence: write and read streams as CSV files.

Traces are stored with one element per row (``event_time, arrival_time,
key, value, seq``) so experiments can be replayed byte-identically and
traces can be inspected with standard tools.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.errors import ConfigurationError
from repro.streams.element import StreamElement

_FIELDS = ("event_time", "arrival_time", "key", "value", "seq")


def write_trace(path: str | Path, elements: list[StreamElement]) -> int:
    """Write elements to ``path`` as CSV; returns the number of rows written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_FIELDS)
        for element in elements:
            writer.writerow(
                [
                    repr(element.event_time),
                    "" if element.arrival_time is None else repr(element.arrival_time),
                    "" if element.key is None else str(element.key),
                    repr(element.value),
                    element.seq,
                ]
            )
    return len(elements)


def read_trace(path: str | Path) -> list[StreamElement]:
    """Read a trace written by :func:`write_trace`.

    Keys are restored as strings (or ``None``); values as floats.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"trace file does not exist: {path}")
    elements = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != _FIELDS:
            raise ConfigurationError(
                f"unexpected trace header in {path}: {reader.fieldnames}"
            )
        for row in reader:
            arrival = row["arrival_time"]
            elements.append(
                StreamElement(
                    event_time=float(row["event_time"]),
                    value=float(row["value"]),
                    key=row["key"] or None,
                    arrival_time=float(arrival) if arrival else None,
                    seq=int(row["seq"]),
                )
            )
    return elements
