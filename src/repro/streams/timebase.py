"""Simulated clocks and time-domain helpers.

The engine runs on *simulated time*: the processing clock of a pipeline is
the arrival timestamp of the element currently being processed, which makes
every experiment deterministic and independent of host speed.  Wall-clock
time is measured separately (see :mod:`repro.engine.metrics`) only for
throughput/overhead experiments.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


class SimulatedClock:
    """A monotone simulated clock driven by observed timestamps.

    The clock never moves backwards; feeding it an older timestamp leaves it
    unchanged.  This mirrors how stream processors derive their event-time
    frontier from the maximum timestamp seen so far.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock start must be non-negative, got {start}")
        self._now = start

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is ahead; return now."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def advance_by(self, delta: float) -> float:
        """Advance the clock by a non-negative delta; return now."""
        if delta < 0:
            raise ConfigurationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now


class EventTimeFrontier:
    """Tracks the maximum event time observed on a stream.

    ``frontier - K`` is the release threshold of a K-slack buffer; the
    frontier itself is the most aggressive (zero-slack) watermark available
    without future knowledge.
    """

    def __init__(self) -> None:
        self._max_event_time = float("-inf")
        self._count = 0

    @property
    def value(self) -> float:
        """Maximum event time seen, or ``-inf`` before any observation."""
        return self._max_event_time

    @property
    def count(self) -> int:
        """Number of observations folded into the frontier."""
        return self._count

    def observe(self, event_time: float) -> float:
        """Fold one event timestamp into the frontier; return the frontier."""
        self._count += 1
        if event_time > self._max_event_time:
            self._max_event_time = event_time
        return self._max_event_time

    def observe_many(self, max_event_time: float, count: int) -> float:
        """Fold a pre-reduced batch (its max timestamp and size) at once.

        Equivalent to ``count`` scalar observations whose running maximum is
        ``max_event_time``; used by the batched handler paths.
        """
        self._count += count
        if max_event_time > self._max_event_time:
            self._max_event_time = max_event_time
        return self._max_event_time
