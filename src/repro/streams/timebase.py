"""Simulated clocks and time-domain helpers.

The engine runs on *simulated time*: the processing clock of a pipeline is
the arrival timestamp of the element currently being processed, which makes
every experiment deterministic and independent of host speed.  Wall-clock
time is measured separately (see :mod:`repro.engine.metrics`) only for
throughput/overhead experiments.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

#: Default relative tolerance of :func:`times_equal`; matches the tolerance
#: the batched-equivalence suite uses for re-associated float folds.
TIME_EQ_RTOL = 1e-9


def times_equal(a: float, b: float, rtol: float = TIME_EQ_RTOL) -> bool:
    """Tolerance-aware timestamp equality.

    Float timestamps accumulate rounding the moment they pass through
    arithmetic (``frontier - lag``, window index math), so ``==``/``!=`` on
    them is a correctness trap — repro-lint rule R03 bans it.  This helper
    is the sanctioned replacement: exact matches (including infinities)
    short-circuit, everything else compares within ``rtol`` relative to the
    larger magnitude (floored at 1.0 so times near zero get an absolute
    tolerance of ``rtol``).
    """
    if a == b:  # repro-lint: disable=R03 - this IS the tolerance helper
        return True
    return abs(a - b) <= rtol * max(1.0, abs(a), abs(b))


class MonotoneFrontier:
    """A never-decreasing event-time frontier value.

    Every :class:`~repro.engine.handlers.DisorderHandler` promises that its
    ``frontier`` property never moves backwards; this class makes that
    promise structural instead of re-implementing ``if candidate > value``
    at every advance site.  :meth:`advance` clamps regressions (an older
    candidate leaves the frontier unchanged), so a handler that stores its
    frontier here cannot violate the contract no matter what candidate
    sequence its policy produces.
    """

    __slots__ = ("_value",)

    def __init__(self, start: float = float("-inf")) -> None:
        self._value = start

    @property
    def value(self) -> float:
        """Current frontier; ``-inf`` before the first advance."""
        return self._value

    def advance(self, candidate: float) -> float:
        """Raise the frontier to ``candidate`` if ahead; return the frontier."""
        if candidate > self._value:
            self._value = candidate
        return self._value

    def close(self) -> float:
        """End of stream: jump the frontier to ``+inf`` and return it."""
        self._value = float("inf")
        return self._value


class SimulatedClock:
    """A monotone simulated clock driven by observed timestamps.

    The clock never moves backwards; feeding it an older timestamp leaves it
    unchanged.  This mirrors how stream processors derive their event-time
    frontier from the maximum timestamp seen so far.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock start must be non-negative, got {start}")
        self._now = start

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is ahead; return now."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def advance_by(self, delta: float) -> float:
        """Advance the clock by a non-negative delta; return now."""
        if delta < 0:
            raise ConfigurationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now


class EventTimeFrontier:
    """Tracks the maximum event time observed on a stream.

    ``frontier - K`` is the release threshold of a K-slack buffer; the
    frontier itself is the most aggressive (zero-slack) watermark available
    without future knowledge.
    """

    def __init__(self) -> None:
        self._max_event_time = float("-inf")
        self._count = 0

    @property
    def value(self) -> float:
        """Maximum event time seen, or ``-inf`` before any observation."""
        return self._max_event_time

    @property
    def count(self) -> int:
        """Number of observations folded into the frontier."""
        return self._count

    def observe(self, event_time: float) -> float:
        """Fold one event timestamp into the frontier; return the frontier."""
        self._count += 1
        if event_time > self._max_event_time:
            self._max_event_time = event_time
        return self._max_event_time

    def observe_many(self, max_event_time: float, count: int) -> float:
        """Fold a pre-reduced batch (its max timestamp and size) at once.

        Equivalent to ``count`` scalar observations whose running maximum is
        ``max_event_time``; used by the batched handler paths.
        """
        self._count += count
        if max_event_time > self._max_event_time:
            self._max_event_time = max_event_time
        return self._max_event_time
