"""Simulated clocks and time-domain helpers.

The engine runs on *simulated time*: the processing clock of a pipeline is
the arrival timestamp of the element currently being processed, which makes
every experiment deterministic and independent of host speed.  Wall-clock
time is measured separately (see :mod:`repro.engine.metrics`) only for
throughput/overhead experiments.
"""

from __future__ import annotations

import math
from typing import Annotated

from repro.errors import ConfigurationError


class EventTime:
    """Time-domain marker: an **event-time** instant (element timestamps,
    frontiers, watermarks, window bounds).

    Used as ``Annotated[float, EventTime]`` metadata; the whole-program
    dataflow analysis (:mod:`repro.analysis.dataflow`) seeds its lattice
    from these markers.  Never instantiated.
    """


class ProcTime:
    """Time-domain marker: a **processing-time** instant.

    In this engine the processing clock is simulated — it is the arrival
    timestamp of the element in flight — but it is still a different axis
    from event time: comparing the two directly is the classic
    out-of-order-stream bug (repro-lint rule R06).
    """


class Duration:
    """Time-domain marker: a span of seconds (slack, lag, delay, latency).

    Durations may be added to or subtracted from instants; instants may be
    subtracted to produce one.  Adding two instants, or ordering a duration
    against an instant, is flagged (rules R06/R08).
    """


#: ``Annotated`` aliases for signatures.  ``mypy --strict`` sees plain
#: ``float``; the dataflow analysis sees the domain.
EventTimeStamp = Annotated[float, EventTime]
ArrivalTimeStamp = Annotated[float, ProcTime]
DurationS = Annotated[float, Duration]

#: Default relative tolerance of :func:`times_equal`; matches the tolerance
#: the batched-equivalence suite uses for re-associated float folds.
TIME_EQ_RTOL = 1e-9

#: Default absolute-tolerance floor of :func:`times_equal`.  A pure relative
#: tolerance collapses to zero as timestamps approach 0.0 (stream epochs
#: start at zero here), so near-zero event times need an absolute floor to
#: absorb the same rounding that ``rtol`` absorbs at large magnitudes.
TIME_EQ_ATOL = 1e-9


def times_equal(
    a: float, b: float, rtol: float = TIME_EQ_RTOL, atol: float = TIME_EQ_ATOL
) -> bool:
    """Tolerance-aware timestamp equality.

    Float timestamps accumulate rounding the moment they pass through
    arithmetic (``frontier - lag``, window index math), so ``==``/``!=`` on
    them is a correctness trap — repro-lint rule R03 bans it.  This helper
    is the sanctioned replacement: exact matches (including infinities)
    short-circuit, everything else compares within
    ``max(atol, rtol * max(|a|, |b|))`` — relative at large magnitudes,
    floored at ``atol`` so timestamps at or near 0.0 (where a pure relative
    tolerance vanishes) still absorb rounding noise.
    """
    if a == b:  # repro-lint: disable=R03 - this IS the tolerance helper
        return True
    if math.isinf(a) or math.isinf(b):
        # Distinct infinities (or one infinite sentinel vs a finite time)
        # are never "close": rtol * inf would otherwise swallow everything.
        return False
    return abs(a - b) <= max(atol, rtol * max(abs(a), abs(b)))


class MonotoneFrontier:
    """A never-decreasing event-time frontier value.

    Every :class:`~repro.engine.handlers.DisorderHandler` promises that its
    ``frontier`` property never moves backwards; this class makes that
    promise structural instead of re-implementing ``if candidate > value``
    at every advance site.  :meth:`advance` clamps regressions (an older
    candidate leaves the frontier unchanged), so a handler that stores its
    frontier here cannot violate the contract no matter what candidate
    sequence its policy produces.
    """

    __concurrency__ = "single-thread"

    __slots__ = ("_value",)

    def __init__(self, start: EventTimeStamp = float("-inf")) -> None:
        self._value = start

    @property
    def value(self) -> EventTimeStamp:
        """Current frontier; ``-inf`` before the first advance."""
        return self._value

    def advance(self, candidate: EventTimeStamp) -> EventTimeStamp:
        """Raise the frontier to ``candidate`` if ahead; return the frontier."""
        if candidate > self._value:
            self._value = candidate
        return self._value

    def close(self) -> EventTimeStamp:
        """End of stream: jump the frontier to ``+inf`` and return it."""
        self._value = float("inf")
        return self._value


class SimulatedClock:
    """A monotone simulated clock driven by observed timestamps.

    The clock never moves backwards; feeding it an older timestamp leaves it
    unchanged.  This mirrors how stream processors derive their event-time
    frontier from the maximum timestamp seen so far.
    """

    __slots__ = ("_now",)

    def __init__(self, start: ArrivalTimeStamp = 0.0) -> None:
        if start < 0:
            raise ConfigurationError(f"clock start must be non-negative, got {start}")
        self._now = start

    @property
    def now(self) -> ArrivalTimeStamp:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, timestamp: ArrivalTimeStamp) -> ArrivalTimeStamp:
        """Advance the clock to ``timestamp`` if it is ahead; return now."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def advance_by(self, delta: DurationS) -> ArrivalTimeStamp:
        """Advance the clock by a non-negative delta; return now."""
        if delta < 0:
            raise ConfigurationError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now


class EventTimeFrontier:
    """Tracks the maximum event time observed on a stream.

    ``frontier - K`` is the release threshold of a K-slack buffer; the
    frontier itself is the most aggressive (zero-slack) watermark available
    without future knowledge.
    """

    __concurrency__ = "single-thread"

    __slots__ = ("_max_event_time", "_count")

    def __init__(self) -> None:
        self._max_event_time = float("-inf")
        self._count = 0

    @property
    def value(self) -> EventTimeStamp:
        """Maximum event time seen, or ``-inf`` before any observation."""
        return self._max_event_time

    @property
    def count(self) -> int:
        """Number of observations folded into the frontier."""
        return self._count

    def observe(self, event_time: EventTimeStamp) -> EventTimeStamp:
        """Fold one event timestamp into the frontier; return the frontier."""
        self._count += 1
        if event_time > self._max_event_time:
            self._max_event_time = event_time
        return self._max_event_time

    def observe_many(self, max_event_time: EventTimeStamp, count: int) -> EventTimeStamp:
        """Fold a pre-reduced batch (its max timestamp and size) at once.

        Equivalent to ``count`` scalar observations whose running maximum is
        ``max_event_time``; used by the batched handler paths.
        """
        self._count += count
        if max_event_time > self._max_event_time:
            self._max_event_time = max_event_time
        return self._max_event_time
