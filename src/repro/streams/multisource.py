"""Multi-source stream merging.

Real deployments ingest one logical stream from many physical sources
(sensors, partitions, gateways), each roughly ordered on its own but
mutually skewed.  :func:`merge_streams` interleaves several
arrival-ordered streams into the single arrival-ordered stream an operator
consumes; the companion frontier rule lives in
:mod:`repro.engine.multisource`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.streams.element import StreamElement


def merge_streams(streams: list[list[StreamElement]]) -> list[StreamElement]:
    """Merge arrival-ordered streams into one arrival-ordered stream.

    Sequence numbers are reassigned in event-time order over the merged
    stream so tie-breaking stays deterministic and unique.
    """
    merged = [element for stream in streams for element in stream]
    for element in merged:
        if element.arrival_time is None:
            raise ConfigurationError(
                "merge_streams requires arrival timestamps on every element"
            )
    by_event = sorted(merged, key=lambda el: (el.event_time, el.arrival_time))
    renumbered = [
        element.with_arrival(element.arrival_time, seq=index)
        for index, element in enumerate(by_event)
    ]
    renumbered.sort(key=StreamElement.arrival_sort_key)
    return renumbered
