"""Disorder injection and disorder measurement.

``inject_disorder`` turns an in-order (event-time sorted) stream into the
arrival-ordered stream an operator actually observes, by sampling one delay
per element and re-sorting by arrival time.

``DisorderStats`` quantifies how disordered a stream is, with the metrics
used across the evaluation: the fraction of out-of-order elements, delay
quantiles, and the maximum element displacement in time units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.delay import DelayModel
from repro.streams.element import StreamElement


def inject_disorder(
    elements: list[StreamElement],
    model: DelayModel,
    rng: np.random.Generator,
) -> list[StreamElement]:
    """Assign arrival times from ``model`` and return arrival-ordered elements.

    Args:
        elements: In-order stream (ascending event time); each element's
            existing arrival time, if any, is discarded.
        model: Delay distribution sampled once per element.
        rng: Random generator; pass a seeded generator for reproducibility.

    Returns:
        A new list sorted by (arrival_time, seq); sequence numbers are
        assigned in event-time order so ties resolve deterministically.
    """
    delayed = []
    for seq, element in enumerate(elements):
        delay = model.sample(rng, element.event_time)
        if delay < 0:
            raise ConfigurationError(
                f"delay model {model.describe()} produced negative delay {delay}"
            )
        delayed.append(element.with_arrival(element.event_time + delay, seq=seq))
    delayed.sort(key=StreamElement.arrival_sort_key)
    return delayed


def count_inversions(sequence: list[float]) -> int:
    """Count pairs (i, j) with i < j but sequence[i] > sequence[j].

    Uses a merge-sort sweep, O(n log n).  An in-order stream has zero
    inversions; a fully reversed one has n*(n-1)/2.
    """

    def merge_count(values: list[float]) -> tuple[list[float], int]:
        if len(values) <= 1:
            return values, 0
        mid = len(values) // 2
        left, left_inv = merge_count(values[:mid])
        right, right_inv = merge_count(values[mid:])
        merged: list[float] = []
        inversions = left_inv + right_inv
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
                inversions += len(left) - i
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged, inversions

    return merge_count(list(sequence))[1]


@dataclass(frozen=True)
class DisorderStats:
    """Summary of how out-of-order an arrival-ordered stream is.

    Attributes:
        n_elements: Stream length.
        out_of_order_fraction: Fraction of elements whose event time is
            smaller than the running maximum at their arrival (i.e. elements
            that a zero-slack operator would consider late).
        normalized_inversions: Inversion count divided by the worst case
            n*(n-1)/2; 0 means sorted, 1 means reversed.
        mean_delay / p50_delay / p95_delay / p99_delay / max_delay:
            Quantiles of the element delays (arrival - event time).
        max_displacement: Largest (running-max event time - event time) at
            arrival; the minimum slack K that would reorder the stream
            perfectly.
    """

    n_elements: int
    out_of_order_fraction: float
    normalized_inversions: float
    mean_delay: float
    p50_delay: float
    p95_delay: float
    p99_delay: float
    max_delay: float
    max_displacement: float


def measure_disorder(elements: list[StreamElement]) -> DisorderStats:
    """Compute :class:`DisorderStats` for an arrival-ordered stream."""
    if not elements:
        return DisorderStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    event_times = [element.event_time for element in elements]
    delays = np.array([element.delay for element in elements])

    running_max = float("-inf")
    late = 0
    max_displacement = 0.0
    for event_time in event_times:
        if event_time < running_max:
            late += 1
            max_displacement = max(max_displacement, running_max - event_time)
        else:
            running_max = event_time

    n = len(elements)
    worst_case = n * (n - 1) / 2
    normalized = count_inversions(event_times) / worst_case if worst_case else 0.0

    return DisorderStats(
        n_elements=n,
        out_of_order_fraction=late / n,
        normalized_inversions=normalized,
        mean_delay=float(delays.mean()),
        p50_delay=float(np.quantile(delays, 0.5)),
        p95_delay=float(np.quantile(delays, 0.95)),
        p99_delay=float(np.quantile(delays, 0.99)),
        max_delay=float(delays.max()),
        max_displacement=max_displacement,
    )


def inject_fifo_disorder(
    elements: list[StreamElement],
    model: DelayModel,
    rng: np.random.Generator,
    channel_of=None,
) -> list[StreamElement]:
    """Disorder injection over order-preserving (FIFO) channels.

    Models TCP-like transport: each channel delivers its own elements in
    send order (an element's arrival is at least its channel predecessor's
    arrival), while elements of *different* channels still interleave
    arbitrarily.  With a single channel the output is fully in order —
    cross-channel skew is the only disorder source, which is the regime
    :class:`repro.engine.multisource.MultiSourceWatermarkHandler` exploits.

    Args:
        elements: In-order stream (ascending event time).
        model: Per-element base delay distribution.
        rng: Seeded random generator.
        channel_of: Maps an element to its channel id; defaults to the
            element key (one FIFO connection per key).
    """
    if channel_of is None:
        channel_of = lambda element: element.key  # noqa: E731 - small adapter
    last_arrival: dict[object, float] = {}
    delayed = []
    for seq, element in enumerate(elements):
        delay = model.sample(rng, element.event_time)
        if delay < 0:
            raise ConfigurationError(
                f"delay model {model.describe()} produced negative delay {delay}"
            )
        channel = channel_of(element)
        arrival = element.event_time + delay
        previous = last_arrival.get(channel)
        if previous is not None and arrival < previous:
            arrival = previous
        last_arrival[channel] = arrival
        delayed.append(element.with_arrival(arrival, seq=seq))
    delayed.sort(key=StreamElement.arrival_sort_key)
    return delayed
