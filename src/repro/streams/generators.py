"""Synthetic workload generation: arrival processes and value processes.

A stream is the composition of

* an **arrival process** deciding *when* events are born (uniform spacing or
  a Poisson process at a given rate),
* a **value process** deciding *what* each event carries (i.i.d. noise,
  random walk, diurnal sinusoid, spikes), and
* an optional set of **keys** interleaved round-robin or uniformly.

Generators produce *in-order* streams; pair them with
:func:`repro.streams.disorder.inject_disorder` to obtain the arrival-ordered
stream an operator sees.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.element import StreamElement


class ValueProcess(ABC):
    """Generates the payload sequence of a stream, one key at a time."""

    @abstractmethod
    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        """Value of the event born at ``event_time`` for ``key``."""

    def reset(self) -> None:
        """Clear any per-run state (random-walk positions etc.)."""


class ConstantValues(ValueProcess):
    """Every event carries the same value — useful for count-style tests."""

    def __init__(self, value: float = 1.0) -> None:
        self.value = value

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        return self.value


class UniformValues(ValueProcess):
    """I.i.d. uniform values in ``[low, high)``."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        if high < low:
            raise ConfigurationError(f"need low <= high, got [{low}, {high})")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        return float(rng.uniform(self.low, self.high))


class GaussianValues(ValueProcess):
    """I.i.d. Gaussian values."""

    def __init__(self, mean: float = 0.0, std: float = 1.0) -> None:
        if std < 0:
            raise ConfigurationError(f"std must be non-negative, got {std}")
        self.mean = mean
        self.std = std

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        return float(rng.normal(self.mean, self.std))


class RandomWalkValues(ValueProcess):
    """Per-key random walk: ``v <- v + N(drift, volatility)``.

    The default model for financial tick prices in the workload suite.
    """

    def __init__(
        self, start: float = 100.0, drift: float = 0.0, volatility: float = 0.1
    ) -> None:
        if volatility < 0:
            raise ConfigurationError(f"volatility must be non-negative, got {volatility}")
        self.start = start
        self.drift = drift
        self.volatility = volatility
        self._positions: dict[object, float] = {}

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        position = self._positions.get(key, self.start)
        position += float(rng.normal(self.drift, self.volatility))
        self._positions[key] = position
        return position

    def reset(self) -> None:
        self._positions.clear()


class SinusoidValues(ValueProcess):
    """Diurnal-style sinusoid plus Gaussian noise — the sensor model."""

    def __init__(
        self,
        base: float = 20.0,
        amplitude: float = 5.0,
        period: float = 3600.0,
        noise_std: float = 0.5,
        phase_per_key: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(f"period must be positive, got {period}")
        self.base = base
        self.amplitude = amplitude
        self.period = period
        self.noise_std = noise_std
        self.phase_per_key = phase_per_key

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        phase = self.phase_per_key * (hash(key) % 16) if key is not None else 0.0
        clean = self.base + self.amplitude * math.sin(
            2 * math.pi * event_time / self.period + phase
        )
        return clean + float(rng.normal(0.0, self.noise_std))


class SpikyValues(ValueProcess):
    """Mostly-flat values with rare large spikes — stresses max/quantiles."""

    def __init__(
        self,
        base: float = 1.0,
        spike_magnitude: float = 100.0,
        spike_probability: float = 0.01,
    ) -> None:
        if not 0.0 <= spike_probability <= 1.0:
            raise ConfigurationError(
                f"spike_probability must lie in [0,1], got {spike_probability}"
            )
        self.base = base
        self.spike_magnitude = spike_magnitude
        self.spike_probability = spike_probability

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        if rng.random() < self.spike_probability:
            return self.base + self.spike_magnitude * float(rng.random())
        return self.base + float(rng.normal(0.0, 0.05))


def generate_stream(
    duration: float,
    rate: float,
    rng: np.random.Generator,
    value_process: ValueProcess | None = None,
    keys: Sequence[object] | None = None,
    arrival: str = "poisson",
) -> list[StreamElement]:
    """Generate an in-order stream.

    Args:
        duration: Event-time span in seconds; events are born in
            ``[0, duration)``.
        rate: Mean events per second across all keys.
        rng: Seeded random generator.
        value_process: Payload model; defaults to ``UniformValues(0, 1)``.
        keys: Optional key universe; events are assigned keys uniformly at
            random.  ``None`` produces an unkeyed stream.
        arrival: ``"poisson"`` for exponential inter-arrival gaps or
            ``"uniform"`` for evenly spaced events.

    Returns:
        Elements sorted by event time, without arrival timestamps.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    if arrival not in ("poisson", "uniform"):
        raise ConfigurationError(f"unknown arrival process {arrival!r}")

    values = value_process if value_process is not None else UniformValues()
    values.reset()

    timestamps: list[float] = []
    if arrival == "uniform":
        gap = 1.0 / rate
        timestamps = [index * gap for index in range(int(duration * rate))]
    else:
        now = 0.0
        while True:
            now += float(rng.exponential(1.0 / rate))
            if now >= duration:
                break
            timestamps.append(now)

    elements = []
    for seq, event_time in enumerate(timestamps):
        key = None
        if keys is not None:
            key = keys[int(rng.integers(0, len(keys)))]
        elements.append(
            StreamElement(
                event_time=event_time,
                value=values.sample(rng, event_time, key),
                key=key,
                seq=seq,
            )
        )
    return elements
