"""Stream data model: timestamped elements and watermarks.

Every record flowing through the engine is a :class:`StreamElement`.  It
carries two timestamps:

* ``event_time`` — when the event happened at the source (seconds, on a
  simulated timeline starting at 0).
* ``arrival_time`` — when the event reached the query processor.  Out-of-order
  streams are modelled by assigning each element an arrival time of
  ``event_time + delay`` with delays drawn from a delay model, then feeding
  elements to operators in arrival order.

Elements are immutable; derived elements are produced with ``with_arrival``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class StreamElement:
    """One timestamped record of a data stream.

    Attributes:
        event_time: Source timestamp in seconds (event-time domain).
        value: The payload, typically a number for aggregation queries.
        key: Optional partitioning key (sensor id, stock symbol, ...).
        arrival_time: Timestamp at which the element reached the processor,
            or ``None`` for an element that has not been through disorder
            injection yet.
        seq: Source sequence number, used as a deterministic tie-breaker
            when sorting elements with equal timestamps.
    """

    event_time: float
    value: Any
    key: Any = None
    arrival_time: float | None = None
    seq: int = -1

    def __post_init__(self) -> None:
        if self.event_time < 0:
            raise ConfigurationError(
                f"event_time must be non-negative, got {self.event_time}"
            )
        # The one sanctioned cross-axis comparison: both axes share the
        # simulation epoch and causality demands arrival >= event time —
        # this check is what makes .delay non-negative by construction.
        if (
            self.arrival_time is not None
            and self.arrival_time < self.event_time  # repro-lint: disable=R06
        ):
            raise ConfigurationError(
                "arrival_time must not precede event_time "
                f"({self.arrival_time} < {self.event_time})"
            )

    @property
    def delay(self) -> float:
        """Network/processing delay experienced by this element (seconds).

        Raises:
            ConfigurationError: if the element has no arrival time yet.
        """
        if self.arrival_time is None:
            raise ConfigurationError("element has no arrival_time assigned")
        return self.arrival_time - self.event_time

    def with_arrival(self, arrival_time: float, seq: int | None = None) -> "StreamElement":
        """Return a copy of this element with an arrival timestamp set."""
        if seq is None:
            return replace(self, arrival_time=arrival_time)
        return replace(self, arrival_time=arrival_time, seq=seq)

    def arrival_sort_key(self) -> tuple[float, int]:
        """Sort key for arrival order with deterministic tie-breaking."""
        if self.arrival_time is None:
            raise ConfigurationError("element has no arrival_time assigned")
        return (self.arrival_time, self.seq)

    def event_sort_key(self) -> tuple[float, int]:
        """Sort key for event-time order with deterministic tie-breaking."""
        return (self.event_time, self.seq)


@dataclass(frozen=True, slots=True)
class Watermark:
    """An assertion that no element with ``event_time < timestamp`` follows.

    Watermark-based disorder handling injects these into the stream; an
    operator receiving a watermark may finalize every window that ends at or
    before the watermark's timestamp.
    """

    timestamp: float


def ensure_arrival_order(elements: list[StreamElement]) -> list[StreamElement]:
    """Validate that ``elements`` are sorted by arrival time.

    Returns the input list unchanged when the order holds.

    Raises:
        StreamOrderError: when two consecutive elements are out of arrival
            order, which indicates a bug in disorder injection or trace IO.
    """
    from repro.errors import StreamOrderError

    previous = None
    for element in elements:
        current = element.arrival_sort_key()
        if previous is not None and current < previous:
            raise StreamOrderError(
                f"elements not in arrival order: {current} after {previous}"
            )
        previous = current
    return elements
