"""ASCII plotting helpers for experiment output and examples.

No plotting library is available offline, so timelines and tradeoff curves
are rendered as unicode sparklines and labelled bar charts — enough to see
the shapes the evaluation is about directly in a terminal.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float]) -> str:
    """Render a numeric series as a unicode sparkline.

    ``nan`` values render as spaces; a constant series renders at the
    lowest level.
    """
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return " " * len(values)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in values:
        if math.isnan(value):
            chars.append(" ")
            continue
        if span == 0:
            chars.append(_SPARK_LEVELS[0])
            continue
        level = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def hbar(value: float, maximum: float, width: int = 40) -> str:
    """A horizontal bar scaled so ``maximum`` fills ``width`` characters."""
    if width <= 0:
        raise ConfigurationError(f"width must be positive, got {width}")
    if maximum <= 0 or math.isnan(value):
        return ""
    filled = int(round(min(1.0, max(0.0, value / maximum)) * width))
    return "#" * filled


def render_series(
    points: list[tuple[float, float]],
    label: str = "",
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Render (x, y) points as labelled horizontal bars, one row per point.

    Example output::

        t=   0.0  0.120 |#####
        t=  30.0  0.480 |####################
    """
    if not points:
        return f"{label}(empty series)"
    ys = [y for __, y in points if not math.isnan(y)]
    maximum = max(ys) if ys else 0.0
    lines = []
    if label:
        lines.append(label)
    for x, y in points:
        formatted = "nan" if math.isnan(y) else value_format.format(y)
        lines.append(f"  t={x:8.1f}  {formatted:>10} |{hbar(y, maximum, width)}")
    return "\n".join(lines)


def render_comparison(
    entries: list[tuple[str, float]],
    width: int = 40,
    value_format: str = "{:.3f}",
) -> str:
    """Render labelled values as a bar chart (e.g. latency per policy)."""
    if not entries:
        return "(empty comparison)"
    maximum = max(value for __, value in entries if not math.isnan(value))
    name_width = max(len(name) for name, __ in entries)
    lines = []
    for name, value in entries:
        formatted = "nan" if math.isnan(value) else value_format.format(value)
        lines.append(
            f"  {name:<{name_width}}  {formatted:>10} |{hbar(value, maximum, width)}"
        )
    return "\n".join(lines)
