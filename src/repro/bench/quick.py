"""Quick throughput check: E8 + E17 + E18 + E19 at reduced scale.

CI convenience (``make bench-quick``): runs the throughput-oriented
experiments small enough for a pull-request gate, prints their tables,
and writes machine-readable summaries of the batched-execution (E18)
and tree-execution (E19) numbers::

    python -m repro.bench.quick --scale 0.1 --out BENCH_e18.json \
        --out-e19 BENCH_e19.json

The JSON captures elements/second per execution path so regressions in
the bulk APIs and the partial-aggregate tree show up as diffable
artifacts.  The run fails (exit 1) when any path's results diverge, and
when the tree is slower than sliced execution at overlap 64 — the
operating point where the tree's O(log) closes must already have paid
for their bookkeeping.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.experiments import run_experiment
from repro.bench.report import ExperimentResult, render_table

QUICK_EXPERIMENTS = ("E8", "E17", "E18", "E19")


def summarize_e18(result: ExperimentResult) -> dict:
    """Distill the E18 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "operators": [
            {
                "operator": row["operator"],
                "scalar_eps": row["scalar_eps"],
                "batched_eps": row["batched_eps"],
                "speedup": row["speedup"],
                "results_equal": row["results_equal"],
            }
            for row in result.rows
        ],
    }


def summarize_e19(result: ExperimentResult) -> dict:
    """Distill the E19 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "configs": [dict(row) for row in result.rows],
    }


def check_e19(summary: dict) -> list[str]:
    """Gate conditions over the E19 summary; returns failure messages."""
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E19 result mismatch at {row['config']}")
        if (
            row["config"] == "overlap=64"
            and row["tree_over_sliced"] is not None
            and row["tree_over_sliced"] < 1.0
        ):
            failures.append(
                "E19 tree slower than sliced at overlap 64 "
                f"(ratio {row['tree_over_sliced']:.3f} < 1.0)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.quick``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.quick",
        description="Run the quick throughput experiments (E8, E17, E18, E19).",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale fraction (default 0.1)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e18.json",
        help="path for the E18 JSON summary (default BENCH_e18.json)",
    )
    parser.add_argument(
        "--out-e19",
        default="BENCH_e19.json",
        help="path for the E19 JSON summary (default BENCH_e19.json)",
    )
    args = parser.parse_args(argv)

    summaries = {}
    for experiment_id in QUICK_EXPERIMENTS:
        result = run_experiment(experiment_id, scale=args.scale)
        print(render_table(result))
        print()
        if experiment_id == "E18":
            summaries["E18"] = summarize_e18(result)
        elif experiment_id == "E19":
            summaries["E19"] = summarize_e19(result)

    for path, summary in ((args.out, summaries["E18"]), (args.out_e19, summaries["E19"])):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}")

    failures = [
        f"E18 result mismatch for: {row['operator']}"
        for row in summaries["E18"]["operators"]
        if not row["results_equal"]
    ]
    failures.extend(check_e19(summaries["E19"]))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
