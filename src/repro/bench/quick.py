"""Quick throughput check: E8 + E17 + E18 + E19 + E20 at reduced scale.

CI convenience (``make bench-quick``): runs the throughput-oriented
experiments small enough for a pull-request gate, prints their tables,
and writes machine-readable summaries of the batched-execution (E18),
tree-execution (E19) and sharded-execution (E20) numbers::

    python -m repro.bench.quick --scale 0.1 --out BENCH_e18.json \
        --out-e19 BENCH_e19.json --out-e20 BENCH_e20.json

The JSON captures elements/second per execution path so regressions in
the bulk APIs, the partial-aggregate tree and the sharded engine show up
as diffable artifacts.  The run fails (exit 1) when any path's results
diverge, when the tree is slower than sliced execution at overlap 64 —
the operating point where the tree's O(log) closes must already have
paid for their bookkeeping — and when four-shard execution is slower
than the single sliced pipeline on the E20 workload (the sharded
engine's per-shard trees must beat the single O(overlap) chain even
with routing and merge overhead included).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.experiments import run_experiment
from repro.bench.report import ExperimentResult, render_table

QUICK_EXPERIMENTS = ("E8", "E17", "E18", "E19", "E20")


def summarize_e18(result: ExperimentResult) -> dict:
    """Distill the E18 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "operators": [
            {
                "operator": row["operator"],
                "scalar_eps": row["scalar_eps"],
                "batched_eps": row["batched_eps"],
                "speedup": row["speedup"],
                "results_equal": row["results_equal"],
            }
            for row in result.rows
        ],
    }


def summarize_e19(result: ExperimentResult) -> dict:
    """Distill the E19 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "configs": [dict(row) for row in result.rows],
    }


def summarize_e20(result: ExperimentResult) -> dict:
    """Distill the E20 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "configs": [dict(row) for row in result.rows],
    }


def check_e19(summary: dict) -> list[str]:
    """Gate conditions over the E19 summary; returns failure messages."""
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E19 result mismatch at {row['config']}")
        if (
            row["config"] == "overlap=64"
            and row["tree_over_sliced"] is not None
            and row["tree_over_sliced"] < 1.0
        ):
            failures.append(
                "E19 tree slower than sliced at overlap 64 "
                f"(ratio {row['tree_over_sliced']:.3f} < 1.0)"
            )
    return failures


def check_e20(summary: dict) -> list[str]:
    """Gate conditions over the E20 summary; returns failure messages."""
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E20 result mismatch at {row['config']}")
        if (
            row["config"] == "sharded(4) tree"
            and row["speedup_vs_sliced"] is not None
            and row["speedup_vs_sliced"] < 1.0
        ):
            failures.append(
                "E20 four-shard execution slower than single sliced "
                f"(ratio {row['speedup_vs_sliced']:.3f} < 1.0)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.quick``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.quick",
        description=(
            "Run the quick throughput experiments (E8, E17, E18, E19, E20)."
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale fraction (default 0.1)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e18.json",
        help="path for the E18 JSON summary (default BENCH_e18.json)",
    )
    parser.add_argument(
        "--out-e19",
        default="BENCH_e19.json",
        help="path for the E19 JSON summary (default BENCH_e19.json)",
    )
    parser.add_argument(
        "--out-e20",
        default="BENCH_e20.json",
        help="path for the E20 JSON summary (default BENCH_e20.json)",
    )
    args = parser.parse_args(argv)

    summaries = {}
    for experiment_id in QUICK_EXPERIMENTS:
        result = run_experiment(experiment_id, scale=args.scale)
        print(render_table(result))
        print()
        if experiment_id == "E18":
            summaries["E18"] = summarize_e18(result)
        elif experiment_id == "E19":
            summaries["E19"] = summarize_e19(result)
        elif experiment_id == "E20":
            summaries["E20"] = summarize_e20(result)

    outputs = (
        (args.out, summaries["E18"]),
        (args.out_e19, summaries["E19"]),
        (args.out_e20, summaries["E20"]),
    )
    for path, summary in outputs:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}")

    failures = [
        f"E18 result mismatch for: {row['operator']}"
        for row in summaries["E18"]["operators"]
        if not row["results_equal"]
    ]
    failures.extend(check_e19(summaries["E19"]))
    failures.extend(check_e20(summaries["E20"]))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
