"""Quick throughput check: E8 + E17 + E18 + E19 + E20 + E21 at reduced scale.

CI convenience (``make bench-quick``): runs the throughput-oriented
experiments small enough for a pull-request gate, prints their tables,
and writes machine-readable summaries of the batched-execution (E18),
tree-execution (E19), sharded-execution (E20) and process-pool (E21)
numbers::

    python -m repro.bench.quick --scale 0.1 --out BENCH_e18.json \
        --out-e19 BENCH_e19.json --out-e20 BENCH_e20.json \
        --out-e21 BENCH_e21.json

``--only E21`` (or any subset) restricts the run — the ``process-shard``
CI job uses this to gate just the process-executor numbers.

The JSON captures elements/second per execution path so regressions in
the bulk APIs, the partial-aggregate tree, the sharded engine and the
process pool show up as diffable artifacts.  The run fails (exit 1) when
any path's results diverge, when the tree is slower than sliced execution
at overlap 64, when four-shard execution is slower than the single sliced
pipeline on the E20 workload, or when an E21 gate fails.  The E21
throughput gates are *core-scoped*: ``process(4) > single tree`` needs a
runner with at least 4 CPUs and ``process(2) >= thread(2)`` needs at
least 2 — on smaller runners they are recorded as skipped in the
artifact instead of failing (a 1-core box physically cannot show
multicore speedup; correctness rows are always enforced).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.bench.experiments import run_experiment
from repro.bench.report import ExperimentResult, render_table

QUICK_EXPERIMENTS = ("E8", "E17", "E18", "E19", "E20", "E21")


def summarize_e18(result: ExperimentResult) -> dict:
    """Distill the E18 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "operators": [
            {
                "operator": row["operator"],
                "scalar_eps": row["scalar_eps"],
                "batched_eps": row["batched_eps"],
                "speedup": row["speedup"],
                "results_equal": row["results_equal"],
            }
            for row in result.rows
        ],
    }


def summarize_e19(result: ExperimentResult) -> dict:
    """Distill the E19 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "configs": [dict(row) for row in result.rows],
    }


def summarize_e20(result: ExperimentResult) -> dict:
    """Distill the E20 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "configs": [dict(row) for row in result.rows],
    }


def summarize_e21(result: ExperimentResult) -> dict:
    """Distill the E21 table into the JSON artifact schema.

    Besides the raw rows the summary records ``cpu_count`` and the two
    core-scoped throughput gates with explicit pass/fail/skipped status,
    so the checked-in artifact says *why* a gate did or did not apply on
    the runner that produced it.
    """
    cpu_count = os.cpu_count() or 1
    configs = [dict(row) for row in result.rows]
    by_config = {row["config"]: row for row in configs}

    def ratio(a: str, b: str) -> float | None:
        row_a, row_b = by_config.get(a), by_config.get(b)
        if row_a is None or row_b is None or not row_b["eps"]:
            return None
        return row_a["eps"] / row_b["eps"]

    gates = {}
    headline = ratio("process(4)", "single tree")
    if cpu_count < 4:
        gates["process4_beats_tree"] = {
            "status": "skipped",
            "reason": f"needs >= 4 cores, runner has {cpu_count}",
            "ratio": headline,
        }
    else:
        gates["process4_beats_tree"] = {
            "status": "pass" if headline is not None and headline > 1.0 else "fail",
            "ratio": headline,
        }
    parity = ratio("process(2)", "thread(2)")
    if cpu_count < 2:
        gates["process2_ge_thread2"] = {
            "status": "skipped",
            "reason": f"needs >= 2 cores, runner has {cpu_count}",
            "ratio": parity,
        }
    else:
        gates["process2_ge_thread2"] = {
            "status": "pass" if parity is not None and parity >= 1.0 else "fail",
            "ratio": parity,
        }
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "cpu_count": cpu_count,
        "configs": configs,
        "gates": gates,
    }


def check_e19(summary: dict) -> list[str]:
    """Gate conditions over the E19 summary; returns failure messages."""
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E19 result mismatch at {row['config']}")
        if (
            row["config"] == "overlap=64"
            and row["tree_over_sliced"] is not None
            and row["tree_over_sliced"] < 1.0
        ):
            failures.append(
                "E19 tree slower than sliced at overlap 64 "
                f"(ratio {row['tree_over_sliced']:.3f} < 1.0)"
            )
    return failures


def check_e20(summary: dict) -> list[str]:
    """Gate conditions over the E20 summary; returns failure messages."""
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E20 result mismatch at {row['config']}")
        if (
            row["config"] == "sharded(4) tree"
            and row["speedup_vs_sliced"] is not None
            and row["speedup_vs_sliced"] < 1.0
        ):
            failures.append(
                "E20 four-shard execution slower than single sliced "
                f"(ratio {row['speedup_vs_sliced']:.3f} < 1.0)"
            )
    return failures


def check_e21(summary: dict) -> list[str]:
    """Gate conditions over the E21 summary; returns failure messages.

    Correctness rows (``results_equal``, ``identical_to_thread``) are
    unconditional; the throughput gates enforce only entries whose
    recorded status is ``"fail"`` — ``"skipped"`` entries (runner below
    the gate's core requirement) pass by construction.
    """
    failures = []
    for row in summary["configs"]:
        if not row["results_equal"]:
            failures.append(f"E21 result mismatch at {row['config']}")
        if row.get("identical_to_thread") is False:
            failures.append(
                f"E21 {row['config']} not bit-identical to its thread twin"
            )
    for gate_name, gate in summary["gates"].items():
        if gate["status"] == "fail":
            ratio = gate.get("ratio")
            shown = f"{ratio:.3f}" if ratio is not None else "n/a"
            failures.append(f"E21 gate {gate_name} failed (ratio {shown})")
    return failures


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.quick``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.quick",
        description=(
            "Run the quick throughput experiments "
            "(E8, E17, E18, E19, E20, E21)."
        ),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale fraction (default 0.1)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        default=None,
        metavar="EID",
        help="run only these quick experiments (e.g. --only E21)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e18.json",
        help="path for the E18 JSON summary (default BENCH_e18.json)",
    )
    parser.add_argument(
        "--out-e19",
        default="BENCH_e19.json",
        help="path for the E19 JSON summary (default BENCH_e19.json)",
    )
    parser.add_argument(
        "--out-e20",
        default="BENCH_e20.json",
        help="path for the E20 JSON summary (default BENCH_e20.json)",
    )
    parser.add_argument(
        "--out-e21",
        default="BENCH_e21.json",
        help="path for the E21 JSON summary (default BENCH_e21.json)",
    )
    args = parser.parse_args(argv)

    if args.only is None:
        selected = QUICK_EXPERIMENTS
    else:
        selected = tuple(eid.upper() for eid in args.only)
        unknown = [eid for eid in selected if eid not in QUICK_EXPERIMENTS]
        if unknown:
            print(
                f"unknown quick experiment(s) {unknown}; "
                f"known: {list(QUICK_EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2

    summarizers = {
        "E18": summarize_e18,
        "E19": summarize_e19,
        "E20": summarize_e20,
        "E21": summarize_e21,
    }
    out_paths = {
        "E18": args.out,
        "E19": args.out_e19,
        "E20": args.out_e20,
        "E21": args.out_e21,
    }
    summaries = {}
    for experiment_id in selected:
        result = run_experiment(experiment_id, scale=args.scale)
        print(render_table(result))
        print()
        summarizer = summarizers.get(experiment_id)
        if summarizer is not None:
            summaries[experiment_id] = summarizer(result)

    for experiment_id, summary in summaries.items():
        path = out_paths[experiment_id]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"wrote {path}")

    failures = []
    if "E18" in summaries:
        failures.extend(
            f"E18 result mismatch for: {row['operator']}"
            for row in summaries["E18"]["operators"]
            if not row["results_equal"]
        )
    if "E19" in summaries:
        failures.extend(check_e19(summaries["E19"]))
    if "E20" in summaries:
        failures.extend(check_e20(summaries["E20"]))
    if "E21" in summaries:
        failures.extend(check_e21(summaries["E21"]))
    if failures:
        for failure in failures:
            print(failure, file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
