"""Quick throughput check: E8 + E17 + E18 at reduced scale.

CI convenience (``make bench-quick``): runs the three throughput-oriented
experiments small enough for a pull-request gate, prints their tables,
and writes a machine-readable summary of the batched-execution numbers::

    python -m repro.bench.quick --scale 0.1 --out BENCH_e18.json

The JSON captures elements/second for the scalar and batched paths per
operator so regressions in the bulk APIs show up as a diffable artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.experiments import run_experiment
from repro.bench.report import ExperimentResult, render_table

QUICK_EXPERIMENTS = ("E8", "E17", "E18")


def summarize_e18(result: ExperimentResult) -> dict:
    """Distill the E18 table into the JSON artifact schema."""
    return {
        "experiment": result.experiment_id,
        "title": result.title,
        "operators": [
            {
                "operator": row["operator"],
                "scalar_eps": row["scalar_eps"],
                "batched_eps": row["batched_eps"],
                "speedup": row["speedup"],
                "results_equal": row["results_equal"],
            }
            for row in result.rows
        ],
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.bench.quick``."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.quick",
        description="Run the quick throughput experiments (E8, E17, E18).",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="workload scale fraction (default 0.1)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_e18.json",
        help="path for the E18 JSON summary (default BENCH_e18.json)",
    )
    args = parser.parse_args(argv)

    e18_summary = None
    for experiment_id in QUICK_EXPERIMENTS:
        result = run_experiment(experiment_id, scale=args.scale)
        print(render_table(result))
        print()
        if experiment_id == "E18":
            e18_summary = summarize_e18(result)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(e18_summary, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    failures = [
        row["operator"]
        for row in e18_summary["operators"]
        if not row["results_equal"]
    ]
    if failures:
        print(f"E18 result mismatch for: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
