"""Experiment harness: workloads, policy runners, tables, E1..E14."""

from repro.bench.harness import (
    PolicyRun,
    WorkloadSpec,
    default_delay_model,
    make_policy,
    run_policy,
    standard_query,
    sweep,
    workload_summary,
)
from repro.bench.report import (
    ExperimentResult,
    format_value,
    is_monotone,
    render_table,
)
from repro.bench.experiments import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "PolicyRun",
    "WorkloadSpec",
    "default_delay_model",
    "format_value",
    "is_monotone",
    "make_policy",
    "render_table",
    "run_experiment",
    "run_policy",
    "standard_query",
    "sweep",
    "workload_summary",
]
