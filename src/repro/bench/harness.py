"""Shared experiment plumbing: workloads, policy runners, measurement rows.

Every experiment in :mod:`repro.bench.experiments` is built from the same
three steps:

1. build a seeded workload (:class:`WorkloadSpec` -> arrival-ordered stream),
2. run one or more disorder-handling policies over it
   (:func:`run_policy`), and
3. tabulate error/latency/memory into an
   :class:`~repro.bench.report.ExperimentResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.aqk import AQKSlackHandler
from repro.core.quality import QualityReport, assess_quality
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import AggregateFunction, make_aggregate
from repro.engine.handlers import (
    DisorderHandler,
    KSlackHandler,
    MPKSlackHandler,
    NoBufferHandler,
)
from repro.engine.metrics import LatencySummary
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import RunOutput, run_pipeline
from repro.engine.watermarks import HeuristicWatermarkHandler
from repro.engine.windows import SlidingWindowAssigner, WindowAssigner
from repro.errors import ExperimentError
from repro.streams.delay import (
    DelayModel,
    ExponentialDelay,
    MixtureDelay,
    ParetoDelay,
)
from repro.streams.disorder import inject_disorder, measure_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import UniformValues, ValueProcess, generate_stream


def default_delay_model() -> DelayModel:
    """The evaluation's reference delay mix: fast path + heavy tail."""
    return MixtureDelay(
        [(0.9, ExponentialDelay(0.2)), (0.1, ParetoDelay(shape=1.8, scale=1.0))]
    )


@dataclass
class WorkloadSpec:
    """A reproducible synthetic workload."""

    duration: float = 240.0
    rate: float = 100.0
    seed: int = 42
    delay_model: DelayModel = field(default_factory=default_delay_model)
    value_process: ValueProcess | None = None
    keys: tuple | None = None

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Shrink/grow the workload duration (benchmarks run scaled down)."""
        if scale <= 0:
            raise ExperimentError(f"scale must be positive, got {scale}")
        return WorkloadSpec(
            duration=self.duration * scale,
            rate=self.rate,
            seed=self.seed,
            delay_model=self.delay_model,
            value_process=self.value_process,
            keys=self.keys,
        )

    def build(self) -> list[StreamElement]:
        """Materialize the arrival-ordered stream from the spec's seed."""
        rng = np.random.default_rng(self.seed)
        values = self.value_process if self.value_process is not None else UniformValues(0.0, 1.0)
        in_order = generate_stream(
            duration=self.duration,
            rate=self.rate,
            rng=rng,
            value_process=values,
            keys=self.keys,
        )
        return inject_disorder(in_order, self.delay_model, rng)


@dataclass
class PolicyRun:
    """Everything measured for one (policy, workload, query) combination."""

    name: str
    output: RunOutput
    report: QualityReport
    latency: LatencySummary
    handler: DisorderHandler
    final_slack: float
    max_buffered: int

    @property
    def mean_error(self) -> float:
        return self.report.mean_error

    @property
    def mean_latency(self) -> float:
        return self.latency.mean


def make_policy(name: str, aggregate: AggregateFunction, window_size: float, **params):
    """Named policy factory used across experiments.

    Known names: ``no-buffer``, ``k-slack`` (param ``k``), ``mp-k-slack``,
    ``watermark-heuristic`` (param ``delay_quantile``), ``aq-k`` (param
    ``theta`` plus optional AQK kwargs), ``aq-k-budget`` (param ``budget``).
    """
    if name == "no-buffer":
        return NoBufferHandler()
    if name == "k-slack":
        return KSlackHandler(params["k"])
    if name == "mp-k-slack":
        return MPKSlackHandler()
    if name == "watermark-heuristic":
        return HeuristicWatermarkHandler(
            delay_quantile=params.get("delay_quantile", 0.95)
        )
    if name == "aq-k":
        theta = params.pop("theta")
        return AQKSlackHandler(
            target=QualityTarget(theta),
            aggregate=aggregate,
            window_size=window_size,
            **params,
        )
    if name == "aq-k-budget":
        budget = params.pop("budget")
        return AQKSlackHandler(
            target=LatencyBudget(budget),
            aggregate=aggregate,
            window_size=window_size,
            **params,
        )
    raise ExperimentError(f"unknown policy {name!r}")


def run_policy(
    stream: list[StreamElement],
    assigner: WindowAssigner,
    aggregate: AggregateFunction | str,
    handler: DisorderHandler,
    threshold: float | None = None,
    oracle: dict | None = None,
    name: str | None = None,
    keep_scores: bool = False,
    sample_every: int = 0,
) -> PolicyRun:
    """Run one policy over a stream; score against the oracle."""
    if isinstance(aggregate, str):
        aggregate = make_aggregate(aggregate)
    operator = WindowAggregateOperator(assigner, aggregate, handler)
    output = run_pipeline(stream, operator, sample_every=sample_every)
    if oracle is None:
        oracle = oracle_results(stream, assigner, aggregate)
    report = assess_quality(
        output.results, oracle, threshold=threshold, keep_scores=keep_scores
    )
    return PolicyRun(
        name=name if name is not None else handler.describe(),
        output=output,
        report=report,
        latency=output.latency_summary(),
        handler=handler,
        final_slack=handler.current_slack,
        max_buffered=handler.max_buffered_count(),
    )


def sweep(
    values: list,
    runner: Callable[[object], PolicyRun],
) -> list[tuple[object, PolicyRun]]:
    """Run one policy per sweep value."""
    return [(value, runner(value)) for value in values]


def standard_query(window: float = 10.0, slide: float = 2.0) -> SlidingWindowAssigner:
    """The evaluation's default query window."""
    return SlidingWindowAssigner(size=window, slide=slide)


def workload_summary(stream: list[StreamElement]) -> str:
    """One-line description of the stream's disorder, for table notes."""
    stats = measure_disorder(stream)
    return (
        f"n={stats.n_elements}, ooo={stats.out_of_order_fraction:.1%}, "
        f"delay p50/p95/p99={stats.p50_delay:.2f}/{stats.p95_delay:.2f}/"
        f"{stats.p99_delay:.2f}s, max={stats.max_delay:.1f}s"
    )
