"""The reconstructed evaluation suite: one function per table/figure.

Each ``eNN_*`` function reproduces the corresponding experiment from
DESIGN.md and returns an :class:`~repro.bench.report.ExperimentResult`
holding the same rows/series the paper-style table or figure would show.
``scale`` shrinks the workload duration so the pytest-benchmark targets
stay fast; running this module as a script executes experiments at full
scale::

    python -m repro.bench.experiments E3 E6
    python -m repro.bench.experiments all --scale 0.5
"""

from __future__ import annotations

import os
import sys
from statistics import median
from typing import Any, Callable, Sequence

import numpy as np

from repro.bench.harness import (
    PolicyRun,
    WorkloadSpec,
    default_delay_model,
    make_policy,
    run_policy,
    standard_query,
    workload_summary,
)
from repro.bench.report import ExperimentResult, render_table
from repro.core.aqk import AQKSlackHandler
from repro.core.controller import (
    AIMDController,
    NoFeedbackController,
    PIController,
    PureFeedbackController,
)
from repro.core.estimators import NaiveModel
from repro.core.quality import assess_quality, error_timeline
from repro.core.sampling import ReservoirSample, SlidingDelaySample
from repro.core.shared import SharedAQKBuffer, run_shared
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.errors import ExperimentError
from repro.streams.delay import BurstyDelay, ExponentialDelay, MixtureDelay, ParetoDelay
from repro.streams.disorder import measure_disorder
from repro.workloads.financial import financial_ticks
from repro.workloads.sensors import sensor_readings
from repro.workloads.soccer import soccer_positions

THETA_DEFAULT = 0.05


# --------------------------------------------------------------------- #
# E1 / E2: the static tradeoff curves


def e01_latency_vs_k(scale: float = 1.0) -> ExperimentResult:
    """Figure E1: result latency grows with the slack K."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    result = ExperimentResult(
        experiment_id="E1",
        title="Result latency vs slack K (fixed K-slack, sliding 10s/2s, mean)",
        columns=["k", "mean_latency", "p95_latency", "max_buffered"],
        notes=[workload_summary(stream)],
    )
    for k in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        run = run_policy(
            stream, assigner, "mean", make_policy("k-slack", make_aggregate("mean"), 10.0, k=k)
        )
        result.add_row(
            k=k,
            mean_latency=run.latency.mean,
            p95_latency=run.latency.p95,
            max_buffered=run.max_buffered,
        )
    return result


def e02_error_vs_k(scale: float = 1.0) -> ExperimentResult:
    """Figure E2: result error falls with the slack K (quality side)."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    result = ExperimentResult(
        experiment_id="E2",
        title="Result error vs slack K (fixed K-slack, sliding 10s/2s, count)",
        columns=["k", "mean_error", "p95_error", "violation_fraction", "recall"],
        notes=[workload_summary(stream), f"violations at theta={THETA_DEFAULT}"],
    )
    for k in (0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("k-slack", aggregate, 10.0, k=k),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.add_row(
            k=k,
            mean_error=run.report.mean_error,
            p95_error=run.report.p95_error,
            violation_fraction=run.report.violation_fraction,
            recall=run.report.window_recall,
        )
    return result


# --------------------------------------------------------------------- #
# E3: headline comparison


def e03_headline(scale: float = 1.0) -> ExperimentResult:
    """Table E3: AQ-K vs baselines at equal quality targets."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    stats = measure_disorder(stream)

    policies = [
        ("no-buffer", {}),
        ("watermark-heuristic", {"delay_quantile": 0.95}),
        ("k-slack", {"k": stats.p95_delay}),
        ("mp-k-slack", {}),
        ("aq-k", {"theta": 0.05}),
        ("aq-k", {"theta": 0.01}),
    ]
    result = ExperimentResult(
        experiment_id="E3",
        title="Headline: policies at quality targets (count, sliding 10s/2s)",
        columns=[
            "policy",
            "target",
            "mean_error",
            "violation_fraction",
            "mean_latency",
            "p95_latency",
            "final_slack",
            "max_buffered",
        ],
        notes=[workload_summary(stream)],
    )
    for name, params in policies:
        theta = params.get("theta", THETA_DEFAULT)
        label = name if "theta" not in params else f"{name}(theta={params['theta']})"
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy(name, aggregate, 10.0, **dict(params)),
            threshold=theta,
            oracle=oracle,
            name=label,
        )
        result.add_row(
            policy=label,
            target=theta if name == "aq-k" else None,
            mean_error=run.report.mean_error,
            violation_fraction=run.report.violation_fraction,
            mean_latency=run.latency.mean,
            p95_latency=run.latency.p95,
            final_slack=run.final_slack,
            max_buffered=run.max_buffered,
        )
    return result


# --------------------------------------------------------------------- #
# E4: adaptation under a delay burst


def burst_workload(scale: float = 1.0, seed: int = 42) -> WorkloadSpec:
    """Calm -> burst -> calm delay workload used by E4/E13/E14."""
    duration = 300.0 * scale
    return WorkloadSpec(
        duration=duration,
        rate=100.0,
        seed=seed,
        delay_model=BurstyDelay(
            calm=ExponentialDelay(0.1),
            burst=ExponentialDelay(3.0),
            burst_start=duration / 3,
            burst_end=2 * duration / 3,
        ),
    )


def e04_burst_adaptation(scale: float = 1.0) -> ExperimentResult:
    """Figure E4: K(t), error(t), latency(t) across a delay burst."""
    spec = burst_workload(scale)
    stream = spec.build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    handler = make_policy("aq-k", aggregate, 10.0, theta=THETA_DEFAULT)
    run = run_policy(
        stream,
        assigner,
        make_aggregate("count"),
        handler,
        threshold=THETA_DEFAULT,
        oracle=oracle,
        keep_scores=True,
    )
    bucket = spec.duration / 10
    error_buckets = dict(error_timeline(run.report, bucket))
    latency_buckets: dict[int, list[float]] = {}
    for score in run.report.scores:
        if not np.isnan(score.latency):
            latency_buckets.setdefault(int(score.window.end // bucket), []).append(
                score.latency
            )
    slack_buckets: dict[int, list[float]] = {}
    for record in handler.adaptations:
        slack_buckets.setdefault(int(record.arrival_time // bucket), []).append(
            record.k_applied
        )

    result = ExperimentResult(
        experiment_id="E4",
        title="Adaptation timeline across a delay burst (AQ-K, theta=0.05)",
        columns=["t", "slack", "mean_error", "mean_latency"],
        notes=[
            workload_summary(stream),
            f"burst in [{spec.delay_model.burst_start:g}, "
            f"{spec.delay_model.burst_end:g})s",
        ],
    )
    for index in range(10):
        t = index * bucket
        slacks = slack_buckets.get(index, [])
        latencies = latency_buckets.get(index, [])
        result.add_row(
            t=t,
            slack=float(np.median(slacks)) if slacks else None,
            mean_error=error_buckets.get(t),
            mean_latency=float(np.mean(latencies)) if latencies else None,
        )
    return result


# --------------------------------------------------------------------- #
# E5: per-aggregate error models vs the naive model


def e05_aggregates(scale: float = 1.0) -> ExperimentResult:
    """Table E5: error-model fidelity across aggregate functions."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    result = ExperimentResult(
        experiment_id="E5",
        title="Aggregates under AQ-K (theta=0.05): tuned vs naive error model",
        columns=[
            "aggregate",
            "model_error",
            "model_latency",
            "naive_error",
            "naive_latency",
        ],
        notes=[workload_summary(stream), "naive model: error = late fraction"],
    )
    for name in ("count", "sum", "mean", "max", "median", "p95", "distinct"):
        aggregate = make_aggregate(name)
        oracle = oracle_results(stream, assigner, aggregate)
        tuned = run_policy(
            stream,
            assigner,
            make_aggregate(name),
            AQKSlackHandler(
                target=QualityTarget(THETA_DEFAULT),
                aggregate=aggregate,
                window_size=10.0,
            ),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        naive = run_policy(
            stream,
            assigner,
            make_aggregate(name),
            AQKSlackHandler(
                target=QualityTarget(THETA_DEFAULT),
                aggregate=NaiveModel(),
                window_size=10.0,
            ),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.add_row(
            aggregate=name,
            model_error=tuned.report.mean_error,
            model_latency=tuned.latency.mean,
            naive_error=naive.report.mean_error,
            naive_latency=naive.latency.mean,
        )
    return result


# --------------------------------------------------------------------- #
# E6: quality-target sweep


def e06_theta_sweep(scale: float = 1.0) -> ExperimentResult:
    """Figure E6: achieved latency as the quality target loosens."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    result = ExperimentResult(
        experiment_id="E6",
        title="Quality-target sweep (AQ-K, count, sliding 10s/2s)",
        columns=["theta", "mean_error", "violation_fraction", "mean_latency", "final_slack"],
        notes=[workload_summary(stream)],
    )
    for theta in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2):
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("aq-k", aggregate, 10.0, theta=theta),
            threshold=theta,
            oracle=oracle,
        )
        result.add_row(
            theta=theta,
            mean_error=run.report.mean_error,
            violation_fraction=run.report.violation_fraction,
            mean_latency=run.latency.mean,
            final_slack=run.final_slack,
        )
    return result


# --------------------------------------------------------------------- #
# E7: disorder-intensity sweep


def e07_disorder_sweep(scale: float = 1.0) -> ExperimentResult:
    """Figure E7: AQ-K vs conservative baseline as tails get heavier."""
    assigner = standard_query()
    aggregate = make_aggregate("count")
    result = ExperimentResult(
        experiment_id="E7",
        title="Disorder-intensity sweep: Pareto tail shape (smaller = heavier)",
        columns=[
            "shape",
            "ooo_fraction",
            "aqk_error",
            "aqk_latency",
            "mpk_latency",
            "latency_saving",
        ],
        notes=["10% of delays Pareto(shape, scale=1); 90% exp(0.2)"],
    )
    for shape in (3.0, 2.2, 1.8, 1.4, 1.1):
        spec = WorkloadSpec(
            delay_model=MixtureDelay(
                [
                    (0.9, ExponentialDelay(0.2)),
                    (0.1, ParetoDelay(shape=shape, scale=1.0)),
                ]
            )
        ).scaled(scale)
        stream = spec.build()
        oracle = oracle_results(stream, assigner, aggregate)
        stats = measure_disorder(stream)
        aqk = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("aq-k", aggregate, 10.0, theta=THETA_DEFAULT),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        mpk = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("mp-k-slack", aggregate, 10.0),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        saving = (
            mpk.latency.mean / aqk.latency.mean if aqk.latency.mean > 0 else float("nan")
        )
        result.add_row(
            shape=shape,
            ooo_fraction=stats.out_of_order_fraction,
            aqk_error=aqk.report.mean_error,
            aqk_latency=aqk.latency.mean,
            mpk_latency=mpk.latency.mean,
            latency_saving=saving,
        )
    return result


# --------------------------------------------------------------------- #
# E8: runtime overhead of adaptation


def e08_overhead(scale: float = 1.0) -> ExperimentResult:
    """Table E8: throughput cost of estimation + adaptation."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    result = ExperimentResult(
        experiment_id="E8",
        title="Processing overhead (single-threaded simulated engine)",
        columns=[
            "policy",
            "wall_time_s",
            "throughput_eps",
            "relative_throughput",
            "released",
        ],
        notes=[
            workload_summary(stream),
            "absolute numbers are Python-simulator artifacts; ratios transfer",
            "released = elements the handler let through (rest dropped/held)",
        ],
    )
    baseline_eps = None
    for name, params in [
        ("no-buffer", {}),
        ("k-slack", {"k": 1.0}),
        ("aq-k", {"theta": THETA_DEFAULT}),
    ]:
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy(name, aggregate, 10.0, **dict(params)),
        )
        eps = run.output.metrics.throughput_eps
        if baseline_eps is None:
            baseline_eps = eps
        result.add_row(
            policy=name,
            wall_time_s=run.output.metrics.wall_time_s,
            throughput_eps=eps,
            relative_throughput=eps / baseline_eps,
            released=run.output.metrics.released_count,
        )
    return result


# --------------------------------------------------------------------- #
# E9: latency-budget mode


def e09_latency_budget(scale: float = 1.0) -> ExperimentResult:
    """Table E9: quality maximized under a latency budget."""
    stream = WorkloadSpec().scaled(scale).build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    result = ExperimentResult(
        experiment_id="E9",
        title="Latency-budget mode (AQ-K, count)",
        columns=["budget", "final_slack", "mean_error", "mean_latency", "p95_latency"],
        notes=[workload_summary(stream)],
    )
    for budget in (0.25, 0.5, 1.0, 2.0, 4.0, 8.0):
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("aq-k-budget", aggregate, 10.0, budget=budget),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.add_row(
            budget=budget,
            final_slack=run.final_slack,
            mean_error=run.report.mean_error,
            mean_latency=run.latency.mean,
            p95_latency=run.latency.p95,
        )
    return result


# --------------------------------------------------------------------- #
# E10: window/slide sensitivity


def e10_window_sweep(scale: float = 1.0) -> ExperimentResult:
    """Table E10: sensitivity to window and slide parameters."""
    stream = WorkloadSpec().scaled(scale).build()
    aggregate = make_aggregate("count")
    result = ExperimentResult(
        experiment_id="E10",
        title="Window/slide sweep (AQ-K, count, theta=0.05)",
        columns=["window", "slide", "mean_error", "violation_fraction", "mean_latency"],
        notes=[workload_summary(stream)],
    )
    for window, slide in ((2.0, 1.0), (5.0, 1.0), (10.0, 2.0), (30.0, 5.0), (60.0, 10.0)):
        assigner = SlidingWindowAssigner(size=window, slide=slide)
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            make_policy("aq-k", aggregate, window, theta=THETA_DEFAULT),
            threshold=THETA_DEFAULT,
        )
        result.add_row(
            window=window,
            slide=slide,
            mean_error=run.report.mean_error,
            violation_fraction=run.report.violation_fraction,
            mean_latency=run.latency.mean,
        )
    return result


# --------------------------------------------------------------------- #
# E11: shared multi-query execution


def e11_multiquery(scale: float = 1.0) -> ExperimentResult:
    """Table E11: one shared buffer vs per-query buffers."""
    spec = WorkloadSpec().scaled(scale)
    stream = spec.build()
    assigner = standard_query()
    aggregate_name = "count"
    thetas = [0.01, 0.02, 0.05, 0.2]
    truth = oracle_results(stream, assigner, make_aggregate(aggregate_name))

    # Shared execution.
    buffer = SharedAQKBuffer()
    operators = {}
    for theta in thetas:
        qid = f"q{theta}"
        handler = buffer.register(
            qid,
            target=QualityTarget(theta),
            aggregate=make_aggregate(aggregate_name),
            window_size=10.0,
        )
        operators[qid] = WindowAggregateOperator(
            standard_query(), make_aggregate(aggregate_name), handler
        )
    shared_results = run_shared(stream, buffer, operators)

    result = ExperimentResult(
        experiment_id="E11",
        title="Shared buffer vs private buffers (4 concurrent count queries)",
        columns=[
            "theta",
            "shared_error",
            "shared_latency",
            "private_error",
            "private_latency",
        ],
        notes=[workload_summary(stream)],
    )

    private_peak = 0
    for theta in thetas:
        qid = f"q{theta}"
        shared_report = assess_quality(shared_results[qid], truth, threshold=theta)
        shared_latencies = [r.latency for r in shared_results[qid] if not r.flushed]
        shared_latency = (
            np.mean(shared_latencies) if shared_latencies else float("nan")
        )
        private = run_policy(
            stream,
            assigner,
            make_aggregate(aggregate_name),
            AQKSlackHandler(
                target=QualityTarget(theta),
                aggregate=make_aggregate(aggregate_name),
                window_size=10.0,
            ),
            threshold=theta,
            oracle=truth,
        )
        private_peak += private.max_buffered
        result.add_row(
            theta=theta,
            shared_error=shared_report.mean_error,
            shared_latency=float(shared_latency),
            private_error=private.report.mean_error,
            private_latency=private.latency.mean,
        )
    result.notes.append(
        f"peak buffered elements: shared={buffer.max_buffered}, "
        f"sum of private={private_peak}"
    )
    return result


# --------------------------------------------------------------------- #
# E12: domain workloads end-to-end


def e12_workloads(scale: float = 1.0) -> ExperimentResult:
    """Table E12: AQ-K on the three simulated domain workloads."""
    rng_seed = 42
    duration = 180.0 * scale
    cases = [
        (
            "financial",
            financial_ticks(
                duration=duration, rate=150, rng=np.random.default_rng(rng_seed)
            ),
            "mean",
        ),
        (
            "sensors",
            sensor_readings(
                duration=duration, rate=100, rng=np.random.default_rng(rng_seed)
            ),
            "mean",
        ),
        (
            "soccer",
            soccer_positions(
                duration=duration, rate=200, rng=np.random.default_rng(rng_seed)
            ),
            "max",
        ),
    ]
    result = ExperimentResult(
        experiment_id="E12",
        title="Domain workloads (AQ-K theta=0.05 vs no-buffer)",
        columns=[
            "workload",
            "aggregate",
            "aqk_error",
            "aqk_latency",
            "nobuf_error",
            "nobuf_latency",
        ],
    )
    for name, stream, aggregate_name in cases:
        aggregate = make_aggregate(aggregate_name)
        assigner = standard_query()
        oracle = oracle_results(stream, assigner, aggregate)
        aqk = run_policy(
            stream,
            assigner,
            make_aggregate(aggregate_name),
            make_policy("aq-k", aggregate, 10.0, theta=THETA_DEFAULT),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        nobuf = run_policy(
            stream,
            assigner,
            make_aggregate(aggregate_name),
            make_policy("no-buffer", aggregate, 10.0),
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.notes.append(f"{name}: {workload_summary(stream)}")
        result.add_row(
            workload=name,
            aggregate=aggregate_name,
            aqk_error=aqk.report.mean_error,
            aqk_latency=aqk.latency.mean,
            nobuf_error=nobuf.report.mean_error,
            nobuf_latency=nobuf.latency.mean,
        )
    return result


# --------------------------------------------------------------------- #
# E13 / E14: ablations


def e13_ablation_controller(scale: float = 1.0) -> ExperimentResult:
    """Table E13: controller ablation on the burst workload."""
    spec = burst_workload(scale)
    stream = spec.build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    controllers = [
        ("estimator-only", NoFeedbackController()),
        ("estimator+pi", PIController(target=THETA_DEFAULT)),
        ("estimator+aimd", AIMDController(target=THETA_DEFAULT)),
        ("feedback-only", PureFeedbackController(target=THETA_DEFAULT)),
    ]
    result = ExperimentResult(
        experiment_id="E13",
        title="Controller ablation (burst workload, count, theta=0.05)",
        columns=["controller", "mean_error", "violation_fraction", "mean_latency"],
        notes=[workload_summary(stream)],
    )
    for name, controller in controllers:
        handler = AQKSlackHandler(
            target=QualityTarget(THETA_DEFAULT),
            aggregate=make_aggregate("count"),
            window_size=10.0,
            controller=controller,
        )
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            handler,
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.add_row(
            controller=name,
            mean_error=run.report.mean_error,
            violation_fraction=run.report.violation_fraction,
            mean_latency=run.latency.mean,
        )
    return result


def e14_ablation_sampling(scale: float = 1.0) -> ExperimentResult:
    """Table E14: delay-sampler ablation under non-stationary delays."""
    spec = burst_workload(scale)
    stream = spec.build()
    assigner = standard_query()
    aggregate = make_aggregate("count")
    oracle = oracle_results(stream, assigner, aggregate)
    samplers = [
        ("sliding", SlidingDelaySample(capacity=2000)),
        ("reservoir", ReservoirSample(capacity=2000)),
    ]
    result = ExperimentResult(
        experiment_id="E14",
        title="Delay-sampler ablation (burst workload, count, theta=0.05)",
        columns=["sampler", "mean_error", "violation_fraction", "mean_latency", "final_slack"],
        notes=[
            workload_summary(stream),
            "reservoir keeps burst delays forever: over-buffers after the burst",
        ],
    )
    for name, sampler in samplers:
        handler = AQKSlackHandler(
            target=QualityTarget(THETA_DEFAULT),
            aggregate=make_aggregate("count"),
            window_size=10.0,
            delay_sample=sampler,
        )
        run = run_policy(
            stream,
            assigner,
            make_aggregate("count"),
            handler,
            threshold=THETA_DEFAULT,
            oracle=oracle,
        )
        result.add_row(
            sampler=name,
            mean_error=run.report.mean_error,
            violation_fraction=run.report.violation_fraction,
            mean_latency=run.latency.mean,
            final_slack=run.final_slack,
        )
    return result


# --------------------------------------------------------------------- #
# E15: quality-driven joins


def e15_join_quality(scale: float = 1.0) -> ExperimentResult:
    """Table E15: pair recall vs latency for interval joins under disorder."""
    from repro.core.join_quality import (
        QualityDrivenIntervalJoin,
        join_recall,
        run_join,
    )
    from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
    from repro.engine.join import IntervalJoinOperator, oracle_join_pairs
    from repro.streams.element import StreamElement
    from repro.streams.generators import generate_stream
    from repro.streams.disorder import inject_disorder

    rng = np.random.default_rng(42)
    base = generate_stream(
        duration=240.0 * scale, rate=120, rng=rng, keys=("a", "b", "c")
    )
    signed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 2 == 0 else -1.0),
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    stream = inject_disorder(signed, default_delay_model(), rng)

    def side_of(element: StreamElement) -> str:
        return "left" if element.value >= 0 else "right"

    bound = 0.5
    truth = oracle_join_pairs(stream, bound, side_of)
    stats = measure_disorder(stream)

    result = ExperimentResult(
        experiment_id="E15",
        title="Interval join (|dt|<=0.5s) under disorder: recall vs slack",
        columns=["policy", "pair_recall", "final_slack", "mean_pair_latency"],
        notes=[workload_summary(stream), f"true pairs: {len(truth)}"],
    )

    def join_for(name):
        if name == "no-buffer":
            return IntervalJoinOperator(bound, NoBufferHandler(), side_of)
        if name == "k-slack(p95)":
            return IntervalJoinOperator(bound, KSlackHandler(stats.p95_delay), side_of)
        if name == "mp-k-slack":
            return IntervalJoinOperator(bound, MPKSlackHandler(), side_of)
        if name == "quality(loss<=0.05)":
            return QualityDrivenIntervalJoin(bound, side_of, threshold=0.05)
        if name == "quality(loss<=0.01)":
            return QualityDrivenIntervalJoin(bound, side_of, threshold=0.01)
        raise ExperimentError(name)

    for name in (
        "no-buffer",
        "k-slack(p95)",
        "mp-k-slack",
        "quality(loss<=0.05)",
        "quality(loss<=0.01)",
    ):
        operator = join_for(name)
        results = run_join(stream, operator)
        latencies = [r.latency for r in results]
        slack = (
            operator.current_slack
            if hasattr(operator, "current_slack")
            else operator.handler.current_slack
        )
        result.add_row(
            policy=name,
            pair_recall=join_recall(results, truth),
            final_slack=slack,
            mean_pair_latency=float(np.mean(latencies)) if latencies else None,
        )
    return result


# --------------------------------------------------------------------- #
# E16: sequence patterns (CEP) under disorder


def e16_pattern_quality(scale: float = 1.0) -> ExperimentResult:
    """Table E16: A-then-B match recall across disorder-handling policies.

    Sequence patterns are the extreme of disorder sensitivity: one late
    event deletes an entire match.  The table contrasts the zero-latency
    baseline, fixed slacks sized at delay quantiles, and the conservative
    max-delay policy.
    """
    from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
    from repro.engine.pattern import (
        SequencePatternOperator,
        oracle_pattern_matches,
        pattern_recall,
    )
    from repro.streams.element import StreamElement
    from repro.streams.generators import generate_stream
    from repro.streams.disorder import inject_disorder

    rng = np.random.default_rng(42)
    base = generate_stream(
        duration=240.0 * scale, rate=120, rng=rng, keys=("x", "y", "z")
    )
    typed = [
        StreamElement(
            event_time=el.event_time,
            value=(1.0 if i % 3 else -1.0),  # one third are B events
            key=el.key,
            seq=el.seq,
        )
        for i, el in enumerate(base)
    ]
    stream = inject_disorder(typed, default_delay_model(), rng)

    def is_a(element):
        return element.value > 0

    def is_b(element):
        return element.value < 0

    within = 1.0
    truth = oracle_pattern_matches(stream, is_a, is_b, within)
    stats = measure_disorder(stream)

    result = ExperimentResult(
        experiment_id="E16",
        title="Sequence pattern 'A then B within 1s': recall vs slack",
        columns=["policy", "match_recall", "slack", "mean_match_latency"],
        notes=[workload_summary(stream), f"true matches: {len(truth)}"],
    )
    from repro.core.pattern_quality import QualityDrivenSequencePattern

    def fixed(handler):
        return SequencePatternOperator(is_a, is_b, within=within, handler=handler)

    policies = [
        ("no-buffer", fixed(NoBufferHandler())),
        ("k-slack(p50)", fixed(KSlackHandler(stats.p50_delay))),
        ("k-slack(p95)", fixed(KSlackHandler(stats.p95_delay))),
        ("k-slack(p99)", fixed(KSlackHandler(stats.p99_delay))),
        ("mp-k-slack", fixed(MPKSlackHandler())),
        (
            "quality(loss<=0.05)",
            QualityDrivenSequencePattern(is_a, is_b, within=within, threshold=0.05),
        ),
        (
            "quality(loss<=0.01)",
            QualityDrivenSequencePattern(is_a, is_b, within=within, threshold=0.01),
        ),
    ]
    for name, operator in policies:
        matches = []
        for element in stream:
            matches.extend(operator.process(element))
        matches.extend(operator.finish())
        latencies = [m.latency for m in matches]
        slack = (
            operator.current_slack
            if hasattr(operator, "current_slack")
            else operator.handler.current_slack
        )
        result.add_row(
            policy=name,
            match_recall=pattern_recall(matches, truth),
            slack=slack,
            mean_match_latency=float(np.mean(latencies)) if latencies else None,
        )
    return result


# --------------------------------------------------------------------- #
# E17: execution-path ablation (naive vs sliced window evaluation)


def e17_sliced_execution(scale: float = 1.0) -> ExperimentResult:
    """Table E17: slice-based execution — same results, higher throughput.

    The win grows with window overlap (size/slide), so the table sweeps
    the overlap factor.
    """
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.sliced_op import SlicedWindowAggregateOperator
    from repro.engine.handlers import KSlackHandler

    stream = WorkloadSpec().scaled(scale).build()
    result = ExperimentResult(
        experiment_id="E17",
        title="Naive vs sliced window execution (mean, K-slack 1s)",
        columns=[
            "overlap",
            "naive_eps",
            "sliced_eps",
            "speedup",
            "results_equal",
        ],
        notes=[workload_summary(stream), "overlap = window size / slide"],
    )
    for window, slide in ((10.0, 10.0), (10.0, 2.0), (10.0, 1.0), (20.0, 1.0)):
        assigner = SlidingWindowAssigner(size=window, slide=slide)
        naive = WindowAggregateOperator(
            assigner, make_aggregate("mean"), KSlackHandler(1.0), track_feedback=False
        )
        sliced = SlicedWindowAggregateOperator(
            assigner, make_aggregate("mean"), KSlackHandler(1.0), track_feedback=False
        )
        naive_out = run_pipeline(stream, naive)
        sliced_out = run_pipeline(stream, sliced)
        naive_map = {
            (r.key, r.window): round(r.value, 9) for r in naive_out.results
        }
        sliced_map = {
            (r.key, r.window): round(r.value, 9) for r in sliced_out.results
        }
        result.add_row(
            overlap=window / slide,
            naive_eps=naive_out.metrics.throughput_eps,
            sliced_eps=sliced_out.metrics.throughput_eps,
            speedup=sliced_out.metrics.throughput_eps
            / naive_out.metrics.throughput_eps,
            results_equal=naive_map == sliced_map,
        )
    return result


# --------------------------------------------------------------------- #
# E18: batched execution throughput


def e18_batched_throughput(scale: float = 1.0) -> ExperimentResult:
    """Table E18: batched vs scalar execution — same results, higher eps.

    Drives the same operators through ``run_pipeline(batch_size=512)`` and
    the scalar path on the E17 overlap-20 workload (sliding 20s/1s, mean,
    K-slack 1s) plus an adaptive AQ-K row; per-element simulated-time
    semantics are identical, so ``results_equal`` is checked in-table.
    """
    from repro.engine.handlers import KSlackHandler
    from repro.engine.sliced_op import SlicedWindowAggregateOperator

    stream = WorkloadSpec().scaled(scale).build()
    assigner = SlidingWindowAssigner(size=20.0, slide=1.0)
    result = ExperimentResult(
        experiment_id="E18",
        title="Scalar vs batched execution (sliding 20s/1s, mean, batch 512)",
        columns=[
            "operator",
            "scalar_eps",
            "batched_eps",
            "speedup",
            "results_equal",
        ],
        notes=[
            workload_summary(stream),
            "batched path uses process_many / offer_many / add_many bulk APIs",
        ],
    )

    def make_ops():
        return [
            (
                "naive",
                lambda: WindowAggregateOperator(
                    assigner,
                    make_aggregate("mean"),
                    KSlackHandler(1.0),
                    track_feedback=False,
                ),
            ),
            (
                "sliced",
                lambda: SlicedWindowAggregateOperator(
                    assigner,
                    make_aggregate("mean"),
                    KSlackHandler(1.0),
                    track_feedback=False,
                ),
            ),
            (
                "naive+aq-k",
                lambda: WindowAggregateOperator(
                    assigner,
                    make_aggregate("mean"),
                    AQKSlackHandler(
                        QualityTarget(THETA_DEFAULT), "mean", window_size=20.0
                    ),
                ),
            ),
        ]

    def best_of(make_op, batch_size, repeats=2):
        best = None
        for __ in range(repeats):
            out = run_pipeline(stream, make_op(), batch_size=batch_size)
            if best is None or out.metrics.wall_time_s < best.metrics.wall_time_s:
                best = out
        return best

    for name, make_op in make_ops():
        scalar = best_of(make_op, 0)
        batched = best_of(make_op, 512)
        scalar_map = {
            (r.key, r.window): round(r.value, 9) for r in scalar.results
        }
        batched_map = {
            (r.key, r.window): round(r.value, 9) for r in batched.results
        }
        result.add_row(
            operator=name,
            scalar_eps=scalar.metrics.throughput_eps,
            batched_eps=batched.metrics.throughput_eps,
            speedup=batched.metrics.throughput_eps
            / scalar.metrics.throughput_eps,
            results_equal=scalar_map == batched_map
            and len(scalar.results) == len(batched.results),
        )
    return result


# --------------------------------------------------------------------- #
# E19: partial-aggregate tree execution and shared slices


def e19_tree_execution(scale: float = 1.0) -> ExperimentResult:
    """Table E19: tree execution vs naive/sliced, plus shared slices.

    Two sections in one table.  The *overlap sweep* (``overlap=N`` rows)
    holds the slide at 0.125s and grows the window, so per-close cost
    dominates: the naive operator folds every element into ``overlap``
    windows, the sliced operator merges an ``overlap``-long slice chain
    per close, and the tree merges O(log overlap) cached partials.  The
    *multi-query* row runs four concurrent AQ-K count queries (the E11
    workload) three ways — one naive pipeline per query (what E11
    measures today), one tree pipeline per query, and a single
    :class:`~repro.engine.partial_tree.SharedSliceStore` — with eps
    counting each element once per query it serves.
    """
    import time

    from repro.engine.handlers import KSlackHandler
    from repro.engine.partial_tree import (
        SharedSliceStore,
        TreeWindowAggregateOperator,
        run_shared_slices,
    )
    from repro.engine.sliced_op import SlicedWindowAggregateOperator

    stream = WorkloadSpec().scaled(scale).build()
    slide = 0.125
    result = ExperimentResult(
        experiment_id="E19",
        title="Tree execution and shared slices (count, K-slack 1s)",
        columns=[
            "config",
            "naive_eps",
            "sliced_eps",
            "tree_eps",
            "tree_over_sliced",
            "shared_eps",
            "shared_over_naive",
            "results_equal",
        ],
        notes=[
            workload_summary(stream),
            "overlap rows: sliding (overlap*0.125s)/0.125s windows, "
            "feedback off; tree_over_sliced = tree_eps / sliced_eps",
            "multi-query row: four AQ-K count queries on the E11 workload; "
            "eps counts each element once per query; shared_over_naive = "
            "shared_eps / naive_eps (naive = one pipeline per query)",
        ],
    )

    def result_map(results):
        return {(r.key, r.window): round(r.value, 9) for r in results}

    for overlap in (8, 64, 256):
        assigner = SlidingWindowAssigner(size=overlap * slide, slide=slide)
        operators = {
            "naive": WindowAggregateOperator(
                assigner,
                make_aggregate("count"),
                KSlackHandler(1.0),
                track_feedback=False,
            ),
            "sliced": SlicedWindowAggregateOperator(
                assigner,
                make_aggregate("count"),
                KSlackHandler(1.0),
                track_feedback=False,
            ),
            "tree": TreeWindowAggregateOperator(
                assigner,
                make_aggregate("count"),
                KSlackHandler(1.0),
                track_feedback=False,
            ),
        }
        outputs = {
            name: run_pipeline(stream, operator)
            for name, operator in operators.items()
        }
        maps = {name: result_map(out.results) for name, out in outputs.items()}
        result.add_row(
            config=f"overlap={overlap}",
            naive_eps=outputs["naive"].metrics.throughput_eps,
            sliced_eps=outputs["sliced"].metrics.throughput_eps,
            tree_eps=outputs["tree"].metrics.throughput_eps,
            tree_over_sliced=outputs["tree"].metrics.throughput_eps
            / outputs["sliced"].metrics.throughput_eps,
            shared_eps=None,
            shared_over_naive=None,
            results_equal=maps["naive"] == maps["sliced"] == maps["tree"],
        )

    # Multi-query section: the E11 workload (four concurrent AQ-K count
    # queries over the standard 10s/2s window) served three ways.
    thetas = [0.01, 0.02, 0.05, 0.2]
    window_size, mq_slide = 10.0, 2.0
    aggregate_name = "count"

    def aqk(theta):
        return AQKSlackHandler(
            target=QualityTarget(theta),
            aggregate=make_aggregate(aggregate_name),
            window_size=window_size,
        )

    def independent(make_operator):
        outputs = {}
        wall = 0.0
        for theta in thetas:
            out = run_pipeline(stream, make_operator(aqk(theta)))
            wall += out.metrics.wall_time_s
            outputs[theta] = result_map(out.results)
        return outputs, wall

    naive_maps, naive_wall = independent(
        lambda handler: WindowAggregateOperator(
            standard_query(), make_aggregate(aggregate_name), handler
        )
    )
    tree_maps, tree_wall = independent(
        lambda handler: TreeWindowAggregateOperator(
            standard_query(), make_aggregate(aggregate_name), handler
        )
    )

    store = SharedSliceStore(mq_slide, make_aggregate(aggregate_name))
    for theta in thetas:
        store.register(f"q{theta}", window_size, advisor=aqk(theta))
    start = time.perf_counter()
    shared_results = run_shared_slices(stream, store)
    shared_wall = time.perf_counter() - start
    shared_maps = {
        theta: result_map(shared_results[f"q{theta}"]) for theta in thetas
    }

    logical = len(stream) * len(thetas)
    naive_eps = logical / naive_wall
    shared_eps = logical / shared_wall
    result.add_row(
        config=f"multi-query({len(thetas)}xAQ-K)",
        naive_eps=naive_eps,
        sliced_eps=None,
        tree_eps=logical / tree_wall,
        tree_over_sliced=None,
        shared_eps=shared_eps,
        shared_over_naive=shared_eps / naive_eps,
        results_equal=all(
            shared_maps[theta] == tree_maps[theta] == naive_maps[theta]
            for theta in thetas
        ),
    )
    result.notes.append(
        "shared store leak check: "
        f"{store.slice_count()} slices / {store.node_count()} tree nodes "
        "retained after finish (GC should leave 0/0)"
    )
    return result


def _run_timed_configs(
    stream: Sequence[Any],
    configs: Sequence[tuple[str, Callable[[], Any]]],
    repeats: int = 3,
) -> dict[str, tuple[float, list[Any]]]:
    """Throughput methodology shared by the E20/E21 scaling tables.

    One discarded warmup round (imports, allocator warmup, process-pool
    spawn) followed by ``repeats`` timed rounds run *interleaved* across
    configs — like the sanitizer-overhead benchmarks — so slow drift
    (thermal, co-tenant noise) hits every config equally instead of
    biasing whichever ran last.  Per config the **median** eps of the
    timed rounds is reported, which is what keeps the CI gates from
    flaking on noisy runners.

    Args:
        stream: The arrival-ordered element list every run consumes.
        configs: ``(name, operator_factory)`` pairs; factories build a
            fresh operator per run (operators are single-use).
        repeats: Timed rounds per config (median-of-``repeats``).

    Returns:
        ``name -> (median_eps, results)`` with the results of the first
        timed round (identical across rounds for these deterministic
        pipelines).
    """
    for _name, factory in configs:
        run_pipeline(stream, factory())
    eps_samples: dict[str, list[float]] = {name: [] for name, _ in configs}
    results: dict[str, list[Any]] = {}
    for round_index in range(repeats):
        for name, factory in configs:
            output = run_pipeline(stream, factory())
            eps_samples[name].append(output.metrics.throughput_eps)
            if round_index == 0:
                results[name] = output.results
    return {
        name: (float(median(eps_samples[name])), results[name])
        for name, _ in configs
    }


def e20_sharded_throughput(scale: float = 1.0) -> ExperimentResult:
    """Table E20: sharded execution vs single-pipeline sliced/tree.

    A 16-key workload under a high-overlap sliding window (overlap 64:
    8s window, 0.125s slide) — the regime where per-close cost dominates
    and PR 6's tree mode already beats sliced chains.  Sharding routes
    each key to one of N shards, so every shard closes windows over 1/N
    of the keys with its own tree operator; the deterministic merge then
    recombines per-shard windows.  Throughput is wall-clock elements/s
    over the whole run (routing + shard execution + merge).  K is the
    empirical max delay plus epsilon so nothing is late and every config
    is value-comparable (``results_equal`` checks per-group values and
    counts against the single-pipeline sliced run).

    Note on parallelism: the thread-per-shard executor interleaves under
    the GIL, so the speedup measured here is *algorithmic* — per-shard
    operators track fewer concurrent windows and shorter merge chains —
    not core-parallelism.  On free-threaded builds the same seam scales
    with cores.
    """
    from repro.engine.handlers import KSlackHandler
    from repro.engine.parallel import ShardedWindowOperator
    from repro.engine.partial_tree import TreeWindowAggregateOperator
    from repro.engine.sliced_op import SlicedWindowAggregateOperator

    stream = (
        WorkloadSpec(
            delay_model=ExponentialDelay(0.25),
            keys=tuple(f"s{i}" for i in range(16)),
        )
        .scaled(scale)
        .build()
    )
    k = max(e.arrival_time - e.event_time for e in stream) + 1e-6
    slide = 0.125
    assigner = SlidingWindowAssigner(size=64 * slide, slide=slide)
    aggregate_name = "count"

    result = ExperimentResult(
        experiment_id="E20",
        title="Sharded execution vs single pipeline (count, overlap 64)",
        columns=["config", "eps", "speedup_vs_sliced", "results_equal"],
        notes=[
            workload_summary(stream),
            f"16-key workload, sliding {64 * slide:g}s/{slide:g}s window, "
            f"K-slack K={k:.3f}s (max delay + eps: no late drops), "
            "feedback off; sharded rows run tree mode per shard",
            "speedup is algorithmic under the GIL (fewer windows per "
            "shard), not core-parallelism; see docs/SCALING.md",
            "methodology: warmup round + median of 3 interleaved repeats",
        ],
    )

    def result_map(results):
        return {
            (r.key, r.window): (round(r.value, 9), r.count) for r in results
        }

    def make_sliced():
        return SlicedWindowAggregateOperator(
            assigner,
            make_aggregate(aggregate_name),
            KSlackHandler(k),
            track_feedback=False,
        )

    def make_tree():
        return TreeWindowAggregateOperator(
            assigner,
            make_aggregate(aggregate_name),
            KSlackHandler(k),
            track_feedback=False,
        )

    def make_sharded(n_shards):
        def build():
            return ShardedWindowOperator(
                n_shards,
                assigner,
                make_aggregate(aggregate_name),
                lambda: KSlackHandler(k),
                mode="tree",
                track_feedback=False,
            )

        return build

    configs = [("single sliced", make_sliced), ("single tree", make_tree)]
    configs += [
        (f"sharded({n}) tree", make_sharded(n)) for n in (2, 4, 8)
    ]
    timed = _run_timed_configs(stream, configs)
    baseline_eps, baseline_results = timed["single sliced"]
    baseline_map = result_map(baseline_results)
    for name, _factory in configs:
        eps, results = timed[name]
        result.add_row(
            config=name,
            eps=eps,
            speedup_vs_sliced=(
                eps / baseline_eps if name != "single sliced" else None
            ),
            results_equal=(
                result_map(results) == baseline_map
                if name != "single sliced"
                else True
            ),
        )
    return result


def e21_process_throughput(scale: float = 1.0) -> ExperimentResult:
    """Table E21: process-pool shard execution vs threads and single tree.

    The same 16-key, overlap-64 workload as E20, but the sharded configs
    now compare the GIL-bound thread executor against the process pool
    (:class:`~repro.engine.process_pool.ProcessShardExecutor`): chunked
    incremental dispatch onto a warm pool of spawn-started workers, so
    shards compute on real cores in parallel.  Each process config keeps
    one executor alive across the warmup round and all timed repeats —
    the warm-pool amortization the executor is designed around — and its
    eps includes routing, chunk encoding, IPC and the merge.

    ``results_equal`` checks rounded per-group values/counts against the
    single tree baseline; ``identical_to_thread`` checks the process
    run's full result list bit-for-bit against the thread run with the
    same shard count (the executor-independence half of the shard
    contract).  Headline (on a >=4-core runner): process(4) beats the
    single tree; CI gates process(2) >= thread(2).  ``cpu_count`` is
    recorded in the notes so gates can be scoped to runners that can
    physically show parallel speedup.
    """
    from repro.engine.handlers import KSlackHandler
    from repro.engine.parallel import ShardedWindowOperator, ThreadShardExecutor
    from repro.engine.partial_tree import TreeWindowAggregateOperator
    from repro.engine.process_pool import ProcessShardExecutor

    stream = (
        WorkloadSpec(
            delay_model=ExponentialDelay(0.25),
            keys=tuple(f"s{i}" for i in range(16)),
        )
        .scaled(scale)
        .build()
    )
    k = max(e.arrival_time - e.event_time for e in stream) + 1e-6
    slide = 0.125
    assigner = SlidingWindowAssigner(size=64 * slide, slide=slide)
    aggregate_name = "count"
    cpu_count = os.cpu_count() or 1

    result = ExperimentResult(
        experiment_id="E21",
        title="Process-pool shards vs threads vs single tree (overlap 64)",
        columns=[
            "config",
            "eps",
            "speedup_vs_tree",
            "results_equal",
            "identical_to_thread",
        ],
        notes=[
            workload_summary(stream),
            f"16-key workload, sliding {64 * slide:g}s/{slide:g}s window, "
            f"K-slack K={k:.3f}s, tree mode per shard, feedback off",
            "process rows: warm spawn pool, chunked dispatch "
            "(chunk_size=512), eps includes encode+IPC+merge",
            f"cpu_count={cpu_count}",
            "methodology: warmup round + median of 3 interleaved repeats",
        ],
    )

    def make_tree():
        return TreeWindowAggregateOperator(
            assigner,
            make_aggregate(aggregate_name),
            KSlackHandler(k),
            track_feedback=False,
        )

    def make_sharded(n_shards, executor_factory):
        def build():
            return ShardedWindowOperator(
                n_shards,
                assigner,
                make_aggregate(aggregate_name),
                lambda: KSlackHandler(k),
                mode="tree",
                track_feedback=False,
                executor=executor_factory(),
            )

        return build

    shard_counts = (2, 4, 8)
    process_executors = {
        n: ProcessShardExecutor(max_workers=n) for n in shard_counts
    }
    try:
        configs: list[tuple[str, Callable[[], Any]]] = [
            ("single tree", make_tree)
        ]
        for n in shard_counts:
            configs.append(
                (
                    f"thread({n})",
                    make_sharded(n, lambda n=n: ThreadShardExecutor(max_workers=n)),
                )
            )
        for n in shard_counts:
            configs.append(
                (
                    f"process({n})",
                    make_sharded(n, lambda n=n: process_executors[n]),
                )
            )
        timed = _run_timed_configs(stream, configs)
    finally:
        for executor in process_executors.values():
            executor.close()

    def result_map(results):
        return {
            (r.key, r.window): (round(r.value, 9), r.count) for r in results
        }

    def exact(results):
        return [
            (r.key, r.window, float(r.value), r.count, r.emit_time, r.flushed)
            for r in results
        ]

    baseline_eps, baseline_results = timed["single tree"]
    baseline_map = result_map(baseline_results)
    for name, _factory in configs:
        eps, results = timed[name]
        identical = None
        if name.startswith("process("):
            thread_twin = "thread(" + name[len("process("):]
            identical = exact(results) == exact(timed[thread_twin][1])
        result.add_row(
            config=name,
            eps=eps,
            speedup_vs_tree=(
                eps / baseline_eps if name != "single tree" else None
            ),
            results_equal=(
                result_map(results) == baseline_map
                if name != "single tree"
                else True
            ),
            identical_to_thread=identical,
        )
    return result


EXPERIMENTS = {
    "E1": e01_latency_vs_k,
    "E2": e02_error_vs_k,
    "E3": e03_headline,
    "E4": e04_burst_adaptation,
    "E5": e05_aggregates,
    "E6": e06_theta_sweep,
    "E7": e07_disorder_sweep,
    "E8": e08_overhead,
    "E9": e09_latency_budget,
    "E10": e10_window_sweep,
    "E11": e11_multiquery,
    "E12": e12_workloads,
    "E13": e13_ablation_controller,
    "E14": e14_ablation_sampling,
    "E15": e15_join_quality,
    "E16": e16_pattern_quality,
    "E17": e17_sliced_execution,
    "E18": e18_batched_throughput,
    "E19": e19_tree_execution,
    "E20": e20_sharded_throughput,
    "E21": e21_process_throughput,
}


def run_experiment(experiment_id: str, scale: float = 1.0) -> ExperimentResult:
    """Run one experiment by id (``"E3"``)."""
    try:
        function = EXPERIMENTS[experiment_id.upper()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return function(scale=scale)


def main(argv: list[str] | None = None) -> int:
    """Script entry point: render selected experiments as tables."""
    argv = list(sys.argv[1:] if argv is None else argv)
    scale = 1.0
    if "--scale" in argv:
        index = argv.index("--scale")
        scale = float(argv[index + 1])
        del argv[index : index + 2]
    if not argv or argv == ["all"]:
        argv = list(EXPERIMENTS)
    for experiment_id in argv:
        print(render_table(run_experiment(experiment_id, scale=scale)))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
