"""Experiment result containers and paper-style ASCII rendering."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ExperimentError


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    Attributes:
        experiment_id: Stable id from DESIGN.md (``"E3"``).
        title: Human-readable caption.
        columns: Ordered column names; every row must provide each.
        rows: Data rows (dicts keyed by column name).
        notes: Free-form remarks appended below the table.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append one data row; every declared column must be present."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ExperimentError(
                f"{self.experiment_id}: row missing columns {missing}"
            )
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ExperimentError(f"{self.experiment_id}: no column {name!r}")
        return [row[name] for row in self.rows]


def format_value(value) -> str:
    """Render one cell: compact but unambiguous numbers."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf"
        if value != 0 and (abs(value) < 0.001 or abs(value) >= 100000):
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as a boxed ASCII table."""
    header = [str(column) for column in result.columns]
    body = [[format_value(row[column]) for column in result.columns] for row in result.rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body)) if body else len(header[i])
        for i in range(len(header))
    ]

    def line(cells: list[str]) -> str:
        return "| " + " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts = [
        f"{result.experiment_id}: {result.title}",
        separator,
        line(header),
        separator,
    ]
    parts.extend(line(row) for row in body)
    parts.append(separator)
    for note in result.notes:
        parts.append(f"  note: {note}")
    return "\n".join(parts)


def is_monotone(values: list[float], increasing: bool, tolerance: float = 0.0) -> bool:
    """Whether a numeric series is (weakly) monotone up to ``tolerance``.

    Tolerance is relative to the magnitude of the earlier value; used by the
    benchmark shape checks where stochastic noise can ripple a trend.
    """
    for a, b in zip(values, values[1:]):
        slack = tolerance * max(abs(a), 1e-12)
        if increasing and b < a - slack:
            return False
        if not increasing and b > a + slack:
            return False
    return True


def to_csv(result: ExperimentResult, path) -> int:
    """Write an experiment's rows as CSV; returns the number of data rows."""
    import csv
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.columns)
        for row in result.rows:
            writer.writerow([row[column] for column in result.columns])
    return len(result.rows)


def to_json(result: ExperimentResult, path) -> int:
    """Write an experiment (metadata + rows) as JSON; returns row count."""
    import json
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "columns": result.columns,
        "rows": [
            {column: row[column] for column in result.columns}
            for row in result.rows
        ],
        "notes": result.notes,
    }
    path.write_text(json.dumps(payload, indent=2, default=str))
    return len(result.rows)
