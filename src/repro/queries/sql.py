"""A tiny SQL-like dialect for continuous queries.

Continuous-query systems expose a declarative surface; this module parses
a minimal dialect onto the fluent builder::

    SELECT mean(value) FROM stream
    GROUP BY HOP(10, 2)
    WITH QUALITY 0.05

Grammar (keywords case-insensitive)::

    query   := SELECT aggspec FROM ident GROUP BY window [WITH handler]
    aggspec := name [ "(" ("value" | "*") ")" ]
    window  := HOP "(" number "," number ")"     -- sliding(size, slide)
             | TUMBLE "(" number ")"             -- tumbling(size)
    handler := QUALITY number
             | LATENCY BUDGET number
             | SLACK number
             | MAX DELAY SLACK
             | WATERMARK LAG number
             | NO BUFFERING

Aggregate names are everything :func:`repro.engine.aggregates.make_aggregate`
accepts (``count``, ``sum``, ``mean``/``avg``, ``min``, ``max``,
``stddev``, ``median``, ``distinct``, ``range``, ``p<nn>``).
:func:`parse_query` returns a :class:`~repro.queries.language.ContinuousQuery`
still needing ``.from_elements(stream)``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.engine.aggregates import make_aggregate
from repro.engine.windows import sliding, tumbling
from repro.errors import ConfigurationError, QueryError
from repro.queries.language import ContinuousQuery

_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<number>\d+\.?\d*|\.\d+)|(?P<word>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<punct>[(),*]))"
)


@dataclass(frozen=True)
class _Token:
    kind: str  # "number" | "word" | "punct" | "end"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise QueryError(
                f"unexpected character {remainder[0]!r} at position {position}"
            )
        for kind in ("number", "word", "punct"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value, match.start(kind)))
                break
        position = match.end()
    tokens.append(_Token("end", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -------------------------------------------------------------- #
    # primitives

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        if token.kind != "end":
            self.index += 1
        return token

    def fail(self, expected: str) -> QueryError:
        token = self.peek()
        got = repr(token.text) if token.kind != "end" else "end of query"
        return QueryError(
            f"expected {expected}, got {got} at position {token.position} "
            f"in {self.text!r}"
        )

    def expect_keyword(self, *keywords: str) -> str:
        token = self.peek()
        if token.kind == "word" and token.text.upper() in keywords:
            self.advance()
            return token.text.upper()
        raise self.fail(" or ".join(keywords))

    def accept_keyword(self, *keywords: str) -> str | None:
        token = self.peek()
        if token.kind == "word" and token.text.upper() in keywords:
            self.advance()
            return token.text.upper()
        return None

    def expect_punct(self, char: str) -> None:
        token = self.peek()
        if token.kind == "punct" and token.text == char:
            self.advance()
            return
        raise self.fail(repr(char))

    def expect_number(self) -> float:
        token = self.peek()
        if token.kind == "number":
            self.advance()
            return float(token.text)
        raise self.fail("a number")

    # -------------------------------------------------------------- #
    # grammar

    def parse(self) -> ContinuousQuery:
        query = ContinuousQuery()
        self.expect_keyword("SELECT")
        query.aggregate(self._parse_aggregate())
        self.expect_keyword("FROM")
        token = self.peek()
        if token.kind != "word":
            raise self.fail("a stream name")
        self.advance()
        self.expect_keyword("GROUP")
        self.expect_keyword("BY")
        query.window(self._parse_window())
        if self.accept_keyword("WITH"):
            self._parse_handler(query)
        elif self.accept_keyword("WITHOUT"):
            self.expect_keyword("BUFFERING")
            query.without_buffering()
        if self.peek().kind != "end":
            raise self.fail("end of query")
        return query

    _RESERVED = {
        "SELECT", "FROM", "GROUP", "BY", "WITH", "WITHOUT",
        "HOP", "TUMBLE", "QUALITY", "LATENCY", "SLACK", "WATERMARK", "NO",
    }

    def _parse_aggregate(self):
        token = self.peek()
        if token.kind != "word" or token.text.upper() in self._RESERVED:
            raise self.fail("an aggregate name")
        self.advance()
        name = token.text.lower()
        if self.peek().kind == "punct" and self.peek().text == "(":
            self.advance()
            argument = self.peek()
            if argument.kind == "word" and argument.text.lower() == "value":
                self.advance()
            elif argument.kind == "punct" and argument.text == "*":
                self.advance()
            else:
                raise self.fail("'value' or '*'")
            self.expect_punct(")")
        try:
            return make_aggregate(name)
        except ConfigurationError as error:
            raise QueryError(str(error)) from error

    def _parse_window(self):
        kind = self.expect_keyword("HOP", "TUMBLE")
        self.expect_punct("(")
        size = self.expect_number()
        if kind == "HOP":
            self.expect_punct(",")
            slide = self.expect_number()
            self.expect_punct(")")
            try:
                return sliding(size, slide)
            except ConfigurationError as error:
                raise QueryError(str(error)) from error
        self.expect_punct(")")
        try:
            return tumbling(size)
        except ConfigurationError as error:
            raise QueryError(str(error)) from error

    def _parse_handler(self, query: ContinuousQuery) -> None:
        keyword = self.expect_keyword(
            "QUALITY", "LATENCY", "SLACK", "MAX", "WATERMARK", "NO"
        )
        # Validate spec parameters eagerly so bad queries fail at parse
        # time, not when the deferred handler factory finally runs.
        from repro.core.spec import LatencyBudget, QualityTarget

        try:
            if keyword == "QUALITY":
                threshold = self.expect_number()
                QualityTarget(threshold)
                query.with_quality(threshold)
            elif keyword == "LATENCY":
                self.expect_keyword("BUDGET")
                budget = self.expect_number()
                LatencyBudget(budget)
                query.with_latency_budget(budget)
            elif keyword == "SLACK":
                query.with_slack(self.expect_number())
            elif keyword == "MAX":
                self.expect_keyword("DELAY")
                self.expect_keyword("SLACK")
                query.with_max_delay_slack()
            elif keyword == "WATERMARK":
                self.expect_keyword("LAG")
                query.with_watermark(self.expect_number())
            else:  # NO
                self.expect_keyword("BUFFERING")
                query.without_buffering()
        except ConfigurationError as error:
            raise QueryError(str(error)) from error


def parse_query(text: str) -> ContinuousQuery:
    """Parse the SQL-like dialect into a :class:`ContinuousQuery`.

    The returned query still needs a source
    (``parse_query(...).from_elements(stream).run()``).  Queries without a
    WITH clause default to no disorder handling configured — call one of
    the handler clauses before running, or include a ``WITH``/``WITHOUT``
    clause.
    """
    return _Parser(text).parse()
