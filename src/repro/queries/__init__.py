"""Fluent and SQL-dialect public query APIs."""

from repro.queries.language import ContinuousQuery, QueryRun
from repro.queries.sql import parse_query

__all__ = ["ContinuousQuery", "QueryRun", "parse_query"]
