"""Fluent query builder: the primary public API of the library.

Example
-------

>>> import numpy as np
>>> from repro import ContinuousQuery, sliding
>>> from repro.streams import generate_stream, inject_disorder, ExponentialDelay
>>> rng = np.random.default_rng(0)
>>> stream = inject_disorder(
...     generate_stream(duration=60, rate=50, rng=rng), ExponentialDelay(0.5), rng
... )
>>> run = (
...     ContinuousQuery()
...     .from_elements(stream)
...     .window(sliding(10, 2))
...     .aggregate("mean")
...     .with_quality(0.05)
...     .run(assess=True)
... )
>>> run.report.mean_error <= 0.2
True
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.aqk import AQKSlackHandler
from repro.core.quality import QualityReport, assess_quality
from repro.core.spec import BoundedQualityTarget, LatencyBudget, QualityTarget
from repro.engine.aggregates import AggregateFunction, make_aggregate
from repro.engine.handlers import (
    DisorderHandler,
    KSlackHandler,
    MPKSlackHandler,
    NoBufferHandler,
)
from repro.engine.metrics import LatencySummary
from repro.engine.operator import Operator
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import RunOutput, run_pipeline
from repro.engine.watermarks import FixedLagWatermarkHandler
from repro.engine.windows import WindowAssigner
from repro.errors import QueryError
from repro.streams.element import StreamElement


@dataclass
class QueryRun:
    """Outcome of one executed continuous query."""

    output: RunOutput
    report: QualityReport | None
    handler: DisorderHandler
    operator: object  # naive, sliced or tree window aggregate operator

    @property
    def results(self):
        return self.output.results

    @property
    def latency(self) -> LatencySummary:
        return self.output.latency_summary()


class ContinuousQuery:
    """Builder for windowed aggregation queries over out-of-order streams.

    Chain ``from_elements`` / ``window`` / ``aggregate`` and exactly one
    disorder-handling clause (``with_quality``, ``with_latency_budget``,
    ``with_slack``, ``with_watermark``, ``with_max_delay_slack``,
    ``without_buffering``, or ``with_handler``), then call :meth:`run`.
    """

    def __init__(self) -> None:
        self._elements: list[StreamElement] | None = None
        self._assigner: WindowAssigner | None = None
        self._aggregate: AggregateFunction | None = None
        self._handler_factory = None
        self._handler_label: str | None = None
        self._sample_every = 0
        self._mode = "naive"
        self._shards: int | None = None
        self._shard_key = None
        self._handler_is_instance = False
        self._executor_spec = None
        self._chunk_size: int | None = None

    # ------------------------------------------------------------------ #
    # inputs

    def from_elements(self, elements: list[StreamElement]) -> "ContinuousQuery":
        """Use an arrival-ordered stream as the source."""
        self._elements = elements
        return self

    def window(self, assigner: WindowAssigner) -> "ContinuousQuery":
        """Set the window assigner (see ``sliding``/``tumbling``)."""
        self._assigner = assigner
        return self

    def aggregate(self, aggregate: AggregateFunction | str) -> "ContinuousQuery":
        """Set the aggregate: an instance or a name like ``"mean"``/``"p95"``."""
        if isinstance(aggregate, str):
            aggregate = make_aggregate(aggregate)
        self._aggregate = aggregate
        return self

    # ------------------------------------------------------------------ #
    # disorder handling clauses

    def _set_handler(self, label: str, factory) -> "ContinuousQuery":
        if self._handler_factory is not None:
            raise QueryError(
                f"disorder handling already set ({self._handler_label}); "
                f"cannot also set {label}"
            )
        self._handler_factory = factory
        self._handler_label = label
        return self

    def with_quality(self, threshold: float, **aqk_kwargs) -> "ContinuousQuery":
        """Quality-driven adaptive buffering: mean error <= threshold."""

        def factory(query: "ContinuousQuery") -> DisorderHandler:
            return AQKSlackHandler(
                target=QualityTarget(threshold),
                aggregate=query._require_aggregate(),
                window_size=getattr(query._assigner, "size", None),
                **aqk_kwargs,
            )

        return self._set_handler(f"quality<={threshold:g}", factory)

    def with_bounded_quality(
        self, threshold: float, budget: float, **aqk_kwargs
    ) -> "ContinuousQuery":
        """Quality target clamped by a hard latency ceiling."""

        def factory(query: "ContinuousQuery") -> DisorderHandler:
            return AQKSlackHandler(
                target=BoundedQualityTarget(threshold, budget),
                aggregate=query._require_aggregate(),
                window_size=getattr(query._assigner, "size", None),
                **aqk_kwargs,
            )

        return self._set_handler(
            f"quality<={threshold:g}&latency<={budget:g}s", factory
        )

    def with_latency_budget(self, seconds: float, **aqk_kwargs) -> "ContinuousQuery":
        """Latency-bounded adaptive buffering: slack <= budget."""

        def factory(query: "ContinuousQuery") -> DisorderHandler:
            return AQKSlackHandler(
                target=LatencyBudget(seconds),
                aggregate=query._require_aggregate(),
                window_size=getattr(query._assigner, "size", None),
                **aqk_kwargs,
            )

        return self._set_handler(f"latency<={seconds:g}s", factory)

    def with_slack(self, k: float) -> "ContinuousQuery":
        """Fixed K-slack buffering."""
        return self._set_handler(f"K={k:g}s", lambda query: KSlackHandler(k))

    def with_max_delay_slack(self, safety_factor: float = 1.0) -> "ContinuousQuery":
        """Conservative adaptive baseline: K tracks the max observed delay."""
        return self._set_handler(
            "mp-k-slack",
            lambda query: MPKSlackHandler(safety_factor=safety_factor),
        )

    def with_watermark(self, lag: float, period: float = 0.0) -> "ContinuousQuery":
        """Fixed-lag periodic watermarks (Flink-style)."""
        return self._set_handler(
            f"watermark(lag={lag:g})",
            lambda query: FixedLagWatermarkHandler(lag, period),
        )

    def without_buffering(self) -> "ContinuousQuery":
        """Zero-latency baseline: late elements are dropped."""
        return self._set_handler("no-buffer", lambda query: NoBufferHandler())

    def with_handler(self, handler: DisorderHandler) -> "ContinuousQuery":
        """Use an externally constructed handler."""
        self._handler_is_instance = True
        return self._set_handler(handler.describe(), lambda query: handler)

    # ------------------------------------------------------------------ #
    # execution

    def sampling_timeline(self, every: int) -> "ContinuousQuery":
        """Record a slack/frontier sample every N elements (for plots)."""
        self._sample_every = every
        return self

    def mode(self, mode: str) -> "ContinuousQuery":
        """Choose the execution mode: ``"naive"``, ``"sliced"`` or ``"tree"``.

        ``"sliced"`` shares one accumulator per slice (one add per element);
        ``"tree"`` additionally caches dyadic partial aggregates over the
        slices so closing windows and patching late elements are O(log)
        instead of O(size/slide).  Both require the slide to divide the
        window size and a mergeable aggregate; all modes produce identical
        results.
        """
        from repro.engine.partial_tree import EXECUTION_MODES

        if mode not in EXECUTION_MODES:
            raise QueryError(
                f"unknown execution mode {mode!r}; expected one of {EXECUTION_MODES}"
            )
        self._mode = mode
        return self

    def shards(self, n: int, key=None) -> "ContinuousQuery":
        """Partition execution across ``n`` keyed shards.

        Each shard runs an independent operator in the configured
        :meth:`mode` with its own disorder handler (built fresh from the
        configured clause), and a deterministic merge stage combines the
        per-shard windows at the minimum frontier across shards — see
        ``docs/SCALING.md`` for the exact semantics contract.

        Args:
            n: Shard count (>= 1).  ``shards(1)`` exercises the full
                sharded path and is bit-identical to unsharded execution.
            key: Optional routing key function ``element -> hashable``.
                Defaults to the element key; elements with routing key
                ``None`` are distributed round-robin.
        """
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise QueryError(f"shard count must be an int >= 1, got {n!r}")
        self._shards = n
        self._shard_key = key
        return self

    def executor(self, kind="thread", chunk_size: int | None = None) -> "ContinuousQuery":
        """Choose how shards execute: ``"thread"``, ``"process"`` or ``"serial"``.

        ``"process"`` runs shards on a warm pool of worker processes
        (true multicore parallelism, see ``docs/SCALING.md``); it requires
        every query part crossing the process boundary — window assigner,
        aggregate, disorder handler — to be picklable, which is checked at
        build time.  An already-constructed
        :class:`~repro.engine.parallel.ShardExecutor` instance is also
        accepted (e.g. a shared warm pool reused across queries).

        Args:
            kind: Executor name or instance.
            chunk_size: Elements per dispatched chunk; only meaningful for
                ``"process"`` (defaults to
                :data:`~repro.engine.process_pool.DEFAULT_CHUNK_SIZE`).

        Requires :meth:`shards`; checked when the operator is built.
        """
        from repro.engine.parallel import ShardExecutor

        if isinstance(kind, str):
            if kind not in ("thread", "process", "serial"):
                raise QueryError(
                    f"unknown executor {kind!r}; expected \"thread\", "
                    '"process", "serial" or a ShardExecutor instance'
                )
        elif not isinstance(kind, ShardExecutor):
            raise QueryError(
                f"executor must be a name or a ShardExecutor, got {kind!r}"
            )
        if chunk_size is not None:
            if (
                not isinstance(chunk_size, int)
                or isinstance(chunk_size, bool)
                or chunk_size < 1
            ):
                raise QueryError(
                    f"chunk_size must be a positive int, got {chunk_size!r}"
                )
            if kind != "process":
                raise QueryError(
                    "chunk_size only applies to the \"process\" executor"
                )
        self._executor_spec = kind
        self._chunk_size = chunk_size
        return self

    def _make_executor(self):
        """Materialize the configured shard executor (None = default)."""
        from repro.engine.parallel import ShardExecutor, ThreadShardExecutor

        spec = self._executor_spec
        if spec is None or isinstance(spec, ShardExecutor):
            return spec
        if spec == "serial":
            return ShardExecutor()
        if spec == "thread":
            return ThreadShardExecutor()
        from repro.engine.process_pool import ProcessShardExecutor

        if self._chunk_size is not None:
            return ProcessShardExecutor(chunk_size=self._chunk_size)
        return ProcessShardExecutor()

    def sliced(self, enabled: bool = True) -> "ContinuousQuery":
        """Use slice-based execution (alias for ``.mode("sliced")``).

        Requires the slide to divide the window size and a mergeable
        aggregate; semantics are identical to the default execution path.
        """
        self._mode = "sliced" if enabled else "naive"
        return self

    def _require_aggregate(self) -> AggregateFunction:
        if self._aggregate is None:
            raise QueryError("query has no aggregate; call .aggregate(...)")
        return self._aggregate

    def build_operator(self) -> Operator:
        """Materialize the operator without running (for custom drivers)."""
        if self._assigner is None:
            raise QueryError("query has no window; call .window(...)")
        aggregate = self._require_aggregate()
        if self._handler_factory is None:
            raise QueryError(
                "query has no disorder handling; call .with_quality(...), "
                ".with_slack(...), .without_buffering(), ..."
            )
        if self._shards is not None:
            if self._handler_is_instance and self._shards > 1:
                raise QueryError(
                    "with_handler supplies a single handler instance, but "
                    "sharded execution needs a fresh handler per shard; "
                    "use with_slack/with_quality/... instead"
                )
            from repro.engine.parallel import ShardedWindowOperator

            handler_factory = self._handler_factory
            return ShardedWindowOperator(
                self._shards,
                self._assigner,
                aggregate,
                lambda: handler_factory(self),
                mode=self._mode,
                key_fn=self._shard_key,
                executor=self._make_executor(),
            )
        if self._executor_spec is not None:
            raise QueryError(
                "executor(...) requires sharded execution; call .shards(n) first"
            )
        handler = self._handler_factory(self)
        from repro.engine.partial_tree import make_window_operator

        return make_window_operator(
            self._mode, self._assigner, aggregate, handler
        )

    def run(
        self,
        assess: bool = False,
        threshold: float | None = None,
        trace=None,
        registry=None,
    ) -> QueryRun:
        """Execute the query over the configured stream.

        Args:
            assess: Also run the in-order oracle and attach a
                :class:`~repro.core.quality.QualityReport`.
            threshold: Violation threshold for the report; defaults to the
                quality target when one was configured.
            trace: Optional :class:`~repro.obs.trace.Tracer` (e.g. a
                :class:`~repro.obs.trace.TraceRecorder`) attached for the
                run; see ``docs/OBSERVABILITY.md``.
            registry: Optional :class:`~repro.obs.registry.MetricsRegistry`
                kept live during the run.
        """
        if self._elements is None:
            raise QueryError("query has no source; call .from_elements(...)")
        operator = self.build_operator()
        output = run_pipeline(
            self._elements,
            operator,
            self._sample_every,
            trace=trace,
            registry=registry,
        )
        report = None
        if assess:
            if threshold is None and isinstance(
                getattr(operator.handler, "target", None), QualityTarget
            ):
                threshold = operator.handler.target.threshold
            truth = oracle_results(self._elements, self._assigner, self._aggregate)
            report = assess_quality(output.results, truth, threshold=threshold)
        return QueryRun(
            output=output, report=report, handler=operator.handler, operator=operator
        )
