"""Synthetic domain workloads (simulated substitutes for real traces)."""

from repro.workloads.financial import (
    DEFAULT_SYMBOLS,
    financial_delay_model,
    financial_ticks,
)
from repro.workloads.sensors import sensor_delay_model, sensor_readings
from repro.workloads.soccer import (
    PlayerSpeedValues,
    distance_covered,
    soccer_delay_model,
    soccer_positions,
)

__all__ = [
    "DEFAULT_SYMBOLS",
    "PlayerSpeedValues",
    "distance_covered",
    "financial_delay_model",
    "financial_ticks",
    "sensor_delay_model",
    "sensor_readings",
    "soccer_delay_model",
    "soccer_positions",
]
