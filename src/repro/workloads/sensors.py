"""Sensor-grid workload: diurnal readings with lognormal + burst delays.

Simulated stand-in for machine/environment monitoring traces: a grid of
sensors reporting a sinusoidal signal plus noise, shipped over links with
lognormal latency, optionally hit by a delay burst (gateway outage) for
the adaptation experiments.
"""

from __future__ import annotations

import numpy as np

from repro.streams.delay import BurstyDelay, DelayModel, LognormalDelay, ShiftedDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import SinusoidValues, generate_stream


def sensor_delay_model(
    base: float = 0.02,
    mu: float = -2.0,
    sigma: float = 1.0,
    burst_start: float | None = None,
    burst_end: float | None = None,
    burst_mu: float = 1.0,
) -> DelayModel:
    """Lognormal link latency, optionally with a burst regime."""
    calm = ShiftedDelay(base, LognormalDelay(mu, sigma))
    if burst_start is None:
        return calm
    burst = ShiftedDelay(base, LognormalDelay(burst_mu, sigma))
    return BurstyDelay(calm, burst, burst_start, float(burst_end))


def sensor_readings(
    duration: float,
    rate: float,
    rng: np.random.Generator,
    n_sensors: int = 16,
    period: float = 600.0,
    noise_std: float = 0.5,
    delay_model: DelayModel | None = None,
) -> list[StreamElement]:
    """Arrival-ordered sensor stream keyed by ``sensor-<i>``."""
    keys = tuple(f"sensor-{index}" for index in range(n_sensors))
    in_order = generate_stream(
        duration=duration,
        rate=rate,
        rng=rng,
        value_process=SinusoidValues(
            base=20.0,
            amplitude=5.0,
            period=period,
            noise_std=noise_std,
            phase_per_key=0.4,
        ),
        keys=keys,
    )
    model = delay_model if delay_model is not None else sensor_delay_model()
    return inject_disorder(in_order, model, rng)
