"""Soccer position workload (DEBS-grand-challenge style, simulated).

Player-worn sensors at high rate report speeds; transport is mostly tight
Gaussian jitter, with occasional short radio dropouts that release queued
packets in bulk — a distinct disorder texture from the other workloads
(many moderately-late elements instead of a long smooth tail).
"""

from __future__ import annotations

import math

import numpy as np

from repro.streams.delay import (
    DelayModel,
    GaussianDelay,
    MixtureDelay,
    UniformDelay,
)
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import ValueProcess, generate_stream


class PlayerSpeedValues(ValueProcess):
    """Piecewise-smooth player speed: sprints and recoveries.

    Each player's speed follows a mean-reverting process toward a target
    that re-randomizes occasionally (walk / run / sprint phases).
    """

    def __init__(
        self,
        max_speed: float = 9.0,
        reversion: float = 0.1,
        retarget_probability: float = 0.02,
    ) -> None:
        self.max_speed = max_speed
        self.reversion = reversion
        self.retarget_probability = retarget_probability
        self._speed: dict[object, float] = {}
        self._target: dict[object, float] = {}

    def sample(self, rng: np.random.Generator, event_time: float, key: object) -> float:
        speed = self._speed.get(key, 1.0)
        target = self._target.get(key, 2.0)
        if rng.random() < self.retarget_probability:
            target = float(rng.uniform(0.0, self.max_speed))
        speed += self.reversion * (target - speed) + float(rng.normal(0.0, 0.2))
        speed = min(self.max_speed, max(0.0, speed))
        self._speed[key] = speed
        self._target[key] = target
        return speed

    def reset(self) -> None:
        self._speed.clear()
        self._target.clear()


def soccer_delay_model(
    jitter_std: float = 0.01,
    dropout_weight: float = 0.03,
    dropout_max: float = 2.0,
) -> DelayModel:
    """Tight jitter with occasional bounded dropout-queue delays."""
    return MixtureDelay(
        [
            (1.0 - dropout_weight, GaussianDelay(0.02, jitter_std)),
            (dropout_weight, UniformDelay(0.1, dropout_max)),
        ]
    )


def soccer_positions(
    duration: float,
    rate: float,
    rng: np.random.Generator,
    n_players: int = 22,
    delay_model: DelayModel | None = None,
) -> list[StreamElement]:
    """Arrival-ordered player-speed stream keyed by ``player-<i>``."""
    keys = tuple(f"player-{index}" for index in range(n_players))
    in_order = generate_stream(
        duration=duration,
        rate=rate,
        rng=rng,
        value_process=PlayerSpeedValues(),
        keys=keys,
    )
    model = delay_model if delay_model is not None else soccer_delay_model()
    return inject_disorder(in_order, model, rng)


def distance_covered(elements: list[StreamElement], dt: float | None = None) -> float:
    """Rough total distance proxy: sum of speed * mean gap (sanity checks)."""
    if not elements:
        return 0.0
    if dt is None:
        span = max(el.event_time for el in elements) - min(
            el.event_time for el in elements
        )
        dt = span / max(len(elements) - 1, 1)
    return float(sum(el.value for el in elements) * dt)
