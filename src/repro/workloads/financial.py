"""Financial tick workload: random-walk prices with heavy-tailed delays.

Simulated stand-in for the market-data traces such papers evaluate on:
per-symbol tick streams whose prices follow a random walk and whose
transport delays mix a fast path with a heavy-tailed retry path (the
regime where conservative buffering is most expensive).
"""

from __future__ import annotations

import numpy as np

from repro.streams.delay import DelayModel, ExponentialDelay, MixtureDelay, ParetoDelay
from repro.streams.disorder import inject_disorder
from repro.streams.element import StreamElement
from repro.streams.generators import RandomWalkValues, generate_stream

DEFAULT_SYMBOLS = ("SAP", "IBM", "ORCL", "MSFT")


def financial_delay_model(
    fast_mean: float = 0.05,
    slow_scale: float = 1.0,
    slow_shape: float = 1.5,
    slow_weight: float = 0.05,
) -> DelayModel:
    """95/5 mixture of a fast exponential path and a Pareto retry path."""
    return MixtureDelay(
        [
            (1.0 - slow_weight, ExponentialDelay(fast_mean)),
            (slow_weight, ParetoDelay(shape=slow_shape, scale=slow_scale)),
        ]
    )


def financial_ticks(
    duration: float,
    rate: float,
    rng: np.random.Generator,
    symbols: tuple[str, ...] = DEFAULT_SYMBOLS,
    volatility: float = 0.05,
    delay_model: DelayModel | None = None,
) -> list[StreamElement]:
    """Arrival-ordered tick stream over ``symbols``.

    Args:
        duration: Event-time span in seconds.
        rate: Total ticks per second across symbols.
        rng: Seeded generator.
        symbols: Key universe.
        volatility: Per-tick price step standard deviation.
        delay_model: Transport delays; defaults to
            :func:`financial_delay_model`.
    """
    in_order = generate_stream(
        duration=duration,
        rate=rate,
        rng=rng,
        value_process=RandomWalkValues(start=100.0, volatility=volatility),
        keys=symbols,
    )
    model = delay_model if delay_model is not None else financial_delay_model()
    return inject_disorder(in_order, model, rng)
