"""Result-quality measurement against the in-order oracle.

Quality is scored per window: the value a run emitted for ``(key, window)``
against the exact value the oracle computed from the complete stream.
Windows the run never emitted (all of their input arrived late) count as
full loss.  The report aggregates per-window relative errors into the
statistics the evaluation tables print.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.engine.aggregate_op import relative_error
from repro.engine.operator import WindowResult
from repro.engine.windows import Window
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WindowScore:
    """Per-window comparison row (kept for timelines and debugging)."""

    key: object
    window: Window
    emitted: float
    exact: float
    error: float
    latency: float


@dataclass
class QualityReport:
    """Quality of one run against the oracle.

    Attributes:
        n_oracle_windows: Number of ground-truth (non-empty) windows.
        n_emitted_windows: Distinct windows the run emitted.
        window_recall: Fraction of oracle windows the run emitted at all.
        mean_error / p50_error / p95_error / max_error: Statistics of the
            per-window relative error over **all** oracle windows (missed
            windows scored 1.0).
        violation_fraction: Fraction of oracle windows whose error exceeds
            ``threshold`` (``nan`` when no threshold given).
        threshold: The quality target the run was evaluated against.
        scores: Per-window detail rows, in window-end order.
    """

    n_oracle_windows: int
    n_emitted_windows: int
    window_recall: float
    mean_error: float
    p50_error: float
    p95_error: float
    max_error: float
    violation_fraction: float
    threshold: float | None
    scores: list[WindowScore] = field(default_factory=list)

    def meets(self, threshold: float | None = None) -> bool:
        """Whether the mean error satisfies the (given or stored) bound."""
        bound = threshold if threshold is not None else self.threshold
        if bound is None:
            raise ConfigurationError("no threshold to check against")
        return self.mean_error <= bound


def assess_quality(
    results: list[WindowResult],
    oracle: dict[tuple[object, Window], tuple[float, int]],
    threshold: float | None = None,
    keep_scores: bool = False,
) -> QualityReport:
    """Score emitted results against oracle truth.

    Revision streams (speculative operators) are collapsed to the last
    emitted value per window before scoring; latency is taken from the
    first emission.
    """
    emitted_value: dict[tuple[object, Window], float] = {}
    first_latency: dict[tuple[object, Window], float] = {}
    for result in results:
        slot = (result.key, result.window)
        emitted_value[slot] = result.value
        if slot not in first_latency:
            first_latency[slot] = result.latency

    if not oracle:
        return QualityReport(
            n_oracle_windows=0,
            n_emitted_windows=len(emitted_value),
            window_recall=math.nan,
            mean_error=math.nan,
            p50_error=math.nan,
            p95_error=math.nan,
            max_error=math.nan,
            violation_fraction=math.nan,
            threshold=threshold,
        )

    errors = []
    scores: list[WindowScore] = []
    matched = 0
    for slot in sorted(oracle, key=lambda s: (s[1].end, s[1].start, str(s[0]))):
        exact, __ = oracle[slot]
        if slot in emitted_value:
            matched += 1
            emitted = emitted_value[slot]
            error = relative_error(emitted, exact)
            latency = first_latency[slot]
        else:
            emitted = math.nan
            error = 1.0
            latency = math.nan
        errors.append(error)
        if keep_scores:
            scores.append(
                WindowScore(
                    key=slot[0],
                    window=slot[1],
                    emitted=emitted,
                    exact=exact,
                    error=error,
                    latency=latency,
                )
            )

    array = np.asarray(errors, dtype=float)
    if threshold is None:
        violation = math.nan
    else:
        violation = float((array > threshold).mean())
    return QualityReport(
        n_oracle_windows=len(oracle),
        n_emitted_windows=len(emitted_value),
        window_recall=matched / len(oracle),
        mean_error=float(array.mean()),
        p50_error=float(np.quantile(array, 0.5)),
        p95_error=float(np.quantile(array, 0.95)),
        max_error=float(array.max()),
        violation_fraction=violation,
        threshold=threshold,
        scores=scores,
    )


def error_timeline(report: QualityReport, bucket: float) -> list[tuple[float, float]]:
    """Bucket per-window errors by window end time: (bucket_start, mean err).

    Requires the report to have been built with ``keep_scores=True``; used
    by the burst-adaptation experiment to plot error over time.
    """
    if bucket <= 0:
        raise ConfigurationError(f"bucket must be positive, got {bucket}")
    if not report.scores:
        return []
    buckets: dict[int, list[float]] = {}
    for score in report.scores:
        index = int(score.window.end // bucket)
        buckets.setdefault(index, []).append(score.error)
    return [
        (index * bucket, float(np.mean(values)))
        for index, values in sorted(buckets.items())
    ]
