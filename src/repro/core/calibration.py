"""Offline calibration of error models against a profiling run.

The built-in error models are deliberately conservative first-order
approximations; at runtime the feedback controller discovers the gap
between model and reality.  When a representative trace is available
*ahead* of deployment, the gap can instead be measured offline:

1. replay the trace under a grid of fixed slacks K,
2. record, per K, the late-mass fraction ``p = P(delay > K)`` and the
   *observed* mean window error ``e``,
3. fit the proportionality ``e ≈ c · p`` by least squares.

The resulting :class:`CalibratedErrorModel` (``error = c * p``) starts the
adaptive handler at the right operating point instead of letting the
controller find it — reducing the cold-start transient the uncalibrated
runs pay (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.estimators import ErrorModel, StreamContext
from repro.core.quality import assess_quality
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import KSlackHandler
from repro.engine.oracle import oracle_results
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import WindowAssigner
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement


class CalibratedErrorModel(ErrorModel):
    """Linear error model with an empirically fitted scale: ``e = c * p``."""

    kind = "calibrated"
    __numeric__ = "exact"  # stateless linear map, no accumulation

    def __init__(self, scale: float) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = scale

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"late fraction must lie in [0,1], got {p}")
        return self.scale * p

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        if theta < 0:
            raise ConfigurationError(f"error bound must be non-negative, got {theta}")
        return min(1.0, theta / self.scale)

    def describe(self) -> str:
        return f"calibrated(scale={self.scale:.4g})"


@dataclass(frozen=True)
class CalibrationPoint:
    """One grid point of the calibration run."""

    k: float
    late_fraction: float
    mean_error: float


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted model plus the measurements behind it."""

    model: CalibratedErrorModel
    points: list[CalibrationPoint]

    @property
    def scale(self) -> float:
        return self.model.scale


def calibrate_error_model(
    stream: list[StreamElement],
    assigner: WindowAssigner,
    aggregate: AggregateFunction,
    k_grid: list[float] | None = None,
) -> CalibrationResult:
    """Fit ``error = scale * late_fraction`` from replays of ``stream``.

    Args:
        stream: Arrival-ordered profiling trace (with arrival timestamps).
        assigner / aggregate: The query to calibrate for.
        k_grid: Slacks to probe; defaults to the trace's delay quantiles
            at 0.5/0.75/0.9/0.95/0.99 (plus K=0).

    Returns:
        :class:`CalibrationResult`; its ``model`` plugs into
        :class:`~repro.core.aqk.AQKSlackHandler` as the ``aggregate``
        argument.
    """
    if not stream:
        raise ConfigurationError("cannot calibrate on an empty stream")
    delays = np.array([element.delay for element in stream])
    if k_grid is None:
        k_grid = [0.0] + [
            float(np.quantile(delays, q)) for q in (0.5, 0.75, 0.9, 0.95, 0.99)
        ]
    if not k_grid:
        raise ConfigurationError("k_grid must contain at least one slack")

    truth = oracle_results(stream, assigner, aggregate)
    points = []
    for k in sorted(set(k_grid)):
        if k < 0:
            raise ConfigurationError(f"slacks must be non-negative, got {k}")
        operator = WindowAggregateOperator(
            assigner, aggregate, KSlackHandler(k), track_feedback=False
        )
        output = run_pipeline(stream, operator)
        report = assess_quality(output.results, truth)
        late_fraction = float((delays > k).mean())
        points.append(
            CalibrationPoint(
                k=k, late_fraction=late_fraction, mean_error=report.mean_error
            )
        )

    # Least-squares fit of e = c * p through the origin.
    p = np.array([point.late_fraction for point in points])
    e = np.array([point.mean_error for point in points])
    denominator = float((p * p).sum())
    if denominator <= 0:
        raise ConfigurationError(
            "calibration trace has no late elements at any probed slack; "
            "nothing to fit"
        )
    scale = float((p * e).sum() / denominator)
    scale = max(scale, 1e-6)
    return CalibrationResult(model=CalibratedErrorModel(scale), points=points)
