"""Numerically sound accumulation primitives.

The quality contract the controller reports ("mean relative error <=
theta") is only as trustworthy as the floating-point arithmetic behind
it.  Three classic traps show up in streaming aggregation:

* **Naive summation drift** — folding n values with bare ``+=``
  accumulates up to ``n * ulp`` of relative error, and the *order* of the
  fold changes the answer (scalar loops vs numpy reductions vs merge
  trees all round differently).
* **Subtraction-based retraction** — sliding a window by subtracting the
  evicted value is O(1) but the compensation never returns: after k
  evictions the running sum has absorbed k extra roundings and can drift
  arbitrarily far from the true window sum (Tangwongsan et al. call this
  out as the classic invertible-aggregation trap).
* **Float equality** — ``==`` on two independently accumulated results is
  a coin flip; comparisons need an explicit tolerance with an absolute
  floor near zero.

This module provides the sanctioned primitives, one per trap:

* :func:`neumaier_add` / :func:`neumaier_add_many` /
  :func:`neumaier_merge` / :func:`neumaier_total` — compensated
  (Neumaier/Kahan-Babuska) summation over a plain-list accumulator
  ``[total, compensation]``.  Error is O(1) ulp regardless of length,
  and ``add_many`` is the *same* fold as repeated ``add``, so scalar and
  batched paths agree bit-for-bit.
* :class:`RetractableSum` — drift-bounded sliding subtraction: retraction
  is compensated *and* the sum is rebuilt from live values every
  ``resum_every`` retractions, so drift is bounded instead of unbounded.
* :func:`floats_close` — tolerance comparison with an absolute floor and
  the same infinity semantics as
  :func:`repro.streams.timebase.times_equal`.

The float-soundness lint rules R16-R20 (``docs/NUMERICS.md``) require
accumulation sites to route through these primitives or carry an explicit
``# repro: numeric=...`` waiver, and the NumSan sanitizer
(``run_pipeline(sanitize="numeric")``) verifies at runtime that every
aggregate stays within the drift bound its ``__numeric__`` annotation
declares.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List

from repro.errors import ConfigurationError

#: Default relative tolerance for :func:`floats_close` — one part in 1e9,
#: matching ``TIME_EQ_RTOL`` so value and time comparisons are consistent.
FLOAT_EQ_RTOL = 1e-9

#: Absolute floor for :func:`floats_close`: accumulated values that should
#: be zero typically land within a few ulp of it, far below this floor.
FLOAT_EQ_ATOL = 1e-12

#: Denominator floor for :func:`relative_drift` near zero references.
_DRIFT_EPS = 1e-12


# --------------------------------------------------------------------- #
# compensated summation over list accumulators


def neumaier_create() -> List[float]:
    """A fresh compensated accumulator: ``[total, compensation]``."""
    return [0.0, 0.0]


def neumaier_add(accumulator: List[float], value: float) -> None:
    """Fold one value into ``[total, compensation]`` with compensation.

    Neumaier's variant of Kahan summation: the rounding error of each
    addition is recovered exactly (Fast2Sum with the magnitude test) and
    parked in ``accumulator[1]`` instead of being lost.  Unlike plain
    Kahan it also stays accurate when ``value`` exceeds the running total.
    """
    total = accumulator[0]
    fold = total + value
    if abs(total) >= abs(value):
        accumulator[1] += (total - fold) + value
    else:
        accumulator[1] += (value - fold) + total
    accumulator[0] = fold


def neumaier_add_many(accumulator: List[float], values: Iterable[float]) -> None:
    """Fold a batch into ``[total, compensation]``.

    Performs *exactly* the same sequence of operations as calling
    :func:`neumaier_add` per value (locals are hoisted for speed only), so
    scalar and batched folds agree bit-for-bit — this is what lets the
    engine pin ``add_many`` to ``add`` with equality instead of tolerance.
    """
    total = accumulator[0]
    compensation = accumulator[1]
    for value in values:
        fold = total + value
        if abs(total) >= abs(value):
            compensation += (total - fold) + value
        else:
            compensation += (value - fold) + total
        total = fold
    accumulator[0] = total
    accumulator[1] = compensation


def neumaier_merge(accumulator: List[float], other: List[float]) -> None:
    """Merge compensated partial ``other`` into ``accumulator`` in place.

    The partial total is folded with compensation and the partial
    compensation terms are carried over, so merge trees (sliced and
    partial-aggregate execution) keep the O(1)-ulp error bound.
    """
    neumaier_add(accumulator, other[0])
    accumulator[1] += other[1]


def neumaier_total(accumulator: List[float]) -> float:
    """The compensated sum: running total plus parked compensation."""
    return accumulator[0] + accumulator[1]


def compensated_sum(values: Iterable[float]) -> float:
    """One-shot compensated sum of an iterable (convenience wrapper)."""
    accumulator = neumaier_create()
    neumaier_add_many(accumulator, values)
    return neumaier_total(accumulator)


class CompensatedSum:
    """Object wrapper over the ``[total, compensation]`` list accumulator.

    For call sites that want a named running sum rather than threading a
    bare list around (estimator feedback terms, long-lived counters).
    """

    __concurrency__ = "single-thread"
    __numeric__ = "compensated"
    __slots__ = ("_state",)

    def __init__(self) -> None:
        self._state = neumaier_create()

    def add(self, value: float) -> None:
        """Fold one value in with compensation."""
        neumaier_add(self._state, value)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch in — bit-identical to repeated :meth:`add`."""
        neumaier_add_many(self._state, values)

    def merge(self, other: "CompensatedSum") -> None:
        """Absorb another compensated sum, carrying its compensation."""
        neumaier_merge(self._state, other._state)

    @property
    def value(self) -> float:
        """The compensated running total."""
        return neumaier_total(self._state)


class RetractableSum:
    """Sliding-window sum with drift-bounded subtraction.

    Subtracting evicted values keeps the window sum O(1) per slide, but
    every retraction adds a rounding that ordinary summation never takes
    back.  This wrapper makes the pattern sound (and is the only shape
    lint rule R17 accepts):

    * additions *and* retractions are compensated (a retraction is a
      compensated add of ``-value``), and
    * every ``resum_every`` retractions the sum is rebuilt exactly from
      the live values supplied by the ``resum`` callable, so accumulated
      retraction error is bounded by ``drift_bound`` instead of growing
      without limit.

    ``drift_bound`` is the declared *relative* drift the owner tolerates
    between re-summations; NumSan and the unit suite verify the bound
    empirically rather than trusting it.
    """

    __concurrency__ = "single-thread"
    __numeric__ = "compensated"
    __slots__ = ("_state", "_resum", "drift_bound", "resum_every",
                 "_retractions_since", "resum_count")

    def __init__(
        self,
        resum: Callable[[], Iterable[float]],
        drift_bound: float = 1e-9,
        resum_every: int = 64,
    ) -> None:
        if resum is None:  # defensive: a hook is mandatory, not optional
            raise ConfigurationError(
                "RetractableSum requires a resum callable returning the "
                "live values; drift-bounded retraction without a "
                "re-summation hook is exactly what R17 forbids"
            )
        if not drift_bound > 0.0:
            raise ConfigurationError(
                f"drift_bound must be positive, got {drift_bound}"
            )
        if resum_every < 1:
            raise ConfigurationError(
                f"resum_every must be >= 1, got {resum_every}"
            )
        self._state = neumaier_create()
        self._resum = resum
        self.drift_bound = drift_bound
        self.resum_every = resum_every
        self._retractions_since = 0
        self.resum_count = 0

    def add(self, value: float) -> None:
        """Fold one value in with compensation."""
        neumaier_add(self._state, value)

    def add_many(self, values: Iterable[float]) -> None:
        """Fold a batch in — bit-identical to repeated :meth:`add`."""
        neumaier_add_many(self._state, values)

    def retract(self, value: float) -> None:
        """Remove one value; triggers a rebuild every ``resum_every``."""
        neumaier_add(self._state, -value)
        self._retractions_since += 1
        if self._retractions_since >= self.resum_every:
            self.resum_now()

    def resum_now(self) -> None:
        """Rebuild the compensated sum exactly from the live values."""
        state = neumaier_create()
        neumaier_add_many(state, self._resum())
        self._state = state
        self._retractions_since = 0
        self.resum_count += 1

    @property
    def value(self) -> float:
        """The current (drift-bounded) window sum."""
        return neumaier_total(self._state)


# --------------------------------------------------------------------- #
# comparison and drift measurement


def floats_close(
    a: float,
    b: float,
    # Unlike times_equal's, these tolerances are dimensionless ratios /
    # value-domain floors, not second-valued durations.
    rtol: float = FLOAT_EQ_RTOL,  # repro-lint: disable=R10 - dimensionless
    atol: float = FLOAT_EQ_ATOL,  # repro-lint: disable=R10 - dimensionless
) -> bool:
    """Tolerance equality for accumulated floats (lint rule R18's target).

    Same shape as :func:`repro.streams.timebase.times_equal`: exact
    equality short-circuits (equal infinities compare close), distinct
    infinities and NaN are never close, and the absolute floor ``atol``
    covers values that should be zero but carry accumulation residue.
    """
    if a == b:  # repro-lint: disable=R03 - this IS the tolerance helper
        return True
    if math.isinf(a) or math.isinf(b):
        return False
    return abs(a - b) <= max(atol, rtol * max(abs(a), abs(b)))


def relative_drift(
    value: float, reference: float, eps: float = _DRIFT_EPS
) -> float:
    """|value - reference| / max(|reference|, eps); NaN-aware.

    Two NaNs agree (0.0); a NaN against a number is full drift (inf).
    The epsilon floor keeps near-zero references from inflating honest
    absolute error into a huge relative one.
    :func:`repro.engine.aggregate_op.relative_error` routes its numeric
    branch through this (with its wider 1e-9 floor) so quality scoring
    and drift accounting share one definition.
    """
    if math.isnan(value) and math.isnan(reference):
        return 0.0
    if math.isnan(value) or math.isnan(reference):
        return math.inf
    if value == reference:  # repro-lint: disable=R03 - drift metric itself
        return 0.0
    return abs(value - reference) / max(abs(reference), eps)


def ulp_distance(value: float, reference: float) -> float:
    """Distance in units-in-the-last-place of ``reference``.

    0.0 means bit-identical; 0.5 is a single correct rounding; large
    values mean genuine drift.  Non-finite mismatches return ``inf``.
    """
    if math.isnan(value) and math.isnan(reference):
        return 0.0
    if not math.isfinite(value) or not math.isfinite(reference):
        return 0.0 if value == reference else math.inf
    if value == reference:  # repro-lint: disable=R03 - ulp metric itself
        return 0.0
    return abs(value - reference) / math.ulp(max(abs(reference), 5e-324))


def drift_exceeded(old: float, new: float, threshold: float) -> bool:
    """Does replacing ``old`` by ``new`` exceed a relative-drift threshold?

    The revision machinery in :mod:`repro.engine.retraction` uses this to
    decide whether a late element moved a closed window's value enough to
    warrant emitting a correction.
    """
    return relative_drift(old, new) > threshold
