"""Shared disorder handling for multiple concurrent queries.

When several continuous queries with different quality requirements read
the same stream, buffering it once per query wastes memory and repeats
work.  :class:`SharedAQKBuffer` keeps **one** copy of the buffered elements
and serves each query through its own release cursor:

* each registered query gets its own adaptive slack ``K_i`` (computed with
  the same estimator/controller machinery as a private
  :class:`~repro.core.aqk.AQKSlackHandler`),
* a buffered element is delivered to query *i* once the shared clock
  exceeds its timestamp by ``K_i`` — strict queries see it later, loose
  queries earlier,
* the element is dropped from the shared buffer once **every** query has
  passed it.

Memory therefore scales with the *strictest* requirement instead of the
sum over queries — the claim experiment E11 quantifies.
"""

from __future__ import annotations

import bisect
import math

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregates import AggregateFunction
from repro.engine.handlers import DisorderHandler
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS, EventTimeFrontier, EventTimeStamp


class _QueryCursor(DisorderHandler):
    """Per-query view of the shared buffer, exposed as a DisorderHandler.

    The cursor does not buffer anything itself: the shared buffer pushes
    ready batches into it, and a downstream operator consumes them through
    the usual ``offer`` protocol (``offer`` returns whatever the shared
    buffer has staged for this query since the last call).
    """

    __concurrency__ = "single-thread"

    def __init__(self, owner: "SharedAQKBuffer", query_id: str) -> None:
        self._owner = owner
        self.query_id = query_id
        self._staged: list[StreamElement] = []
        self._frontier_value = float("-inf")

    def stage(self, elements: list[StreamElement], frontier: EventTimeStamp) -> None:
        self._staged.extend(elements)
        if frontier > self._frontier_value:
            self._frontier_value = frontier

    def offer(self, element: StreamElement) -> list[StreamElement]:
        # The element was already offered to the shared buffer by the
        # dispatcher; this call just drains what was staged for this query.
        staged = self._staged
        self._staged = []
        return staged

    def flush(self) -> list[StreamElement]:
        staged = self._staged
        self._staged = []
        self._frontier_value = float("inf")
        return staged

    @property
    def frontier(self) -> EventTimeStamp:
        return self._frontier_value

    @property
    def current_slack(self) -> DurationS:
        return self._owner.slack_of(self.query_id)

    def buffered_count(self) -> int:
        return len(self._staged)

    def max_buffered_count(self) -> int:
        return self._owner.max_buffered

    def observe_error(self, error: float) -> None:
        self._owner.observe_error(self.query_id, error)


class SharedAQKBuffer:
    """One buffer, many quality-driven release schedules."""

    __concurrency__ = "single-thread"

    def __init__(self) -> None:
        self._advisors: dict[str, AQKSlackHandler] = {}
        self._cursors: dict[str, _QueryCursor] = {}
        self._released_upto: dict[str, int] = {}
        # Elements sorted by (event_time, seq); parallel list of sort keys.
        self._elements: list[StreamElement] = []
        self._keys: list[tuple[float, int]] = []
        self._clock = EventTimeFrontier()
        self.max_buffered = 0
        self.late_for_query: dict[str, int] = {}
        self._frontiers: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # registration

    def register(
        self,
        query_id: str,
        target: QualityTarget | LatencyBudget,
        aggregate: AggregateFunction | str,
        window_size: float | None = None,
        **aqk_kwargs,
    ) -> _QueryCursor:
        """Register a query; returns the handler to give its operator."""
        if query_id in self._advisors:
            raise ConfigurationError(f"query id {query_id!r} already registered")
        if self._elements or self._clock.count:
            raise ConfigurationError("register all queries before offering elements")
        advisor = AQKSlackHandler(
            target=target,
            aggregate=aggregate,
            window_size=window_size,
            **aqk_kwargs,
        )
        self._advisors[query_id] = advisor
        cursor = _QueryCursor(self, query_id)
        self._cursors[query_id] = cursor
        self._released_upto[query_id] = 0
        self.late_for_query[query_id] = 0
        self._frontiers[query_id] = float("-inf")
        return cursor

    def handler_for(self, query_id: str) -> _QueryCursor:
        """The disorder handler to wire into this query's operator."""
        return self._cursors[query_id]

    def slack_of(self, query_id: str) -> float:
        """Current adaptive slack of the given query."""
        return self._advisors[query_id].k

    def observe_error(self, query_id: str, error: float) -> None:
        """Route one observed-error sample to the query's advisor."""
        self._advisors[query_id].observe_error(error)

    # ------------------------------------------------------------------ #
    # dispatch

    def _insert(self, element: StreamElement) -> None:
        key = (element.event_time, element.seq)
        index = bisect.bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._elements.insert(index, element)
        # Keep per-query positions consistent: an insert below a cursor's
        # released prefix means this element is late for that query.
        for query_id, upto in self._released_upto.items():
            if index < upto:
                self._released_upto[query_id] = upto + 1
                self.late_for_query[query_id] += 1
                # Deliver immediately: downstream counts it late.
                self._cursors[query_id].stage([element], self._frontiers[query_id])
        if len(self._elements) > self.max_buffered:
            self.max_buffered = len(self._elements)

    def offer(self, element: StreamElement) -> None:
        """Feed one arriving element; stages releases on every cursor."""
        if not self._advisors:
            raise ConfigurationError("no queries registered")
        if element.arrival_time is None:
            raise ConfigurationError("shared buffer requires arrival timestamps")
        self._clock.observe(element.event_time)
        self._insert(element)
        for query_id, advisor in self._advisors.items():
            # Let each advisor observe the element and adapt its slack; the
            # advisor's own buffer is unused (we bypass it), so we feed the
            # observation path only.
            slack = advisor.observe_only(element)
            frontier = self._frontiers[query_id]
            candidate = self._clock.value - slack
            if candidate > frontier:
                frontier = candidate
                self._frontiers[query_id] = frontier
            upto = self._released_upto[query_id]
            release_end = bisect.bisect_right(self._keys, (frontier, 2**62))
            if release_end > upto:
                batch = self._elements[upto:release_end]
                self._released_upto[query_id] = release_end
                self._cursors[query_id].stage(batch, frontier)
        self._evict()

    def _evict(self) -> None:
        min_upto = min(self._released_upto.values())
        if min_upto > 0:
            del self._elements[:min_upto]
            del self._keys[:min_upto]
            for query_id in self._released_upto:
                self._released_upto[query_id] -= min_upto  # repro: numeric=exact - integer cursor rebase

    def finish(self) -> None:
        """Stream ended: stage all remaining elements on every cursor."""
        for query_id in self._advisors:
            upto = self._released_upto[query_id]
            batch = self._elements[upto:]
            self._released_upto[query_id] = len(self._elements)
            self._cursors[query_id].stage(batch, float("inf"))
            self._frontiers[query_id] = float("inf")
        self._evict()

    def buffered_count(self) -> int:
        """Elements currently held in the shared buffer."""
        return len(self._elements)


def run_shared(
    elements: list[StreamElement],
    buffer: SharedAQKBuffer,
    operators: dict[str, object],
) -> dict[str, list]:
    """Drive a shared buffer feeding one operator per query.

    Args:
        elements: Arrival-ordered stream.
        buffer: Shared buffer with every query registered; each operator in
            ``operators`` must use ``buffer.handler_for(query_id)`` as its
            disorder handler.
        operators: ``query_id -> operator`` (window aggregate operators).

    Returns:
        ``query_id -> list of WindowResult``.
    """
    results: dict[str, list] = {query_id: [] for query_id in operators}
    for element in elements:
        buffer.offer(element)
        for query_id, operator in operators.items():
            results[query_id].extend(operator.process(element))
    buffer.finish()
    for query_id, operator in operators.items():
        results[query_id].extend(operator.finish())
    return results
