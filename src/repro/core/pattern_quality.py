"""Quality-driven sequence patterns: the contribution on CEP operators.

The same estimate-then-correct loop that drives windows
(:mod:`repro.core.aqk`) and joins (:mod:`repro.core.join_quality`) applies
to sequence patterns: a late A or B deletes an entire match, so *match
recall loss* is the late-mass quantity the additive error model describes.
:class:`QualityDrivenSequencePattern` adapts the pattern operator's slack
to a recall target, using the operator's shadow-store loss counter as
observed-error feedback.
"""

from __future__ import annotations

from typing import Callable

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.pattern import PatternMatch, SequencePatternOperator
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS


class QualityDrivenSequencePattern:
    """A-then-B detection meeting a match-recall target at adaptive latency.

    ``threshold`` bounds the tolerated *recall loss*: 0.05 asks for at
    least ~95% of true matches to be detected.
    """

    def __init__(
        self,
        first_predicate: Callable[[StreamElement], bool],
        second_predicate: Callable[[StreamElement], bool],
        within: float,
        threshold: float,
        feedback_every: int = 200,
        shadow_horizon: float | None = None,
        **aqk_kwargs,
    ) -> None:
        if feedback_every <= 0:
            raise ConfigurationError(
                f"feedback_every must be positive, got {feedback_every}"
            )
        if shadow_horizon is None:
            shadow_horizon = max(60.0, 20.0 * within)
        self.handler = AQKSlackHandler(
            target=QualityTarget(threshold),
            aggregate="additive_mass",
            **aqk_kwargs,
        )
        self.pattern = SequencePatternOperator(
            first_predicate=first_predicate,
            second_predicate=second_predicate,
            within=within,
            handler=self.handler,
            shadow_horizon=shadow_horizon,
        )
        self.threshold = threshold
        self.feedback_every = feedback_every
        self._since_feedback = 0
        self._emitted_snapshot = 0
        self._lost_snapshot = 0

    def _maybe_feed_back(self) -> None:
        self._since_feedback += 1
        if self._since_feedback < self.feedback_every:
            return
        self._since_feedback = 0
        emitted_delta = self.pattern.matches_emitted - self._emitted_snapshot
        lost_delta = self.pattern.matches_lost - self._lost_snapshot
        self._emitted_snapshot = self.pattern.matches_emitted
        self._lost_snapshot = self.pattern.matches_lost
        total = emitted_delta + lost_delta
        if total > 0:
            self.handler.observe_error(lost_delta / total)

    def process(self, element: StreamElement) -> list[PatternMatch]:
        """Consume one element; feed recall-loss samples to the controller."""
        matches = self.pattern.process(element)
        self._maybe_feed_back()
        return matches

    def finish(self) -> list[PatternMatch]:
        """Stream ended: flush and emit remaining matches."""
        return self.pattern.finish()

    @property
    def current_slack(self) -> DurationS:
        return self.handler.current_slack

    @property
    def matches_emitted(self) -> int:
        return self.pattern.matches_emitted

    @property
    def matches_lost(self) -> int:
        return self.pattern.matches_lost

    def recall_loss_estimate(self) -> float:
        """Observed fraction of matches lost to lateness."""
        return self.pattern.recall_loss_estimate()
