"""Quality-driven interval joins: the contribution extended beyond windows.

Window aggregates measure quality as value error; joins measure it as
**pair recall** — the fraction of true pairs actually emitted.  A late
element can only lose pairs whose partner was already pruned, so recall
loss is exactly the "late input mass" quantity the additive error model
describes, and the same estimate-then-correct machinery applies:

* the *estimator* inverts ``recall loss <= theta`` to an allowed late
  fraction and reads the matching slack off the live delay sample,
* the *feedback* signal is the join operator's observed lost-pair
  fraction, measured against a bounded shadow store of pruned elements.

:class:`QualityDrivenIntervalJoin` packages this: an
:class:`~repro.engine.join.IntervalJoinOperator` whose slack adapts to a
recall target.
"""

from __future__ import annotations

from typing import Callable

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.join import IntervalJoinOperator, JoinResult
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import DurationS


class QualityDrivenIntervalJoin:
    """Interval join meeting a pair-recall target at adaptive latency.

    ``threshold`` bounds the tolerated *recall loss*: a threshold of 0.05
    asks for at least ~95% of true pairs to be emitted.
    """

    def __init__(
        self,
        bound: DurationS,
        side_selector: Callable[[StreamElement], str],
        threshold: float,
        feedback_every: int = 200,
        shadow_horizon: float | None = None,
        **aqk_kwargs,
    ) -> None:
        """Args:
        bound: Join predicate: ``|t_left - t_right| <= bound``.
        side_selector: Maps an element to ``"left"`` or ``"right"``.
        threshold: Tolerated fraction of pairs lost to lateness.
        feedback_every: Ingested elements between feedback samples.
        shadow_horizon: Event-time retention of pruned elements for loss
            measurement; defaults to ``max(60s, 20 * bound)``.  The horizon
            must cover the bulk of the delay tail: losses from elements
            later than ``slack + horizon`` are invisible to feedback, and
            an undersized horizon makes the controller overconfident.
        **aqk_kwargs: Forwarded to :class:`~repro.core.aqk.AQKSlackHandler`.
        """
        if feedback_every <= 0:
            raise ConfigurationError(
                f"feedback_every must be positive, got {feedback_every}"
            )
        if shadow_horizon is None:
            shadow_horizon = max(60.0, 20.0 * bound)
        self.handler = AQKSlackHandler(
            target=QualityTarget(threshold),
            aggregate="additive_mass",
            **aqk_kwargs,
        )
        self.join = IntervalJoinOperator(
            bound=bound,
            handler=self.handler,
            side_selector=side_selector,
            shadow_horizon=shadow_horizon,
        )
        self.threshold = threshold
        self.feedback_every = feedback_every
        self._since_feedback = 0
        self._emitted_snapshot = 0
        self._lost_snapshot = 0

    def _maybe_feed_back(self) -> None:
        self._since_feedback += 1
        if self._since_feedback < self.feedback_every:
            return
        self._since_feedback = 0
        emitted_delta = self.join.emitted_pairs - self._emitted_snapshot
        lost_delta = self.join.lost_pairs - self._lost_snapshot
        self._emitted_snapshot = self.join.emitted_pairs
        self._lost_snapshot = self.join.lost_pairs
        total = emitted_delta + lost_delta
        if total > 0:
            self.handler.observe_error(lost_delta / total)

    def process(self, element: StreamElement) -> list[JoinResult]:
        """Consume one element; feed recall-loss samples to the controller."""
        results = self.join.process(element)
        self._maybe_feed_back()
        return results

    def finish(self) -> list[JoinResult]:
        """Stream ended: flush and emit remaining pairs."""
        return self.join.finish()

    @property
    def current_slack(self) -> DurationS:
        return self.handler.current_slack

    @property
    def emitted_pairs(self) -> int:
        return self.join.emitted_pairs

    @property
    def lost_pairs(self) -> int:
        return self.join.lost_pairs

    def recall_loss_estimate(self) -> float:
        """Observed fraction of pairs lost to lateness."""
        return self.join.recall_loss_estimate()


def run_join(
    elements: list[StreamElement],
    operator,
) -> list[JoinResult]:
    """Drive a join operator (plain or quality-driven) over a stream."""
    results = []
    for element in elements:
        results.extend(operator.process(element))
    results.extend(operator.finish())
    return results


def join_recall(
    results: list[JoinResult],
    oracle_pairs: set[tuple[object, float, float]],
) -> float:
    """Fraction of true pairs present in the emitted results."""
    if not oracle_pairs:
        return float("nan")
    emitted = {(r.key, r.left_time, r.right_time) for r in results}
    return len(emitted & oracle_pairs) / len(oracle_pairs)
