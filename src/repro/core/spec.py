"""User-facing requirement specifications for quality-driven execution.

The paper's interface is the requirement itself: instead of tuning buffer
sizes or watermark lags, the user states either

* a :class:`QualityTarget` — "keep the mean relative error of window
  results at or below theta" — and the system minimizes latency subject to
  it, or
* a :class:`LatencyBudget` — "never delay a result by more than B seconds"
  — and the system maximizes quality subject to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QualityTarget:
    """Bound on result error; latency is minimized subject to it.

    Attributes:
        threshold: Maximum acceptable relative error (e.g. ``0.05`` = 5%).
        metric: Which error statistic the threshold constrains.  The
            controller drives the EWMA of observed per-window errors toward
            this bound; evaluation reports both mean error and the fraction
            of windows violating the threshold.
    """

    __concurrency__ = "immutable"

    threshold: float
    metric: str = "mean_relative_error"

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(
                f"quality threshold must lie in (0, 1), got {self.threshold}"
            )
        if self.metric not in ("mean_relative_error",):
            raise ConfigurationError(f"unknown quality metric {self.metric!r}")

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return f"error<={self.threshold:.3g}"


@dataclass(frozen=True)
class LatencyBudget:
    """Bound on buffering delay; quality is maximized subject to it.

    Attributes:
        seconds: Maximum slack the disorder handler may introduce.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ConfigurationError(
                f"latency budget must be non-negative, got {self.seconds}"
            )

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return f"latency<={self.seconds:.3g}s"


@dataclass(frozen=True)
class BoundedQualityTarget:
    """Quality target with a hard latency ceiling.

    "Meet the error target when the stream allows it, but never delay a
    result by more than ``budget_seconds``" — the SLA most deployments
    actually want.  The adaptive handler computes the quality-driven slack
    and clamps it at the budget; when disorder is so heavy that the budget
    cannot buy the target, latency wins and the quality shortfall shows up
    in the report.

    Attributes:
        threshold: Maximum acceptable relative error when attainable.
        budget_seconds: Hard ceiling on the buffering slack.
    """

    threshold: float
    budget_seconds: float

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold < 1.0:
            raise ConfigurationError(
                f"quality threshold must lie in (0, 1), got {self.threshold}"
            )
        if self.budget_seconds < 0:
            raise ConfigurationError(
                f"latency budget must be non-negative, got {self.budget_seconds}"
            )

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return (
            f"error<={self.threshold:.3g} while "
            f"latency<={self.budget_seconds:.3g}s"
        )
