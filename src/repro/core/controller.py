"""Feedback controllers closing the loop between model and observation.

The error models in :mod:`repro.core.estimators` are first-order
approximations; workloads violate their assumptions (values are not
exchangeable, delays correlate with values, windows are small).  The
controller layer corrects this at runtime: it compares the EWMA of
*observed* per-window errors (measured by the operator against
late-corrected truth) to the target, and scales the model's slack estimate
up or down accordingly.

Three controllers are provided:

* :class:`PIController` — the default: a multiplicative
  proportional-integral scheme on the log of the slack gain.
* :class:`AIMDController` — additive-increase/multiplicative-decrease on
  the gain, TCP-style; ablation comparison.
* :class:`PureFeedbackController` — ignores the model estimate entirely
  and walks the slack directly from feedback; the "no estimator" ablation.
* :class:`NoFeedbackController` — trusts the model blindly; the "no
  feedback" ablation.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.streams.timebase import DurationS


class SlackController(ABC):
    """Combines the model's slack estimate with observed-error feedback."""

    __concurrency__ = "single-thread"
    # The protocol holds no float state; feedback controllers that keep
    # EWMA/multiplicative accumulators override this (lint rule R19).
    __numeric__ = "exact"

    @abstractmethod
    def observe_error(self, error: float) -> None:
        """Fold one observed per-window relative error sample in."""

    @abstractmethod
    def adjust(self, k_estimate: DurationS) -> float:
        """Map the model's slack estimate to the slack actually applied."""

    def state(self) -> dict:
        """Introspection snapshot for adaptation timelines."""
        return {}


class NoFeedbackController(SlackController):
    """Pass the model estimate through unchanged (ablation)."""

    __numeric__ = "exact"  # stateless pass-through

    def observe_error(self, error: float) -> None:
        pass

    def adjust(self, k_estimate: DurationS) -> float:
        return k_estimate


class PIController(SlackController):
    """Multiplicative PI control of the slack gain.

    Maintains ``gain``; each ``adjust`` applies
    ``K = k_estimate * gain * exp(kp * residual)`` where
    ``residual = (observed_error_ewma - target) / target`` and the gain
    itself integrates the residual: ``gain *= exp(ki * residual)``.
    Positive residual (too much error) inflates the slack; negative
    residual deflates it.  The gain is clamped to ``[gain_min, gain_max]``:
    the ceiling keeps pathological feedback from wedging the controller,
    and the floor bounds how far feedback may *shrink* the model estimate —
    a low floor saves latency in steady state but blunts the estimator's
    feed-forward response when the delay regime suddenly worsens (the gain
    must climb back before the slack can follow the estimate).
    """

    __concurrency__ = "single-thread"
    __numeric__ = "reassoc-tolerant"  # EWMA residual + log-gain integration

    def __init__(
        self,
        target: float,
        kp: float = 0.3,
        ki: float = 0.15,
        ewma_alpha: float = 0.05,
        gain_min: float = 0.2,
        gain_max: float = 10.0,
    ) -> None:
        if target <= 0:
            raise ConfigurationError(f"target must be positive, got {target}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ConfigurationError(f"ewma_alpha must lie in (0,1], got {ewma_alpha}")
        if kp < 0 or ki < 0:
            raise ConfigurationError("kp and ki must be non-negative")
        if not 0 < gain_min <= 1.0 <= gain_max:
            raise ConfigurationError(
                f"need gain_min <= 1 <= gain_max, got [{gain_min}, {gain_max}]"
            )
        self.target = target
        self.kp = kp
        self.ki = ki
        self.ewma_alpha = ewma_alpha
        self.gain_min = gain_min
        self.gain_max = gain_max
        self.gain = 1.0
        self._error_ewma: float | None = None
        self.samples_seen = 0
        self.last_residual = 0.0

    def observe_error(self, error: float) -> None:
        if error < 0:
            raise ConfigurationError(f"error must be non-negative, got {error}")
        self.samples_seen += 1
        if self._error_ewma is None:
            self._error_ewma = error
        else:
            self._error_ewma += self.ewma_alpha * (error - self._error_ewma)

    def _residual(self) -> float:
        if self._error_ewma is None:
            return 0.0
        raw = (self._error_ewma - self.target) / self.target
        # Clamp so one wild sample cannot explode the exponentials.
        return max(-3.0, min(3.0, raw))

    def adjust(self, k_estimate: DurationS) -> float:
        residual = self._residual()
        self.last_residual = residual
        self.gain *= math.exp(self.ki * residual)
        self.gain = max(self.gain_min, min(self.gain_max, self.gain))
        proportional = math.exp(self.kp * residual)
        return max(0.0, k_estimate) * self.gain * proportional

    def state(self) -> dict:
        return {
            "gain": self.gain,
            "error_ewma": self._error_ewma,
            "samples": self.samples_seen,
            "residual": self.last_residual,
        }


class AIMDController(SlackController):
    """TCP-style gain control: additive increase on violation, otherwise
    multiplicative decay toward 1."""

    __numeric__ = "reassoc-tolerant"  # EWMA + multiplicative gain walk

    def __init__(
        self,
        target: float,
        increase: float = 0.25,
        decay: float = 0.98,
        ewma_alpha: float = 0.05,
        gain_max: float = 20.0,
    ) -> None:
        if target <= 0:
            raise ConfigurationError(f"target must be positive, got {target}")
        self.target = target
        self.increase = increase
        self.decay = decay
        self.ewma_alpha = ewma_alpha
        self.gain_max = gain_max
        self.gain = 1.0
        self._error_ewma: float | None = None

    def observe_error(self, error: float) -> None:
        if self._error_ewma is None:
            self._error_ewma = error
        else:
            self._error_ewma += self.ewma_alpha * (error - self._error_ewma)

    def adjust(self, k_estimate: DurationS) -> float:
        if self._error_ewma is not None:
            if self._error_ewma > self.target:
                self.gain = min(self.gain_max, self.gain + self.increase)
            else:
                self.gain = 1.0 + (self.gain - 1.0) * self.decay
        return max(0.0, k_estimate) * self.gain

    def state(self) -> dict:
        return {"gain": self.gain, "error_ewma": self._error_ewma}


class PureFeedbackController(SlackController):
    """Model-free slack search: walk K itself from feedback (ablation).

    Ignores ``k_estimate`` after initialization; multiplies its own slack
    up/down depending on whether observed error exceeds the target.  Shows
    what the estimator contributes: pure feedback converges but reacts a
    full feedback-delay slower to regime changes.
    """

    __numeric__ = "reassoc-tolerant"  # EWMA + multiplicative slack walk

    def __init__(
        self,
        target: float,
        initial_k: DurationS = 0.1,
        up: float = 1.3,
        down: float = 0.95,
        ewma_alpha: float = 0.05,
        k_max: DurationS = 3600.0,
    ) -> None:
        if target <= 0:
            raise ConfigurationError(f"target must be positive, got {target}")
        if initial_k < 0:
            raise ConfigurationError(f"initial_k must be non-negative, got {initial_k}")
        if not (up > 1.0 and 0.0 < down < 1.0):
            raise ConfigurationError("need up > 1 and 0 < down < 1")
        self.target = target
        self.k = max(initial_k, 1e-3)
        self.up = up
        self.down = down
        self.ewma_alpha = ewma_alpha
        self.k_max = k_max
        self._error_ewma: float | None = None

    def observe_error(self, error: float) -> None:
        if self._error_ewma is None:
            self._error_ewma = error
        else:
            self._error_ewma += self.ewma_alpha * (error - self._error_ewma)

    def adjust(self, k_estimate: DurationS) -> float:
        if self._error_ewma is not None:
            if self._error_ewma > self.target:
                self.k = min(self.k_max, self.k * self.up)
            else:
                self.k *= self.down
        return self.k

    def state(self) -> dict:
        return {"k": self.k, "error_ewma": self._error_ewma}
