"""The paper's contribution: quality-driven adaptive disorder handling."""

from repro.core.aqk import AdaptationRecord, AQKSlackHandler
from repro.core.calibration import (
    CalibratedErrorModel,
    CalibrationPoint,
    CalibrationResult,
    calibrate_error_model,
)
from repro.core.controller import (
    AIMDController,
    NoFeedbackController,
    PIController,
    PureFeedbackController,
    SlackController,
)
from repro.core.estimators import (
    AdditiveMassModel,
    DistinctModel,
    ErrorModel,
    ExtremumModel,
    MeanModel,
    NaiveModel,
    RankModel,
    StreamContext,
    make_error_model,
)
from repro.core.quality import (
    QualityReport,
    WindowScore,
    assess_quality,
    error_timeline,
)
from repro.core.sampling import (
    DelaySample,
    P2DelayBank,
    RateTracker,
    ReservoirSample,
    SlidingDelaySample,
    ValueStatsTracker,
    as_generator,
)
from repro.core.join_quality import (
    QualityDrivenIntervalJoin,
    join_recall,
    run_join,
)
from repro.core.pattern_quality import QualityDrivenSequencePattern
from repro.core.shared import SharedAQKBuffer, run_shared
from repro.core.spec import BoundedQualityTarget, LatencyBudget, QualityTarget

__all__ = [
    "AIMDController",
    "AQKSlackHandler",
    "AdaptationRecord",
    "AdditiveMassModel",
    "BoundedQualityTarget",
    "CalibratedErrorModel",
    "CalibrationPoint",
    "CalibrationResult",
    "DelaySample",
    "DistinctModel",
    "ErrorModel",
    "ExtremumModel",
    "LatencyBudget",
    "MeanModel",
    "NaiveModel",
    "NoFeedbackController",
    "P2DelayBank",
    "PIController",
    "PureFeedbackController",
    "QualityDrivenIntervalJoin",
    "QualityDrivenSequencePattern",
    "QualityReport",
    "QualityTarget",
    "RankModel",
    "RateTracker",
    "ReservoirSample",
    "SharedAQKBuffer",
    "SlackController",
    "SlidingDelaySample",
    "StreamContext",
    "ValueStatsTracker",
    "WindowScore",
    "as_generator",
    "assess_quality",
    "calibrate_error_model",
    "error_timeline",
    "join_recall",
    "make_error_model",
    "run_join",
    "run_shared",
]
