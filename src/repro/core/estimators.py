"""Quality estimation: mapping late-input mass to expected result error.

The adaptive handler reasons in two steps:

1. For a candidate slack ``K``, the fraction of elements arriving later
   than ``K`` is ``p = P(delay > K)``, read off the live delay sample.
   Those elements miss their windows.
2. A *per-aggregate error model* translates a missing fraction ``p`` into
   an expected relative error of the window result.  The models are
   deliberately coarse first-order approximations — the runtime feedback
   controller (see :mod:`repro.core.controller`) corrects their residual
   bias against *observed* errors, which is the division of labour the
   quality-driven design relies on.

Every model is monotone in ``p`` and therefore invertible:
``late_fraction_for_error(theta)`` answers "how much late mass can I
afford", which the handler turns into the smallest sufficient ``K`` via the
delay quantile ``K = Q(1 - p)``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.engine.aggregates import AggregateFunction
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StreamContext:
    """Live stream statistics the error models condition on.

    Attributes:
        dispersion: std/|mean| of recent values (scales mean/rank models).
        expected_window_count: Expected elements per window (``nan`` when
            unknown).
    """

    __concurrency__ = "immutable"

    dispersion: float
    expected_window_count: float

    @staticmethod
    def unknown() -> "StreamContext":
        return StreamContext(dispersion=1.0, expected_window_count=math.nan)


class ErrorModel(ABC):
    """Monotone map between late fraction ``p`` and expected error."""

    kind = "abstract"
    # Error models are stateless maps: no accumulated float state, each
    # estimate is a fresh bounded-rounding expression (lint rule R19).
    __numeric__ = "exact"

    @abstractmethod
    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        """Expected relative error when a fraction ``p`` of input is late."""

    @abstractmethod
    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        """Largest ``p`` whose expected error stays at or below ``theta``."""

    def describe(self) -> str:
        """Short label for logs and experiment tables."""
        return self.kind


def _check_fraction(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"late fraction must lie in [0,1], got {p}")
    return p


def _check_theta(theta: float) -> float:
    if theta < 0:
        raise ConfigurationError(f"error bound must be non-negative, got {theta}")
    return theta


class AdditiveMassModel(ErrorModel):
    """Count/sum: result mass is proportional to input mass.

    Missing a fraction ``p`` of (roughly exchangeable) input removes a
    fraction ``p`` of the result: ``error = p``.
    """

    kind = "additive_mass"

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return _check_fraction(p)

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        return min(1.0, _check_theta(theta))


class MeanModel(ErrorModel):
    """Mean-like aggregates: error scales with dispersion and sample size.

    Dropping a random fraction ``p`` out of ``n`` window elements shifts the
    mean by roughly ``std * sqrt(p / n)``; relative to ``|mean|`` that is
    ``dispersion * sqrt(p / n)``.  With unknown ``n`` the model degrades to
    the conservative ``dispersion * sqrt(p)``.
    """

    kind = "mean"

    def _scale(self, context: StreamContext) -> float:
        n = context.expected_window_count
        if math.isnan(n) or n < 1.0:
            n = 1.0
        return context.dispersion / math.sqrt(n)

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return self._scale(context) * math.sqrt(_check_fraction(p))

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        scale = self._scale(context)
        if scale <= 0:
            return 1.0
        return min(1.0, (_check_theta(theta) / scale) ** 2)


class ExtremumModel(ErrorModel):
    """Min/max: wrong only when an extreme element is among the late ones.

    The probability that the window extremum is late is ``p`` (late
    elements are exchangeable with on-time ones); when it is, the result
    moves by about one inter-extreme gap, modelled as a ``dispersion``-sized
    relative step: ``error = p * dispersion``.
    """

    kind = "extremum"

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return _check_fraction(p) * max(context.dispersion, 1e-9)

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        scale = max(context.dispersion, 1e-9)
        return min(1.0, _check_theta(theta) / scale)


class RankModel(ErrorModel):
    """Median/quantile: ranks shift by about half the missing mass.

    Removing a random ``p`` fraction moves the q-quantile's rank by at most
    ``p/2`` of the sample; translated through the value spread this gives
    ``error = 0.5 * p * dispersion``.
    """

    kind = "rank"

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return 0.5 * _check_fraction(p) * max(context.dispersion, 1e-9)

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        scale = 0.5 * max(context.dispersion, 1e-9)
        return min(1.0, _check_theta(theta) / scale)


class DistinctModel(ErrorModel):
    """Distinct count: each late element removes at most one distinct value.

    Under the exchangeability assumption the distinct count scales with
    input mass no faster than linearly: ``error <= p``.
    """

    kind = "distinct"

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return _check_fraction(p)

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        return min(1.0, _check_theta(theta))


class NaiveModel(ErrorModel):
    """Ablation model: ``error = p`` regardless of the aggregate.

    Identical to :class:`AdditiveMassModel` but used deliberately on
    aggregates it does not fit, to quantify what the per-aggregate models
    buy (the E5 ablation).
    """

    kind = "naive"

    def error_from_late_fraction(self, p: float, context: StreamContext) -> float:
        return _check_fraction(p)

    def late_fraction_for_error(self, theta: float, context: StreamContext) -> float:
        return min(1.0, _check_theta(theta))


_MODELS: dict[str, type[ErrorModel]] = {
    "additive_mass": AdditiveMassModel,
    "mean": MeanModel,
    "extremum": ExtremumModel,
    "rank": RankModel,
    "distinct": DistinctModel,
    "naive": NaiveModel,
}


def make_error_model(source: str | AggregateFunction) -> ErrorModel:
    """Build the error model for an aggregate (or a model kind by name)."""
    kind = source if isinstance(source, str) else source.error_model_kind
    try:
        return _MODELS[kind]()
    except KeyError:
        raise ConfigurationError(
            f"unknown error model kind {kind!r}; known: {sorted(_MODELS)}"
        ) from None
