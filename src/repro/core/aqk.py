"""AQ-K-slack: the adaptive, quality-driven disorder handler.

This is the paper's contribution.  :class:`AQKSlackHandler` is a drop-in
:class:`~repro.engine.handlers.DisorderHandler` whose slack ``K`` is chosen
at runtime from a user requirement instead of being configured:

* **Quality-target mode** (:class:`~repro.core.spec.QualityTarget`): every
  adaptation round the handler

  1. inverts the aggregate's error model to the *allowed late fraction*
     ``p = late_fraction_for_error(theta)``,
  2. reads the slack that keeps all but ``p`` of elements on time off the
     live delay sample: ``K_est = delay_quantile(1 - p)``,
  3. passes ``K_est`` through the feedback controller, which scales it by
     the accumulated bias between *observed* window errors (reported by
     the aggregation operator via ``observe_error``) and the target.

* **Latency-budget mode** (:class:`~repro.core.spec.LatencyBudget`): the
  slack is the largest value that both stays within the budget and is
  useful — ``min(budget, delay_quantile(q_cap))`` — maximizing quality
  without ever exceeding the bound, and without wasting latency when the
  stream is nearly in order.

The frontier is kept monotone even while ``K`` shrinks and grows, so
downstream window lifecycles stay well-defined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.controller import PIController, SlackController
from repro.core.estimators import ErrorModel, StreamContext, make_error_model
from repro.core.sampling import (
    DelaySample,
    RateTracker,
    SlidingDelaySample,
    ValueStatsTracker,
)
from repro.core.spec import BoundedQualityTarget, LatencyBudget, QualityTarget
from repro.engine.aggregates import AggregateFunction
from repro.engine.buffer import SortingBuffer
from repro.engine.handlers import (
    MIN_BULK_BATCH,
    Checkpoints,
    DisorderHandler,
    bulk_release,
)
from repro.errors import ConfigurationError
from repro.streams.element import StreamElement
from repro.streams.timebase import (
    DurationS,
    EventTimeFrontier,
    EventTimeStamp,
    MonotoneFrontier,
)


@dataclass(frozen=True)
class AdaptationRecord:
    """One adaptation round, for timelines and debugging."""

    __concurrency__ = "immutable"

    arrival_time: float
    allowed_late_fraction: float
    k_estimate: float
    k_applied: float
    observed_error_ewma: float | None
    controller_gain: float | None


class AQKSlackHandler(DisorderHandler):
    """Adaptive quality-driven K-slack buffering."""

    __concurrency__ = "single-thread"

    name = "aq-k-slack"

    def __init__(
        self,
        target: QualityTarget | BoundedQualityTarget | LatencyBudget,
        aggregate: AggregateFunction | str | ErrorModel,
        window_size: DurationS | None = None,
        delay_sample: DelaySample | None = None,
        controller: SlackController | None = None,
        adapt_interval: DurationS = 1.0,
        warmup_elements: int = 50,
        k_min: DurationS = 0.0,
        k_max: DurationS = math.inf,
        min_late_fraction: float = 1e-4,
        budget_quantile_cap: float = 0.999,
        estimation_confidence: float = 0.0,
    ) -> None:
        """Args:
        target: The user requirement (quality target or latency budget).
        aggregate: The aggregate the downstream operator computes (or an
            error-model kind / instance) — selects the error model.
        window_size: Window length of the downstream query, used to
            estimate elements-per-window for the mean/rank models.
        delay_sample: Delay tracker; defaults to a sliding sample of the
            most recent 2000 delays.
        controller: Feedback controller; defaults to a
            :class:`~repro.core.controller.PIController` in quality mode.
        adapt_interval: Minimum arrival-time seconds between adaptations.
        warmup_elements: Elements observed before the first adaptation;
            until then ``K`` stays at ``k_min`` plus whatever the sample
            already supports at the 95th percentile (a safe cold start).
        k_min / k_max: Hard clamps on the applied slack.
        min_late_fraction: Floor on the allowed late fraction, preventing
            the required delay quantile from running into the sample max
            for very strict targets.
        budget_quantile_cap: In budget mode, the delay quantile beyond
            which extra slack is considered useless.
        estimation_confidence: z-score padding of the delay-quantile rank
            against sampling error (0 disables).  Positive values make the
            handler conservative while the delay sample is small.
        """
        if adapt_interval <= 0:
            raise ConfigurationError(
                f"adapt_interval must be positive, got {adapt_interval}"
            )
        if warmup_elements < 0:
            raise ConfigurationError(
                f"warmup_elements must be non-negative, got {warmup_elements}"
            )
        if not 0 <= k_min <= k_max:
            raise ConfigurationError(f"need 0 <= k_min <= k_max, got {k_min}, {k_max}")
        if not 0 < min_late_fraction <= 1:
            raise ConfigurationError(
                f"min_late_fraction must lie in (0,1], got {min_late_fraction}"
            )
        if not 0 < budget_quantile_cap <= 1:
            raise ConfigurationError(
                f"budget_quantile_cap must lie in (0,1], got {budget_quantile_cap}"
            )
        if estimation_confidence < 0:
            raise ConfigurationError(
                "estimation_confidence must be non-negative, got "
                f"{estimation_confidence}"
            )

        self.target = target
        if isinstance(aggregate, ErrorModel):
            self.error_model = aggregate
        else:
            self.error_model = make_error_model(aggregate)
        self.window_size = window_size
        self.delay_sample = (
            delay_sample if delay_sample is not None else SlidingDelaySample()
        )
        if controller is None and isinstance(
            target, (QualityTarget, BoundedQualityTarget)
        ):
            controller = PIController(target=target.threshold)
        self.controller = controller
        self.adapt_interval = adapt_interval
        self.warmup_elements = warmup_elements
        self.k_min = k_min
        self.k_max = k_max
        self.min_late_fraction = min_late_fraction
        self.budget_quantile_cap = budget_quantile_cap
        self.estimation_confidence = estimation_confidence

        self.k = k_min
        self.adaptations: list[AdaptationRecord] = []
        self._value_stats = ValueStatsTracker()
        self._rate = RateTracker()
        self._clock = EventTimeFrontier()
        self._buffer = SortingBuffer()
        self._front = MonotoneFrontier()
        self._last_adapt_arrival = float("-inf")
        self._elements_seen = 0

    # ------------------------------------------------------------------ #
    # adaptation

    def _context(self) -> StreamContext:
        expected = math.nan
        if self.window_size is not None:
            expected = self._rate.expected_window_count(self.window_size)
        return StreamContext(
            dispersion=self._value_stats.dispersion,
            expected_window_count=expected,
        )

    def _confident_quantile(self, q: float) -> float:
        """Quantile query padded for sampling uncertainty.

        With ``estimation_confidence`` z > 0 the rank is shifted up by z
        standard errors of the empirical quantile rank
        (``sqrt(q(1-q)/n)``), so a freshly-filled or small delay sample
        yields a conservatively larger slack; the padding vanishes as the
        sample grows.
        """
        z = self.estimation_confidence
        if z > 0:
            n = max(1, self.delay_sample.count)
            q = q + z * math.sqrt(q * (1.0 - q) / n)
            q = min(1.0, q)
        return self.delay_sample.quantile(q)

    def _adapt_quality(self, arrival_time: float, theta: float) -> None:
        context = self._context()
        p_allowed = self.error_model.late_fraction_for_error(theta, context)
        p_allowed = max(self.min_late_fraction, min(1.0, p_allowed))
        if p_allowed >= 1.0:
            k_estimate = 0.0
        else:
            k_estimate = self._confident_quantile(1.0 - p_allowed)
        if self.controller is not None:
            k_applied = self.controller.adjust(k_estimate)
        else:
            k_applied = k_estimate
        self.k = max(self.k_min, min(self.k_max, k_applied))
        state = self.controller.state() if self.controller is not None else {}
        self.adaptations.append(
            AdaptationRecord(
                arrival_time=arrival_time,
                allowed_late_fraction=p_allowed,
                k_estimate=k_estimate,
                k_applied=self.k,
                observed_error_ewma=state.get("error_ewma"),
                controller_gain=state.get("gain"),
            )
        )

    def _adapt_budget(self, arrival_time: float, budget: float) -> None:
        useful = self.delay_sample.quantile(self.budget_quantile_cap)
        k_applied = min(budget, useful)
        self.k = max(self.k_min, min(self.k_max, k_applied))
        self.adaptations.append(
            AdaptationRecord(
                arrival_time=arrival_time,
                allowed_late_fraction=math.nan,
                k_estimate=useful,
                k_applied=self.k,
                observed_error_ewma=None,
                controller_gain=None,
            )
        )

    def _maybe_adapt(self, arrival_time: float) -> None:
        if self._elements_seen < self.warmup_elements:
            return
        if arrival_time - self._last_adapt_arrival < self.adapt_interval:
            return
        self._last_adapt_arrival = arrival_time
        self._run_adaptation(arrival_time)

    def _run_adaptation(self, arrival_time: float) -> None:
        k_before = self.k
        if isinstance(self.target, QualityTarget):
            self._adapt_quality(arrival_time, self.target.threshold)
        elif isinstance(self.target, BoundedQualityTarget):
            self._adapt_quality(arrival_time, self.target.threshold)
            if self.k > self.target.budget_seconds:
                self.k = self.target.budget_seconds
                self.adaptations[-1] = AdaptationRecord(
                    arrival_time=self.adaptations[-1].arrival_time,
                    allowed_late_fraction=self.adaptations[-1].allowed_late_fraction,
                    k_estimate=self.adaptations[-1].k_estimate,
                    k_applied=self.k,
                    observed_error_ewma=self.adaptations[-1].observed_error_ewma,
                    controller_gain=self.adaptations[-1].controller_gain,
                )
        else:
            self._adapt_budget(arrival_time, self.target.seconds)
        if self.tracer.enabled:
            record = self.adaptations[-1]
            state = self.controller.state() if self.controller is not None else {}
            self.tracer.adaptation(
                arrival_time,
                k_before=k_before,
                k_after=record.k_applied,
                k_estimate=record.k_estimate,
                allowed_late_fraction=record.allowed_late_fraction,
                error_ewma=record.observed_error_ewma,
                gain=record.controller_gain,
                residual=state.get("residual"),
                target=self.target.describe(),
            )

    # ------------------------------------------------------------------ #
    # DisorderHandler protocol

    def offer(self, element: StreamElement) -> list[StreamElement]:
        if element.arrival_time is None:
            raise ConfigurationError(
                "AQKSlackHandler requires elements with arrival timestamps"
            )
        self._elements_seen += 1
        self.delay_sample.observe(element.delay)
        self._value_stats.observe(element.value)
        self._rate.observe(element.event_time)
        self._clock.observe(element.event_time)
        self._buffer.push(element)
        self._maybe_adapt(element.arrival_time)
        return self._buffer.release_until(
            self._front.advance(self._clock.value - self.k)
        )

    def observe_only(self, element: StreamElement) -> DurationS:
        """Feed the adaptation path without buffering; return current slack.

        Shared drivers (:class:`~repro.core.shared.SharedAQKBuffer`,
        :class:`~repro.engine.partial_tree.SharedSliceStore`) keep one copy
        of the stream and run their own release schedule, so this handler's
        private buffer and clock must stay untouched — but the advisor still
        has to see every element to estimate delays and adapt ``K``.  This
        is exactly the observation prefix of :meth:`offer` minus the
        buffer/clock updates; the caller applies the returned slack against
        its own shared clock.
        """
        if element.arrival_time is None:
            raise ConfigurationError(
                "AQKSlackHandler requires elements with arrival timestamps"
            )
        self._elements_seen += 1
        self.delay_sample.observe(element.delay)
        self._value_stats.observe(element.value)
        self._rate.observe(element.event_time)
        self._maybe_adapt(element.arrival_time)
        return self.k

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        """Batched offer with exact adaptation-round semantics.

        Adaptation firing positions depend only on arrival times and the
        element counter, so they are precomputed; the batch is then split at
        those positions.  Within a segment no adaptation can fire, so the
        sampler updates are bulk-folded and the buffer released once — the
        adaptation at a segment boundary sees exactly the sampler state (and
        produces exactly the slack) the scalar path would.  Elements before
        a boundary release under the old K, the boundary element under the
        new K, matching ``offer`` element-for-element.
        """
        if len(elements) < MIN_BULK_BATCH:
            return DisorderHandler.offer_many(self, elements)
        n = len(elements)
        for element in elements:
            if element.arrival_time is None:
                raise ConfigurationError(
                    "AQKSlackHandler requires elements with arrival timestamps"
                )
        event_times = np.fromiter(
            (element.event_time for element in elements), dtype=float, count=n
        )
        arrivals = np.fromiter(
            (element.arrival_time for element in elements), dtype=float, count=n
        )
        delays = arrivals - event_times
        clocks = np.maximum.accumulate(event_times)
        np.maximum(clocks, self._clock.value, out=clocks)

        arrivals_list = arrivals.tolist()
        boundaries: list[int] = []
        seen = self._elements_seen
        last_adapt = self._last_adapt_arrival
        warmup = self.warmup_elements
        interval = self.adapt_interval
        for index, arrival in enumerate(arrivals_list):
            seen += 1
            if seen >= warmup and arrival - last_adapt >= interval:
                last_adapt = arrival
                boundaries.append(index)

        released_all: list[StreamElement] = []
        checkpoints: Checkpoints = []
        position = 0
        for boundary in boundaries:
            self._observe_segment(elements, event_times, delays, position, boundary + 1)
            if boundary > position:
                self._release_segment(
                    elements, clocks, position, boundary, released_all, checkpoints
                )
            self._last_adapt_arrival = arrivals_list[boundary]
            self._run_adaptation(arrivals_list[boundary])
            self._release_segment(
                elements, clocks, boundary, boundary + 1, released_all, checkpoints
            )
            position = boundary + 1
        if position < n:
            self._observe_segment(elements, event_times, delays, position, n)
            self._release_segment(
                elements, clocks, position, n, released_all, checkpoints
            )
        self._clock.observe_many(float(clocks[-1]), n)
        return released_all, checkpoints

    def _observe_segment(
        self,
        elements: list[StreamElement],
        event_times: "np.ndarray",
        delays: "np.ndarray",
        lo: int,
        hi: int,
    ) -> None:
        """Fold one segment's delays/values/timestamps into the samplers."""
        self._elements_seen += hi - lo
        self.delay_sample.observe_many(delays[lo:hi])
        self._value_stats.observe_many(elements[index].value for index in range(lo, hi))
        segment = event_times[lo:hi]
        self._rate.observe_many(float(segment.min()), float(segment.max()), hi - lo)

    def _release_segment(
        self,
        elements: list[StreamElement],
        clocks: "np.ndarray",
        lo: int,
        hi: int,
        released_all: list[StreamElement],
        checkpoints: Checkpoints,
    ) -> None:
        """Push and release one constant-K segment through the buffer."""
        frontiers = clocks[lo:hi] - self.k
        np.maximum(frontiers, self._front.value, out=frontiers)
        self._front.advance(float(frontiers[-1]))
        released, offsets = bulk_release(self._buffer, elements[lo:hi], frontiers)
        base = len(released_all)
        released_all.extend(released)
        checkpoints.extend(
            (base + offset, frontier)
            for offset, frontier in zip(offsets, frontiers.tolist())
        )

    def flush(self) -> list[StreamElement]:
        return self._buffer.drain()

    @property
    def frontier(self) -> EventTimeStamp:
        return self._front.value

    @property
    def current_slack(self) -> DurationS:
        return self.k

    def buffered_count(self) -> int:
        return len(self._buffer)

    def max_buffered_count(self) -> int:
        return self._buffer.max_size

    def released_count(self) -> int:
        return self._buffer.released_total

    def observe_error(self, error: float) -> None:
        if self.controller is not None:
            self.controller.observe_error(error)

    def next_adaptation_offset(
        self, elements: list[StreamElement], start: int, stop: int
    ) -> int | None:
        """First adaptation firing strictly after ``start`` (see base class).

        Only meaningful in quality mode: budget adaptations read the delay
        sample alone, which window retirement never touches, so they need
        no chunk split.  Firing positions depend only on arrival times and
        the element counter, so they are simulated without side effects.
        """
        if self.controller is None or not isinstance(
            self.target, (QualityTarget, BoundedQualityTarget)
        ):
            return None
        seen = self._elements_seen
        last_adapt = self._last_adapt_arrival
        warmup = self.warmup_elements
        interval = self.adapt_interval
        for index in range(start, stop):
            arrival = elements[index].arrival_time
            if arrival is None:
                return None  # offer() will raise; no point splitting
            seen += 1
            if seen >= warmup and arrival - last_adapt >= interval:
                if index > start:
                    return index
                last_adapt = arrival
        return None

    def describe(self) -> str:
        return f"aq-k-slack({self.target.describe()}, {self.error_model.describe()})"
