"""Online samplers and trackers feeding the quality estimator.

The adaptive handler needs three live statistics:

* the **delay distribution** of recent elements (to invert "allowed late
  fraction" into a slack K) — :class:`SlidingDelaySample` (recency-biased,
  robust to regime changes) or :class:`ReservoirSample` (uniform over
  history, used in the sampling ablation);
* the **value dispersion** of the stream (scales the error models of mean
  and rank aggregates) — :class:`ValueStatsTracker`;
* the **event rate** (expected elements per window) —
  :class:`RateTracker`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.streams.timebase import DurationS, EventTimeStamp


def as_generator(seed: int | np.random.Generator) -> np.random.Generator:
    """Coerce an int seed — or pass through an existing ``Generator``.

    Components that consume randomness accept ``int | Generator`` and route
    it through this helper, so experiments can either give each component an
    independent reproducible seed or thread one shared generator through the
    whole pipeline (the streams layer already takes explicit generators).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


class DelaySample:
    """Interface of delay trackers: observe delays, answer quantiles."""

    __concurrency__ = "single-thread"
    # The protocol holds no float state; trackers declare their own
    # discipline (lint rule R19).
    __numeric__ = "exact"

    def observe(self, delay: DurationS) -> None:
        """Fold one element delay (seconds, non-negative) into the sample."""
        raise NotImplementedError

    def observe_many(self, delays) -> None:
        """Fold a batch of delays; equivalent to repeated :meth:`observe`.

        Samplers whose per-observation state transition is order-dependent
        beyond "the set of recent values" (e.g. reservoir RNG draws) keep the
        scalar loop so batched and scalar runs stay bit-identical.
        """
        for delay in delays:
            self.observe(delay)

    def quantile(self, q: float) -> float:
        """The q-quantile of the tracked delays (0.0 before any data)."""
        raise NotImplementedError

    @property
    def count(self) -> int:
        """Total delays observed over the sample's lifetime."""
        raise NotImplementedError


class SlidingDelaySample(DelaySample):
    """Keeps the most recent ``capacity`` delays in a ring buffer.

    Quantiles reflect only recent behaviour, so the estimator reacts to
    delay regime changes within one buffer turnover.  Quantile queries sort
    lazily and cache until the next observation.
    """

    __concurrency__ = "single-thread"
    __numeric__ = "reassoc-tolerant"  # interpolated quantiles over raw values

    def __init__(self, capacity: int = 2000) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._ring = np.zeros(capacity, dtype=float)
        self._filled = 0
        self._head = 0
        self._sorted_cache: np.ndarray | None = None
        self._total = 0

    def observe(self, delay: DurationS) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self._ring[self._head] = delay
        self._head = (self._head + 1) % self.capacity
        self._filled = min(self._filled + 1, self.capacity)
        self._total += 1
        self._sorted_cache = None

    def observe_many(self, delays) -> None:
        """Bulk ring write: one cache invalidation for the whole batch.

        The ring always holds the most recent ``capacity`` delays (in some
        rotation), which is the only property quantile/max queries read — so
        this is exactly equivalent to sequential :meth:`observe` calls.
        """
        batch = np.asarray(delays, dtype=float)
        n = int(batch.size)
        if n == 0:
            return
        if np.any(batch < 0):
            raise ConfigurationError("delays must be non-negative")
        capacity = self.capacity
        if n >= capacity:
            self._ring[:] = batch[-capacity:]
            self._head = 0
            self._filled = capacity
        else:
            head = self._head
            first = min(n, capacity - head)
            self._ring[head : head + first] = batch[:first]
            rest = n - first
            if rest:
                self._ring[:rest] = batch[first:]
            self._head = (head + n) % capacity
            self._filled = min(self._filled + n, capacity)
        self._total += n
        self._sorted_cache = None

    def _sorted(self) -> np.ndarray:
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self._ring[: self._filled])
        return self._sorted_cache

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0,1], got {q}")
        if self._filled == 0:
            return 0.0
        ordered = self._sorted()
        rank = min(self._filled - 1, int(math.ceil(q * self._filled)) - 1)
        return float(ordered[max(rank, 0)])

    @property
    def count(self) -> int:
        return self._total

    @property
    def window_fill(self) -> int:
        return self._filled

    def max_recent(self) -> float:
        """Largest delay currently inside the sliding window."""
        if self._filled == 0:
            return 0.0
        return float(self._ring[: self._filled].max())


class ReservoirSample(DelaySample):
    """Classic reservoir sampling: uniform over the whole stream history.

    Reacts slowly to non-stationary delays — included as the comparison
    point of the sampling ablation (E14).
    """

    __numeric__ = "reassoc-tolerant"  # interpolated quantiles over raw values

    def __init__(
        self, capacity: int = 2000, seed: int | np.random.Generator = 7
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._values: list[float] = []
        self._seen = 0
        self._rng = as_generator(seed)

    def observe(self, delay: DurationS) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self._seen += 1
        if len(self._values) < self.capacity:
            self._values.append(delay)
            return
        index = int(self._rng.integers(0, self._seen))
        if index < self.capacity:
            self._values[index] = delay

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0,1], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(math.ceil(q * len(ordered))) - 1)
        return ordered[max(rank, 0)]

    @property
    def count(self) -> int:
        return self._seen


class ValueStatsTracker:
    """EWMA mean / variance of stream values (dispersion for error models).

    Exponentially weighted so dispersion follows the workload; ``alpha`` is
    the per-observation decay.
    """

    __concurrency__ = "single-thread"
    __numeric__ = "reassoc-tolerant"  # EWMA contractions; non-finite inputs skipped

    def __init__(self, alpha: float = 0.001) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must lie in (0,1], got {alpha}")
        self.alpha = alpha
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Fold one stream value in; non-numeric values are ignored."""
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return
        if math.isnan(value) or math.isinf(value):
            return
        self._count += 1
        if self._count == 1:
            self._mean = float(value)
            self._var = 0.0
            return
        delta = value - self._mean
        self._mean += self.alpha * delta
        self._var = (1 - self.alpha) * (self._var + self.alpha * delta * delta)

    def observe_many(self, values) -> None:
        """Fold a batch of values; identical to repeated :meth:`observe`.

        The EWMA recurrence is inherently sequential, so this is a loop with
        the method lookups hoisted — it exists for call-site symmetry with
        the other trackers' bulk paths.
        """
        observe = self.observe
        for value in values:
            observe(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return math.sqrt(max(self._var, 0.0))

    @property
    def dispersion(self) -> float:
        """Coefficient-of-variation-like ratio ``std / max(|mean|, eps)``."""
        return self.std / max(abs(self._mean), 1e-9)


class RateTracker:
    """Event rate in event time, robust to arrival-order observation.

    Observations arrive in *arrival* order, so consecutive event-time gaps
    say nothing about the rate (they are dominated by the delay spread).
    The tracker therefore estimates rate as ``(count - 1) / event-time
    span``, which is order-invariant; it assumes a roughly stationary rate
    over the stream's lifetime.
    """

    __concurrency__ = "single-thread"
    __numeric__ = "exact"  # min/max/count only, no float accumulation

    def __init__(self) -> None:
        self._min_event: float | None = None
        self._max_event: float | None = None
        self._count = 0

    def observe(self, event_time: EventTimeStamp) -> None:
        """Fold one event timestamp into the rate estimate."""
        self._count += 1
        if self._min_event is None or event_time < self._min_event:
            self._min_event = event_time
        if self._max_event is None or event_time > self._max_event:
            self._max_event = event_time

    def observe_many(self, min_event: float, max_event: EventTimeStamp, count: int) -> None:
        """Fold a pre-reduced batch (its min/max timestamp and size) at once."""
        if count <= 0:
            return
        self._count += count
        if self._min_event is None or min_event < self._min_event:
            self._min_event = min_event
        if self._max_event is None or max_event > self._max_event:
            self._max_event = max_event

    @property
    def rate(self) -> float:
        """Events per second of event time; ``nan`` until two distinct
        timestamps have been seen."""
        if self._count < 2 or self._min_event is None:
            return math.nan
        span = self._max_event - self._min_event
        if span <= 0:
            return math.nan
        return (self._count - 1) / span

    def expected_window_count(self, window_size: DurationS) -> float:
        """Expected elements per window of ``window_size`` seconds."""
        rate = self.rate
        if math.isnan(rate):
            return math.nan
        return rate * window_size


class P2DelayBank(DelaySample):
    """O(1)-memory delay tracker: a bank of P-squared sketches.

    Tracks a fixed grid of quantiles with one
    :class:`~repro.engine.sketches.P2Quantile` each and answers arbitrary
    quantile queries by interpolating between grid points.  Like
    :class:`ReservoirSample` it weighs all history uniformly, so it shares
    the reservoir's slow reaction to regime changes (ablation E14) — its
    advantage is constant memory regardless of stream length.
    """

    __numeric__ = "reassoc-tolerant"  # P-squared parabolic interpolation

    DEFAULT_GRID = (0.5, 0.8, 0.9, 0.95, 0.99, 0.995, 0.999)

    def __init__(self, grid: tuple[float, ...] = DEFAULT_GRID) -> None:
        from repro.engine.sketches import P2Quantile

        if not grid or list(grid) != sorted(grid):
            raise ConfigurationError("grid must be non-empty and ascending")
        if any(not 0.0 < q < 1.0 for q in grid):
            raise ConfigurationError("grid quantiles must lie in (0, 1)")
        self.grid = tuple(grid)
        self._sketches = [P2Quantile(q) for q in self.grid]
        self._min = math.inf
        self._max = 0.0
        self._count = 0

    def observe(self, delay: DurationS) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay}")
        self._count += 1
        self._min = min(self._min, delay)
        self._max = max(self._max, delay)
        for sketch in self._sketches:
            sketch.observe(delay)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0,1], got {q}")
        if self._count == 0:
            return 0.0
        points = [(0.0, self._min)]
        points += [(g, s.value()) for g, s in zip(self.grid, self._sketches)]
        points += [(1.0, self._max)]
        for (q_low, v_low), (q_high, v_high) in zip(points, points[1:]):
            if q_low <= q <= q_high:
                if q_high == q_low:
                    return v_high
                fraction = (q - q_low) / (q_high - q_low)
                # Sketch estimates are not guaranteed monotone across the
                # grid; clamp so interpolation never extrapolates wildly.
                low, high = min(v_low, v_high), max(v_low, v_high)
                return low + fraction * (high - low)
        return self._max

    @property
    def count(self) -> int:
        return self._count
