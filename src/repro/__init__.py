"""repro — Quality-Driven Continuous Query Execution over Out-of-Order Data Streams.

A from-scratch Python reproduction of the SIGMOD 2015 system: a continuous
query engine with pluggable disorder handling, whose centerpiece is the
adaptive quality-driven K-slack operator (:class:`~repro.core.aqk.AQKSlackHandler`)
that meets a user-specified result-quality target at minimal latency.

Quickstart::

    import numpy as np
    from repro import ContinuousQuery, sliding
    from repro.streams import generate_stream, inject_disorder, ExponentialDelay

    rng = np.random.default_rng(42)
    stream = inject_disorder(
        generate_stream(duration=120, rate=100, rng=rng),
        ExponentialDelay(0.5),
        rng,
    )
    run = (
        ContinuousQuery()
        .from_elements(stream)
        .window(sliding(10, 2))
        .aggregate("mean")
        .with_quality(0.05)
        .run(assess=True)
    )
    print(run.report.mean_error, run.latency.mean)
"""

from repro.core.aqk import AQKSlackHandler
from repro.core.quality import QualityReport, assess_quality
from repro.core.spec import LatencyBudget, QualityTarget
from repro.engine.aggregates import make_aggregate
from repro.engine.handlers import KSlackHandler, MPKSlackHandler, NoBufferHandler
from repro.engine.operator import WindowResult
from repro.engine.pipeline import run_pipeline
from repro.engine.windows import Window, sliding, tumbling
from repro.queries.language import ContinuousQuery, QueryRun
from repro.queries.sql import parse_query

__version__ = "1.0.0"

__all__ = [
    "AQKSlackHandler",
    "ContinuousQuery",
    "KSlackHandler",
    "LatencyBudget",
    "MPKSlackHandler",
    "NoBufferHandler",
    "QualityReport",
    "QualityTarget",
    "QueryRun",
    "Window",
    "WindowResult",
    "__version__",
    "assess_quality",
    "make_aggregate",
    "parse_query",
    "run_pipeline",
    "sliding",
    "tumbling",
]
