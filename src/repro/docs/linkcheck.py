"""Markdown link checking for the repository documentation.

Validates every inline link in the given Markdown files: relative links
must point at files that exist, and fragment links (``#section`` — on
their own or after a ``.md`` path) must match a heading slug in the
target document.  External ``http(s)``/``mailto`` links are not fetched —
CI runs offline — only well-formedness is assumed.  Links inside fenced
code blocks are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path

_LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_FENCE_PATTERN = re.compile(r"^(```|~~~)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line."""
    text = heading.strip().lower()
    text = text.replace("`", "")
    # Markdown emphasis/links contribute their text only.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = re.sub(r"[*_]", "", text)
    text = re.sub(r"[^0-9a-zÀ-￿\s-]", "", text)
    return re.sub(r"\s", "-", text)


def _heading_slugs(path: Path) -> set[str]:
    """All anchor slugs a Markdown document exposes (with dedup suffixes)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence or not line.startswith("#"):
            continue
        heading = line.lstrip("#").strip()
        slug = _slugify(heading)
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def _iter_links(path: Path) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every inline link outside code fences."""
    links: list[tuple[int, str]] = []
    in_fence = False
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE_PATTERN.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans may show link syntax as an example.
        visible = re.sub(r"`[^`]*`", "", line)
        for match in _LINK_PATTERN.finditer(visible):
            links.append((number, match.group(1)))
    return links


def check_links(paths: list[Path]) -> list[str]:
    """Validate Markdown links; returns human-readable problem strings.

    An empty list means every relative link resolved and every fragment
    matched a heading in its target document.
    """
    problems: list[str] = []
    for path in paths:
        for line_number, target in _iter_links(path):
            if target.startswith(_EXTERNAL_PREFIXES):
                continue
            location = f"{path}:{line_number}"
            file_part, _, fragment = target.partition("#")
            if file_part:
                resolved = (path.parent / file_part).resolve()
                if not resolved.exists():
                    problems.append(
                        f"{location}: broken link {target!r} "
                        f"({resolved} does not exist)"
                    )
                    continue
            else:
                resolved = path.resolve()
            if fragment and resolved.suffix == ".md":
                if fragment not in _heading_slugs(resolved):
                    problems.append(
                        f"{location}: broken anchor {target!r} "
                        f"(no heading '#{fragment}' in {resolved.name})"
                    )
    return problems
