"""CLI for the documentation tooling: ``python -m repro.docs``.

With no flags, regenerates ``docs/API.md`` from the source tree.  With
``--check``, compares the would-be output against the committed file and
exits 1 on drift (the CI staleness gate).  With ``--check-links``,
validates relative links and heading anchors across ``README.md`` and
``docs/*.md``.
"""

from __future__ import annotations

import argparse
import difflib
import sys
from pathlib import Path

from repro.docs.generator import generate_api_markdown
from repro.docs.linkcheck import check_links


def _docs_targets(root: Path) -> list[Path]:
    targets = [root / "README.md"]
    targets.extend(sorted((root / "docs").glob("*.md")))
    return [target for target in targets if target.exists()]


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.docs``; returns an exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.docs",
        description="Generate docs/API.md and check documentation health.",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=Path.cwd(),
        help="repository root (must contain src/repro; default: cwd)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed docs/API.md instead of writing",
    )
    parser.add_argument(
        "--check-links",
        action="store_true",
        help="validate Markdown links in README.md and docs/*.md",
    )
    args = parser.parse_args(argv)

    root: Path = args.root
    src_root = root / "src"
    if not (src_root / "repro").is_dir():
        print(f"error: {src_root}/repro not found; pass --root", file=sys.stderr)
        return 2

    if args.check_links:
        problems = check_links(_docs_targets(root))
        for problem in problems:
            print(problem, file=sys.stderr)
        if problems:
            print(f"{len(problems)} broken link(s)", file=sys.stderr)
            return 1
        print(f"links ok across {len(_docs_targets(root))} documents")
        return 0

    generated = generate_api_markdown(src_root)
    api_path = root / "docs" / "API.md"
    if args.check:
        current = api_path.read_text(encoding="utf-8") if api_path.exists() else ""
        if current == generated:
            print("docs/API.md is up to date")
            return 0
        diff = difflib.unified_diff(
            current.splitlines(keepends=True),
            generated.splitlines(keepends=True),
            fromfile="docs/API.md (committed)",
            tofile="docs/API.md (generated)",
        )
        sys.stderr.writelines(diff)
        print(
            "docs/API.md is stale; regenerate with `python -m repro.docs`",
            file=sys.stderr,
        )
        return 1

    api_path.parent.mkdir(parents=True, exist_ok=True)
    api_path.write_text(generated, encoding="utf-8")
    print(f"wrote {api_path} ({len(generated.splitlines())} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
