"""Documentation tooling: API-reference generation and link checking.

Stdlib-only (``ast`` + ``re``), import-free over the code it documents:
the generator parses the source tree rather than importing it, so the
output is byte-identical across interpreter versions and ``--check`` can
gate staleness with a string comparison.  Entry point::

    python -m repro.docs               # regenerate docs/API.md
    python -m repro.docs --check       # exit 1 if docs/API.md is stale
    python -m repro.docs --check-links # validate Markdown links/anchors
"""

from repro.docs.generator import (
    GENERATED_BANNER,
    generate_api_markdown,
    iter_source_modules,
)
from repro.docs.linkcheck import check_links

__all__ = [
    "GENERATED_BANNER",
    "check_links",
    "generate_api_markdown",
    "iter_source_modules",
]
