"""Lint-rule adapters for the whole-program time-domain analysis.

Each rule is a thin filter over one shared :class:`~repro.analysis.
dataflow.propagation.AnalysisResult` — the analysis runs once per
:class:`~repro.analysis.lint.model.Project` (cached on the project) and
the rules select violation kinds from it, so adding rules costs nothing
at analysis time.

========  ============================================================
R06       cross-domain comparison/arithmetic (event ⋈ proc time,
          instant + instant)
R07       frontier-contract conformance: DisorderHandlers advance their
          frontier only through a sanctioned store, with event-time
          arguments, and never write the store's internals
R08       duration/timestamp mixing in slack computations
          (``engine``/``core`` scope)
R09       domain-consistent ``RunMetrics`` fields
R10       unannotated public time-typed APIs in ``engine``/``core``
========  ============================================================
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint.model import Finding, Project, SourceFile
from repro.analysis.lint.rules import Rule
# The propagation name is bound at call time (``propagation.analysis_for``)
# rather than import time: the analysis packages form a cycle
# (lint -> dataflow.rules -> propagation -> lint.model), so an
# import-time ``from ... import analysis_for`` only resolves when the
# cycle happens to be entered via ``repro.analysis.lint``.
from repro.analysis.dataflow import propagation


class _DataflowRule(Rule):
    """Shared plumbing: select violation kinds for one source file."""

    #: Names of violation-kind constants on :mod:`.propagation`, resolved
    #: at check time (the constants are not yet defined when this module
    #: is imported mid-cycle).
    kind_names: tuple[str, ...] = ()
    engine_only: bool = False

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if self.engine_only and not source.engine_scoped:
            return
        result = propagation.analysis_for(project)
        kinds = tuple(getattr(propagation, name) for name in self.kind_names)
        for violation in result.of_kind(*kinds):
            if violation.path != source.display_path:
                continue
            yield Finding(
                rule=self.id,
                path=violation.path,
                line=violation.line,
                col=violation.col,
                message=violation.message,
            )


class CrossDomainRule(_DataflowRule):
    """R06: event-time and processing-time values must not meet directly."""

    id = "R06"
    summary = (
        "no cross-domain time arithmetic/comparison (event vs processing "
        "time, instant + instant)"
    )
    kind_names = ("CROSS_AXIS", "INSTANT_PLUS")


class FrontierContractRule(_DataflowRule):
    """R07: frontiers advance only via a store, from event-time values."""

    id = "R07"
    summary = (
        "DisorderHandler frontiers advance only via MonotoneFrontier/"
        "EventTimeFrontier with event-time arguments; no raw store writes"
    )
    kind_names = (
        "FRONTIER_ADVANCE",
        "FRONTIER_REBIND",
        "FRONTIER_RAW_WRITE",
        "FRONTIER_PROPERTY",
    )


class SlackMixingRule(_DataflowRule):
    """R08: durations and instants must not be conflated in slack math."""

    id = "R08"
    summary = (
        "no duration/timestamp mixing in buffer-size and slack "
        "computations (engine/core scope)"
    )
    kind_names = ("DURATION_MIX",)
    engine_only = True


class MetricsDomainRule(_DataflowRule):
    """R09: RunMetrics fields carry their declared domains."""

    id = "R09"
    summary = "RunMetrics fields must be assigned domain-consistent values"
    kind_names = ("METRICS_DOMAIN",)


class UnannotatedApiRule(_DataflowRule):
    """R10: public time-typed engine APIs must carry domain markers."""

    id = "R10"
    summary = (
        "public engine/core APIs with time-named float parameters/returns "
        "must use the timebase Annotated aliases"
    )
    kind_names = ("UNANNOTATED_API",)
    engine_only = True


DATAFLOW_RULES: tuple[Rule, ...] = (
    CrossDomainRule(),
    FrontierContractRule(),
    SlackMixingRule(),
    MetricsDomainRule(),
    UnannotatedApiRule(),
)
