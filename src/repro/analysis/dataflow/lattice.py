"""The time-domain lattice and its transfer functions.

Every value the analysis reasons about sits in a small flat lattice:

::

                      TOP  (conflicting evidence)
        /     |        |       |        \\
  EVENT_TIME  PROC_TIME  DURATION  COUNT  UNTIMED
        \\     |        |       |        /
                     BOTTOM  (no information)

``EVENT_TIME`` and ``PROC_TIME`` are *instants* on two different axes: the
timestamp an event carries versus the (simulated) clock of the machine
processing it.  ``DURATION`` is a span of seconds connecting instants —
slack, lag, delay, latency.  ``COUNT`` covers element counters and sequence
numbers; ``UNTIMED`` covers payload values.  Joins of distinct concrete
domains go to ``TOP``, which the rules treat as "unknown, stay quiet" —
the analysis only reports when both operands are *definitely* known and
*definitely* incompatible.

The arithmetic/comparison transfer functions double as the rule oracle:
besides the result domain they name the violation class an operation
falls into (instant+instant, duration ordered against an instant, ...).
"""

from __future__ import annotations

from enum import Enum


class Domain(Enum):
    """One point of the time-domain lattice."""

    BOTTOM = "bottom"
    EVENT_TIME = "event-time"
    PROC_TIME = "proc-time"
    DURATION = "duration"
    COUNT = "count"
    UNTIMED = "untimed"
    TOP = "top"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_instant(self) -> bool:
        """True for points on either time axis."""
        return self in (Domain.EVENT_TIME, Domain.PROC_TIME)

    @property
    def is_definite(self) -> bool:
        """True when the domain carries usable evidence (not ⊥/⊤)."""
        return self not in (Domain.BOTTOM, Domain.TOP)


def join(a: Domain, b: Domain) -> Domain:
    """Least upper bound: ⊥ is the identity, conflicts go to ⊤."""
    if a is b:
        return a
    if a is Domain.BOTTOM:
        return b
    if b is Domain.BOTTOM:
        return a
    return Domain.TOP


def join_all(domains: "list[Domain]") -> Domain:
    """Fold :func:`join` over a list (⊥ for the empty list)."""
    result = Domain.BOTTOM
    for domain in domains:
        result = join(result, domain)
    return result


class Violation(Enum):
    """Why a transfer function rejected an operation."""

    INSTANT_PLUS_INSTANT = "instant + instant"
    CROSS_AXIS_COMPARE = "event-time compared against proc-time"
    DURATION_VS_INSTANT = "duration mixed with an instant"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def add(a: Domain, b: Domain) -> tuple[Domain, Violation | None]:
    """Domain of ``a + b`` plus the violation class, if any.

    Instant + duration shifts the instant along its own axis; adding two
    instants is meaningless on any axis (the classic ``event_time +
    event_time`` slip) and is the primary R06 arithmetic shape.
    """
    if a.is_instant and b.is_instant:
        return Domain.TOP, Violation.INSTANT_PLUS_INSTANT
    if a.is_instant and b is Domain.DURATION:
        return a, None
    if b.is_instant and a is Domain.DURATION:
        return b, None
    if a is Domain.DURATION and b is Domain.DURATION:
        return Domain.DURATION, None
    if a is Domain.COUNT and b is Domain.COUNT:
        return Domain.COUNT, None
    if a.is_instant and b in (Domain.COUNT, Domain.UNTIMED):
        return Domain.TOP, None  # suspicious but not provably wrong
    if b.is_instant and a in (Domain.COUNT, Domain.UNTIMED):
        return Domain.TOP, None
    if not a.is_definite or not b.is_definite:
        return Domain.BOTTOM, None
    return Domain.BOTTOM, None


def sub(a: Domain, b: Domain) -> tuple[Domain, Violation | None]:
    """Domain of ``a - b`` plus the violation class, if any.

    Instant − instant yields a duration *even across axes*: ``arrival_time
    - event_time`` is exactly an element's delay, the quantity the paper's
    buffer sizing is built on.  Duration − instant, however, has no
    reading on either axis (R08's arithmetic shape).
    """
    if a.is_instant and b.is_instant:
        return Domain.DURATION, None
    if a.is_instant and b is Domain.DURATION:
        return a, None
    if a is Domain.DURATION and b.is_instant:
        return Domain.TOP, Violation.DURATION_VS_INSTANT
    if a is Domain.DURATION and b is Domain.DURATION:
        return Domain.DURATION, None
    if a is Domain.COUNT and b is Domain.COUNT:
        return Domain.COUNT, None
    return Domain.BOTTOM, None


def compare(a: Domain, b: Domain) -> Violation | None:
    """Violation class of ordering ``a`` against ``b`` (``<``/``<=``/...).

    Ordering an event timestamp against a processing-time clock silently
    "works" in this engine because both axes share the epoch of the
    simulation — which is exactly why the mistake survives review; it is
    still comparing positions on two different axes.  Ordering a duration
    against either kind of instant is equally meaningless.
    """
    if a.is_instant and b.is_instant and a is not b:
        return Violation.CROSS_AXIS_COMPARE
    if a is Domain.DURATION and b.is_instant:
        return Violation.DURATION_VS_INSTANT
    if b is Domain.DURATION and a.is_instant:
        return Violation.DURATION_VS_INSTANT
    return None


# --------------------------------------------------------------------- #
# naming conventions

#: Exact identifier names (or attribute names) that denote an event-time
#: instant in this codebase.
EVENT_TIME_NAMES = {
    "event_time",
    "frontier",
    "watermark",
    "timestamp",
    "max_event_time",
    "max_event",
    "start",
    "end",
    "window_start",
    "window_end",
    "close_frontier",
    "prune_frontier",
    "release_frontier",
}

#: Identifier suffixes implying an event-time instant.
EVENT_TIME_SUFFIXES = (
    "_event_time",
    "_frontier",
    "_watermark",
    "_timestamp",
    "frontier_value",
)

#: Exact names denoting a processing-time (arrival) instant.
PROC_TIME_NAMES = {"arrival_time", "emit_time", "now", "arrival"}

#: Identifier suffixes implying a processing-time instant.
PROC_TIME_SUFFIXES = ("_arrival", "_arrival_time", "_now", "_emit_time")

#: Exact names denoting a span of seconds.
DURATION_NAMES = {
    "lag",
    "slack",
    "delay",
    "latency",
    "gap",
    "slide",
    "period",
    "k",
    "k_min",
    "k_max",
    "k_estimate",
    "k_applied",
    "initial_k",
    "bound",
    "budget",
    "horizon",
    "interval",
    "duration",
    "timeout",
    "atol",
    "rtol",
    "wall_time_s",
    "window_size",
}

#: Identifier suffixes implying a duration.
DURATION_SUFFIXES = (
    "_lag",
    "_slack",
    "_delay",
    "_latency",
    "_gap",
    "_horizon",
    "_interval",
    "_timeout",
    "_budget",
    "_seconds",
    "_duration",
)

#: Exact names denoting element counters / sequence numbers.
COUNT_NAMES = {"count", "seq", "n_elements", "n_results", "late_dropped"}

#: Identifier suffixes implying a counter.
COUNT_SUFFIXES = ("_count", "_seen", "_dropped", "_buffered", "_size")

#: Plural container names whose *elements* carry the domain (numpy arrays
#: and lists in the batched paths); indexing keeps the domain.
_PLURAL_BASES = {
    "event_times": Domain.EVENT_TIME,
    "timestamps": Domain.EVENT_TIME,
    "frontiers": Domain.EVENT_TIME,
    "clocks": Domain.EVENT_TIME,
    "watermarks": Domain.EVENT_TIME,
    "arrivals": Domain.PROC_TIME,
    "arrival_times": Domain.PROC_TIME,
    "delays": Domain.DURATION,
    "lags": Domain.DURATION,
    "latencies": Domain.DURATION,
    "ks": Domain.DURATION,
    "scaled_delays": Domain.DURATION,
}


def domain_of_name(name: str) -> Domain:
    """Convention-seeded domain of an identifier (``BOTTOM`` if unknown)."""
    stripped = name.lstrip("_")
    if stripped in EVENT_TIME_NAMES or name.endswith(EVENT_TIME_SUFFIXES):
        return Domain.EVENT_TIME
    if stripped in PROC_TIME_NAMES or name.endswith(PROC_TIME_SUFFIXES):
        return Domain.PROC_TIME
    if stripped in DURATION_NAMES or name.endswith(DURATION_SUFFIXES):
        return Domain.DURATION
    if stripped in COUNT_NAMES or name.endswith(COUNT_SUFFIXES):
        return Domain.COUNT
    if stripped in _PLURAL_BASES:
        return _PLURAL_BASES[stripped]
    return Domain.BOTTOM


#: Marker class name (from ``repro.streams.timebase``) → domain.  Both the
#: bare marker (``Annotated[float, EventTime]``) and the exported aliases
#: are recognized in annotations.
MARKER_DOMAINS = {
    "EventTime": Domain.EVENT_TIME,
    "EventTimeStamp": Domain.EVENT_TIME,
    "ProcTime": Domain.PROC_TIME,
    "ArrivalTimeStamp": Domain.PROC_TIME,
    "Duration": Domain.DURATION,
    "DurationS": Domain.DURATION,
}

#: Alias to recommend in R10 messages, per domain.
ALIAS_FOR_DOMAIN = {
    Domain.EVENT_TIME: "EventTimeStamp",
    Domain.PROC_TIME: "ArrivalTimeStamp",
    Domain.DURATION: "DurationS",
}
