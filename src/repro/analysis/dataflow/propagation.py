"""Fixed-point time-domain inference and violation collection.

The analysis is flow-insensitive and whole-program: every function is
evaluated against the current symbol-table cells, evidence discovered at
call sites / returns / attribute writes is joined back into the cells, and
the process repeats until nothing changes (or a round cap, since the
lattice has finite height the cap is a formality).  A final *collect* pass
re-evaluates everything with the converged cells and records violations.

Only **definite** evidence is ever reported: an operand at ``⊥`` (unknown)
or ``⊤`` (conflicting) never produces a finding.  False positives in a
lint gate cost more than false negatives.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.model import Project, SourceFile
from repro.analysis.dataflow import lattice
from repro.analysis.dataflow.lattice import Domain, Violation, domain_of_name
from repro.analysis.dataflow.callgraph import (
    COUNTING_BUILTINS,
    JOINING_BUILTINS,
    CallGraph,
    CallResolver,
)
from repro.analysis.dataflow.symbols import (
    FRONTIER_STORE_FIELDS,
    FRONTIER_STORE_KINDS,
    FunctionSymbol,
    SymbolTable,
    annotation_domain,
    annotation_is_bare_float,
)

# Violation kinds; the R06-R10 rules select on these.
CROSS_AXIS = "cross-axis-compare"
INSTANT_PLUS = "instant-plus-instant"
DURATION_MIX = "duration-vs-instant"
FRONTIER_ADVANCE = "frontier-advance"
FRONTIER_REBIND = "frontier-rebind"
FRONTIER_RAW_WRITE = "frontier-raw-write"
FRONTIER_PROPERTY = "frontier-property"
METRICS_DOMAIN = "metrics-domain"
UNANNOTATED_API = "unannotated-api"

#: Expected domain of each scalar ``RunMetrics`` field (R09).  The
#: ``slack_timeline`` list is structured and checked by StreamSan instead.
METRICS_FIELD_DOMAINS = {
    "wall_time_s": Domain.DURATION,
    "n_elements": Domain.COUNT,
    "n_results": Domain.COUNT,
    "late_dropped": Domain.COUNT,
    "max_buffered": Domain.COUNT,
    "released_count": Domain.COUNT,
}

_FRONTIER_ADVANCE_METHODS = {"advance", "observe", "observe_many"}
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
_MAX_ROUNDS = 10


@dataclass(frozen=True)
class DomainViolation:
    """One cross-module time-domain violation, pre-formatted."""

    kind: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report order: path, position, kind."""
        return (self.path, self.line, self.col, self.kind)


@dataclass
class AnalysisResult:
    """Converged cells plus every violation found."""

    table: SymbolTable
    graph: CallGraph
    violations: list[DomainViolation] = field(default_factory=list)
    rounds: int = 0

    def of_kind(self, *kinds: str) -> list[DomainViolation]:
        """Violations whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [v for v in self.violations if v.kind in wanted]


def analyse(project: Project) -> AnalysisResult:
    """Run the whole-program analysis over a parsed project."""
    table = SymbolTable(project)
    resolver = CallResolver(table)
    graph = CallGraph()
    result = AnalysisResult(table=table, graph=graph)
    for round_number in range(1, _MAX_ROUNDS + 1):
        result.rounds = round_number
        changed = False
        for function in table.functions.values():
            evaluator = _Evaluator(table, resolver, graph, function)
            evaluator.run()
            changed = changed or evaluator.changed
        if not changed:
            break
    for function in table.functions.values():
        evaluator = _Evaluator(
            table, resolver, graph, function, sink=result.violations
        )
        evaluator.run()
    _check_public_api(table, result.violations)
    result.violations.sort(key=DomainViolation.sort_key)
    return result


def analysis_for(project: Project) -> AnalysisResult:
    """Per-project cached :func:`analyse` (rules share one run)."""
    cached = getattr(project, "_dataflow_cache", None)
    if cached is None:
        cached = analyse(project)
        project._dataflow_cache = cached  # type: ignore[attr-defined]
    return cached


class _Evaluator:
    """Evaluates one function body against the current cells.

    With ``sink=None`` it only joins evidence (propagation rounds); with a
    sink it also records violations (the collect pass).
    """

    def __init__(
        self,
        table: SymbolTable,
        resolver: CallResolver,
        graph: CallGraph,
        function: FunctionSymbol,
        sink: list[DomainViolation] | None = None,
    ) -> None:
        self.table = table
        self.resolver = resolver
        self.graph = graph
        self.function = function
        self.sink = sink
        self.changed = False
        self.env: dict[str, tuple[Domain, str]] = {}
        for name in function.param_names:
            self.env[name] = (
                function.param_domains.get(name, Domain.BOTTOM),
                function.param_kinds.get(name, ""),
            )
        if function.class_name:
            self.env["self"] = (Domain.BOTTOM, function.class_name)

    # ------------------------------------------------------------------ #
    # plumbing

    def _report(self, kind: str, node: ast.AST, message: str) -> None:
        if self.sink is None:
            return
        self.sink.append(
            DomainViolation(
                kind=kind,
                path=self.function.source.display_path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )

    def _in_handler_lineage(self) -> bool:
        if not self.function.class_name:
            return False
        return "DisorderHandler" in self.table.lineage_names(
            self.function.class_name
        )

    # ------------------------------------------------------------------ #
    # statements

    def run(self) -> None:
        self._walk(self.function.node.body)

    def _walk(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._statement(stmt)

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_domain, value_kind = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, stmt.value, value_domain, value_kind)
        elif isinstance(stmt, ast.AnnAssign):
            declared = annotation_domain(stmt.annotation)
            if stmt.value is not None:
                value_domain, value_kind = self._eval(stmt.value)
            else:
                value_domain, value_kind = Domain.BOTTOM, ""
            if declared.is_definite:
                value_domain = declared
            self._assign(stmt.target, stmt.value, value_domain, value_kind)
        elif isinstance(stmt, ast.AugAssign):
            left_domain, left_kind = self._eval(stmt.target)
            right_domain, _ = self._eval(stmt.value)
            result = self._binop_domain(
                stmt, stmt.op, left_domain, right_domain
            )
            self._assign(stmt.target, stmt.value, result, left_kind)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                domain, kind = self._eval(stmt.value)
                if domain.is_definite:
                    if self.function.join_return(domain):
                        self.changed = True
                    if not self.function.return_kind and kind:
                        self.function.return_kind = kind
                    self._check_frontier_property(stmt, domain)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            domain, _ = self._eval(stmt.iter)
            if isinstance(stmt.target, ast.Name):
                # Indexing/iterating a plural container keeps the element
                # domain (event_times -> each t is an event time).
                self.env[stmt.target.id] = (
                    domain if domain.is_definite else domain_of_name(stmt.target.id),
                    "",
                )
            self._walk(stmt.body)
            self._walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._eval(item.context_expr)
            self._walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self._walk(stmt.body)
            for handler in stmt.handlers:
                self._walk(handler.body)
            self._walk(stmt.orelse)
            self._walk(stmt.finalbody)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Raise) and stmt.exc is not None:
            self._eval(stmt.exc)
        # Nested function/class definitions are analysed as their own
        # symbols (if top-level) or skipped: locals of closures are out of
        # scope for a flow-insensitive pass.

    def _assign(
        self,
        target: ast.expr,
        value: ast.expr | None,
        value_domain: Domain,
        value_kind: str,
    ) -> None:
        if isinstance(target, ast.Name):
            domain = (
                value_domain
                if value_domain.is_definite
                else domain_of_name(target.id)
            )
            self.env[target.id] = (domain, value_kind)
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = (domain_of_name(element.id), "")
            return
        if not isinstance(target, ast.Attribute):
            return
        receiver_domain, receiver_kind = self._eval(target.value)
        attr = target.attr
        is_self = (
            isinstance(target.value, ast.Name) and target.value.id == "self"
        )
        if is_self and self.function.class_name:
            klass = self.table.classes.get(self.function.class_name)
            if klass is not None:
                if value_domain.is_definite and klass.join_attr(
                    attr, value_domain
                ):
                    self.changed = True
                if value_kind:
                    klass.attr_kinds.setdefault(attr, value_kind)
            self._check_frontier_rebind(target, attr, value_kind)
        self._check_frontier_raw_write(target, attr, receiver_kind)
        self._check_metrics_field(target, attr, receiver_kind, value_domain)

    # ------------------------------------------------------------------ #
    # expressions

    def _eval(self, node: ast.expr) -> tuple[Domain, str]:
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            return domain_of_name(node.id), ""
        if isinstance(node, ast.Constant):
            return Domain.BOTTOM, ""
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            left, _ = self._eval(node.left)
            right, _ = self._eval(node.right)
            return self._binop_domain(node, node.op, left, right), ""
        if isinstance(node, ast.Compare):
            self._eval_compare(node)
            return Domain.BOTTOM, ""
        if isinstance(node, ast.BoolOp):
            domains = [self._eval(value)[0] for value in node.values]
            return lattice.join_all(domains), ""
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body, body_kind = self._eval(node.body)
            orelse, _ = self._eval(node.orelse)
            return lattice.join(body, orelse), body_kind
        if isinstance(node, ast.UnaryOp):
            domain, kind = self._eval(node.operand)
            return domain, kind
        if isinstance(node, ast.Subscript):
            domain, _ = self._eval(node.value)
            self._eval(node.slice)
            return domain, ""
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set, ast.Dict)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child)
            return Domain.BOTTOM, ""
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._eval(generator.iter)
            self._eval(node.elt)
            return Domain.BOTTOM, ""
        if isinstance(node, ast.NamedExpr):
            domain, kind = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = (domain, kind)
            return domain, kind
        return Domain.BOTTOM, ""

    def _eval_attribute(self, node: ast.Attribute) -> tuple[Domain, str]:
        _, receiver_kind = self._eval(node.value)
        if receiver_kind:
            domain = self.table.member_domain(receiver_kind, node.attr)
            kind = self.table.attr_kind(receiver_kind, node.attr)
            if domain.is_definite or kind:
                return domain, kind
        return domain_of_name(node.attr), ""

    def _eval_call(self, node: ast.Call) -> tuple[Domain, str]:
        receiver_kind = ""
        if isinstance(node.func, ast.Attribute):
            _, receiver_kind = self._eval(node.func.value)
        arg_domains = [self._eval(arg)[0] for arg in node.args]
        kwarg_domains = {
            keyword.arg: self._eval(keyword.value)[0]
            for keyword in node.keywords
            if keyword.arg is not None
        }
        for keyword in node.keywords:
            if keyword.arg is None:
                self._eval(keyword.value)

        if isinstance(node.func, ast.Name):
            name = node.func.id
            if name in COUNTING_BUILTINS:
                return Domain.COUNT, ""
            if name in JOINING_BUILTINS:
                folded = lattice.join_all(
                    arg_domains + list(kwarg_domains.values())
                )
                return (folded if folded.is_definite else Domain.BOTTOM), ""

        callee = self.resolver.resolve(self.function, node, receiver_kind)
        method_name = (
            node.func.attr if isinstance(node.func, ast.Attribute) else ""
        )
        self._check_frontier_advance(
            node, receiver_kind, method_name, arg_domains, kwarg_domains
        )
        constructed = ""
        if isinstance(node.func, ast.Name) and (
            node.func.id in self.table.classes
            or node.func.id in FRONTIER_STORE_KINDS
        ):
            constructed = node.func.id
        if constructed == "RunMetrics" or (
            callee is not None and callee.class_name == "RunMetrics"
        ):
            self._check_metrics_ctor(node, kwarg_domains)
        if callee is None:
            if receiver_kind:
                domain = self.table.member_domain(receiver_kind, method_name)
                if domain.is_definite:
                    return domain, ""
            return Domain.BOTTOM, constructed
        self.graph.add(self.function.qualname, callee.qualname)
        params = callee.param_names
        if callee.class_name and params and params[0] == "self":
            params = params[1:]
        for param, domain in zip(params, arg_domains):
            if domain.is_definite and callee.join_param(param, domain):
                self.changed = True
        for param, domain in kwarg_domains.items():
            if domain.is_definite and param in callee.param_domains:
                if callee.join_param(param, domain):
                    self.changed = True
        if constructed:
            return Domain.BOTTOM, constructed
        domain = callee.return_domain
        return (
            domain if domain.is_definite else Domain.BOTTOM
        ), callee.return_kind

    def _binop_domain(
        self,
        node: ast.AST,
        op: ast.operator,
        left: Domain,
        right: Domain,
    ) -> Domain:
        if isinstance(op, ast.Add):
            domain, violation = lattice.add(left, right)
        elif isinstance(op, ast.Sub):
            domain, violation = lattice.sub(left, right)
        else:
            # Scaling/indexing arithmetic (window-index * slide, rate
            # ratios) legitimately crosses domains; stay silent.
            return Domain.BOTTOM
        if violation is Violation.INSTANT_PLUS_INSTANT:
            self._report(
                INSTANT_PLUS,
                node,
                f"adding two time instants ({left} + {right}) has no meaning "
                "on either axis; one operand should be a duration",
            )
        elif violation is Violation.DURATION_VS_INSTANT:
            self._report(
                DURATION_MIX,
                node,
                f"subtracting an instant from a duration ({left} - {right}) "
                "mixes a span with a position; swap the operands or anchor "
                "the duration to an instant first",
            )
        return domain

    def _eval_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        domains = [self._eval(operand)[0] for operand in operands]
        for index, op in enumerate(node.ops):
            if not isinstance(op, _ORDERING_OPS):
                continue
            left, right = domains[index], domains[index + 1]
            violation = lattice.compare(left, right)
            if violation is Violation.CROSS_AXIS_COMPARE:
                self._report(
                    CROSS_AXIS,
                    operands[index + 1],
                    f"ordering comparison mixes time axes ({left} vs "
                    f"{right}); event and processing time share an epoch "
                    "here only by simulation accident",
                )
            elif violation is Violation.DURATION_VS_INSTANT:
                self._report(
                    DURATION_MIX,
                    operands[index + 1],
                    f"ordering comparison mixes a duration with an instant "
                    f"({left} vs {right}); compare spans with spans",
                )

    # ------------------------------------------------------------------ #
    # targeted checks (R07 / R09)

    def _check_frontier_advance(
        self,
        node: ast.Call,
        receiver_kind: str,
        method_name: str,
        arg_domains: list[Domain],
        kwarg_domains: dict[str, Domain],
    ) -> None:
        if receiver_kind not in FRONTIER_STORE_KINDS:
            return
        if method_name not in _FRONTIER_ADVANCE_METHODS:
            return
        first = (
            arg_domains[0]
            if arg_domains
            else next(iter(kwarg_domains.values()), Domain.BOTTOM)
        )
        if first.is_definite and first is not Domain.EVENT_TIME:
            self._report(
                FRONTIER_ADVANCE,
                node,
                f"{receiver_kind}.{method_name} called with a {first} "
                "value; frontiers advance only from event-time instants",
            )

    def _check_frontier_rebind(
        self, node: ast.Attribute, attr: str, value_kind: str
    ) -> None:
        if not self._in_handler_lineage():
            return
        if self.function.simple_name == "__init__":
            return
        existing = self.table.attr_kind(self.function.class_name, attr)
        if existing in FRONTIER_STORE_KINDS or value_kind in FRONTIER_STORE_KINDS:
            self._report(
                FRONTIER_REBIND,
                node,
                f"frontier store self.{attr} rebound outside __init__; "
                "replacing the store discards its monotonicity history",
            )

    def _check_frontier_raw_write(
        self, node: ast.Attribute, attr: str, receiver_kind: str
    ) -> None:
        if attr not in FRONTIER_STORE_FIELDS:
            return
        if receiver_kind not in FRONTIER_STORE_KINDS:
            return
        if self.function.class_name in FRONTIER_STORE_KINDS:
            return  # the store's own implementation
        self._report(
            FRONTIER_RAW_WRITE,
            node,
            f"raw write to {receiver_kind}.{attr} bypasses the monotone "
            "advance clamp; use .advance()/.observe() instead",
        )

    def _check_frontier_property(self, node: ast.Return, domain: Domain) -> None:
        if not self._in_handler_lineage():
            return
        if self.function.simple_name != "frontier" or not self.function.is_property:
            return
        if domain is not Domain.EVENT_TIME:
            self._report(
                FRONTIER_PROPERTY,
                node,
                f"DisorderHandler.frontier property returns a {domain} "
                "value; the frontier contract requires an event-time instant",
            )

    def _check_metrics_field(
        self,
        node: ast.Attribute,
        attr: str,
        receiver_kind: str,
        value_domain: Domain,
    ) -> None:
        expected = METRICS_FIELD_DOMAINS.get(attr)
        if expected is None or not value_domain.is_definite:
            return
        is_metrics = receiver_kind == "RunMetrics" or (
            isinstance(node.value, ast.Name)
            and self.function.class_name == "RunMetrics"
            and node.value.id == "self"
        )
        if not is_metrics:
            return
        if value_domain is not expected:
            self._report(
                METRICS_DOMAIN,
                node,
                f"RunMetrics.{attr} expects a {expected} value but is "
                f"assigned a {value_domain}",
            )

    def _check_metrics_ctor(
        self, node: ast.Call, kwarg_domains: dict[str, Domain]
    ) -> None:
        for name, domain in kwarg_domains.items():
            expected = METRICS_FIELD_DOMAINS.get(name)
            if expected is None or not domain.is_definite:
                continue
            if domain is not expected:
                self._report(
                    METRICS_DOMAIN,
                    node,
                    f"RunMetrics({name}=...) expects a {expected} value "
                    f"but receives a {domain}",
                )


# --------------------------------------------------------------------- #
# structural pass (R10)


def _check_public_api(
    table: SymbolTable, sink: list[DomainViolation]
) -> None:
    """Flag bare-``float`` time-named parameters/returns on public APIs."""
    from repro.analysis.dataflow.lattice import ALIAS_FOR_DOMAIN

    for function in table.functions.values():
        if not function.source.engine_scoped or not function.is_public:
            continue
        args = function.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if not annotation_is_bare_float(arg.annotation):
                continue
            domain = domain_of_name(arg.arg)
            alias = ALIAS_FOR_DOMAIN.get(domain)
            if alias is None:
                continue
            sink.append(
                DomainViolation(
                    kind=UNANNOTATED_API,
                    path=function.source.display_path,
                    line=arg.lineno,
                    col=arg.col_offset + 1,
                    message=(
                        f"public parameter {arg.arg!r} of "
                        f"{function.qualname.split(':', 1)[1]} looks like a "
                        f"{domain} but is annotated bare float; use "
                        f"{alias} from repro.streams.timebase"
                    ),
                )
            )
        if annotation_is_bare_float(function.node.returns):
            domain = domain_of_name(function.simple_name)
            alias = ALIAS_FOR_DOMAIN.get(domain)
            if alias is not None:
                sink.append(
                    DomainViolation(
                        kind=UNANNOTATED_API,
                        path=function.source.display_path,
                        line=function.node.lineno,
                        col=function.node.col_offset + 1,
                        message=(
                            f"public return of "
                            f"{function.qualname.split(':', 1)[1]} looks "
                            f"like a {domain} but is annotated bare float; "
                            f"use {alias} from repro.streams.timebase"
                        ),
                    )
                )
