"""Checked-in finding baseline: grandfather old debt, fail on new debt.

The baseline file (``analysis/baseline.json``) records a fingerprint per
known finding.  A lint run with the baseline applied reports only findings
whose fingerprint is *not* in the file — new violations fail CI while the
grandfathered ones are tracked for burn-down.  Fingerprints hash the rule
id, file path, and message (NOT the line number), so unrelated edits that
shift code around do not invalidate the baseline.

Staleness cuts the other way: when a grandfathered finding is fixed, its
fingerprint lingers in the file and would silently mask a future
regression with the same message.  ``--check-baseline`` (run in CI) fails
when the file contains fingerprints that no longer occur, forcing a
regeneration via ``--write-baseline``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.model import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_PATH = Path("analysis") / "baseline.json"


def finding_fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: sha1 of rule, path, and message."""
    payload = f"{finding.rule}|{finding.path}|{finding.message}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()


@dataclass
class Baseline:
    """A set of grandfathered finding fingerprints with occurrence counts."""

    #: fingerprint -> number of occurrences grandfathered at capture time.
    entries: dict[str, int] = field(default_factory=dict)

    @staticmethod
    def from_findings(findings: list[Finding]) -> "Baseline":
        """Capture every finding as grandfathered."""
        baseline = Baseline()
        for finding in findings:
            key = finding_fingerprint(finding)
            baseline.entries[key] = baseline.entries.get(key, 0) + 1
        return baseline

    @staticmethod
    def load(path: Path) -> "Baseline":
        """Read a baseline file (an empty one if it does not exist)."""
        if not path.exists():
            return Baseline()
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = {
            str(key): int(value)
            for key, value in data.get("fingerprints", {}).items()
        }
        return Baseline(entries=entries)

    def save(self, path: Path) -> None:
        """Write the baseline file (creating parent directories)."""
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": BASELINE_VERSION,
            "tool": "repro-lint",
            "fingerprints": dict(sorted(self.entries.items())),
        }
        path.write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def apply(self, findings: list[Finding]) -> list[Finding]:
        """Findings not covered by the baseline.

        Each fingerprint absorbs at most its recorded count, so a file
        that *gains* a second identical violation still fails even though
        the first is grandfathered.
        """
        budget = dict(self.entries)
        fresh: list[Finding] = []
        for finding in findings:
            key = finding_fingerprint(finding)
            if budget.get(key, 0) > 0:
                budget[key] -= 1
            else:
                fresh.append(finding)
        return fresh

    def stale_entries(self, findings: list[Finding]) -> list[str]:
        """Fingerprints in the baseline that no finding matches anymore."""
        current = {finding_fingerprint(finding) for finding in findings}
        return sorted(key for key in self.entries if key not in current)
