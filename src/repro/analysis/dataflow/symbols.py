"""Project-wide symbol table for the time-domain analysis.

Built once per lint run from the parsed :class:`~repro.analysis.lint.model.
Project`: every function/method becomes a :class:`FunctionSymbol` carrying
per-parameter and return :class:`~repro.analysis.dataflow.lattice.Domain`
cells, every class a :class:`ClassSymbol` carrying attribute domain cells
and attribute *kinds* (which project class an attribute holds — how the
analysis knows ``self._front.advance(...)`` lands on ``MonotoneFrontier``).

Seeding order per cell: explicit ``Annotated[float, EventTime]``-style
markers (or their ``EventTimeStamp``/... aliases) win; the naming
conventions of :mod:`~repro.analysis.dataflow.lattice` seed the rest; the
fixed-point propagation pass joins inferred evidence on top.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.model import Project, SourceFile
from repro.analysis.dataflow.lattice import (
    Domain,
    MARKER_DOMAINS,
    domain_of_name,
    join,
)

#: Built-in knowledge about the engine's time-bearing types: (class,
#: member) → domain.  The annotation sweep makes most of these derivable
#: from source, but baking them in keeps the analysis correct on partial
#: projects (single fixture files) and on unannotated forks.
KNOWN_MEMBER_DOMAINS: dict[tuple[str, str], Domain] = {
    ("StreamElement", "event_time"): Domain.EVENT_TIME,
    ("StreamElement", "arrival_time"): Domain.PROC_TIME,
    ("StreamElement", "delay"): Domain.DURATION,
    ("StreamElement", "seq"): Domain.COUNT,
    ("StreamElement", "value"): Domain.UNTIMED,
    ("MonotoneFrontier", "value"): Domain.EVENT_TIME,
    ("MonotoneFrontier", "advance"): Domain.EVENT_TIME,
    ("MonotoneFrontier", "close"): Domain.EVENT_TIME,
    ("EventTimeFrontier", "value"): Domain.EVENT_TIME,
    ("EventTimeFrontier", "observe"): Domain.EVENT_TIME,
    ("EventTimeFrontier", "observe_many"): Domain.EVENT_TIME,
    ("EventTimeFrontier", "count"): Domain.COUNT,
    ("SimulatedClock", "now"): Domain.PROC_TIME,
    ("SimulatedClock", "advance_to"): Domain.PROC_TIME,
    ("SimulatedClock", "advance_by"): Domain.PROC_TIME,
    ("SortingBuffer", "peek_event_time"): Domain.EVENT_TIME,
    ("SortingBuffer", "max_size"): Domain.COUNT,
    ("SortingBuffer", "released_total"): Domain.COUNT,
    ("Window", "start"): Domain.EVENT_TIME,
    ("Window", "end"): Domain.EVENT_TIME,
    ("Window", "size"): Domain.DURATION,
    ("WindowResult", "emit_time"): Domain.PROC_TIME,
    ("WindowResult", "latency"): Domain.DURATION,
    ("WindowResult", "count"): Domain.COUNT,
    ("JoinResult", "left_time"): Domain.EVENT_TIME,
    ("JoinResult", "right_time"): Domain.EVENT_TIME,
    ("JoinResult", "emit_time"): Domain.PROC_TIME,
    ("JoinResult", "latency"): Domain.DURATION,
    ("SlackSample", "arrival_time"): Domain.PROC_TIME,
    ("SlackSample", "slack"): Domain.DURATION,
    ("SlackSample", "frontier"): Domain.EVENT_TIME,
    ("SlackSample", "buffered"): Domain.COUNT,
    ("DisorderHandler", "frontier"): Domain.EVENT_TIME,
    ("DisorderHandler", "current_slack"): Domain.DURATION,
    ("DisorderHandler", "released_count"): Domain.COUNT,
    ("DisorderHandler", "buffered_count"): Domain.COUNT,
    ("DisorderHandler", "max_buffered_count"): Domain.COUNT,
}

#: Classes whose instances are sanctioned monotone frontier stores (R07).
FRONTIER_STORE_KINDS = {"MonotoneFrontier", "EventTimeFrontier"}

#: Internal fields of the frontier stores; writing them from outside the
#: store bypasses the monotonicity clamp (R07 "raw frontier write").
FRONTIER_STORE_FIELDS = {"_value", "_max_event_time"}


def annotation_domain(annotation: ast.expr | None) -> Domain:
    """Domain declared by an annotation node, ``BOTTOM`` when unmarked.

    Recognizes the alias names (``EventTimeStamp``, ``ArrivalTimeStamp``,
    ``DurationS``), the explicit ``Annotated[float, Marker]`` spelling, and
    dotted variants (``timebase.EventTimeStamp``).
    """
    if annotation is None:
        return Domain.BOTTOM
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return Domain.BOTTOM
    if isinstance(annotation, ast.Name):
        return MARKER_DOMAINS.get(annotation.id, Domain.BOTTOM)
    if isinstance(annotation, ast.Attribute):
        return MARKER_DOMAINS.get(annotation.attr, Domain.BOTTOM)
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = (
            head.id
            if isinstance(head, ast.Name)
            else head.attr
            if isinstance(head, ast.Attribute)
            else ""
        )
        if head_name == "Annotated" and isinstance(annotation.slice, ast.Tuple):
            for meta in annotation.slice.elts[1:]:
                domain = annotation_domain(meta)
                if domain is not Domain.BOTTOM:
                    return domain
    return Domain.BOTTOM


def annotation_is_bare_float(annotation: ast.expr | None) -> bool:
    """True when the annotation is exactly ``float`` (R10's trigger)."""
    return isinstance(annotation, ast.Name) and annotation.id == "float"


def annotation_kind(annotation: ast.expr | None) -> str:
    """Project-class name an annotation binds the value to (``""`` if none).

    ``element: StreamElement`` types the local; ``Optional``/``| None``
    unions are looked through so ``DisorderHandler | None`` still resolves.
    """
    if annotation is None:
        return ""
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            return annotation_kind(ast.parse(annotation.value, mode="eval").body)
        except SyntaxError:
            return ""
    if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
        for side in (annotation.left, annotation.right):
            kind = annotation_kind(side)
            if kind and kind != "None":
                return kind
        return ""
    if isinstance(annotation, ast.Subscript):
        head = annotation_kind(annotation.value)
        if head == "Optional":
            return annotation_kind(annotation.slice)
        return ""
    return ""


@dataclass
class FunctionSymbol:
    """One function or method with its domain cells."""

    qualname: str  # module:Class.method or module:function
    module: str
    source: SourceFile
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""  # enclosing class, "" for module-level functions
    param_names: list[str] = field(default_factory=list)
    param_domains: dict[str, Domain] = field(default_factory=dict)
    param_kinds: dict[str, str] = field(default_factory=dict)
    return_domain: Domain = Domain.BOTTOM
    return_kind: str = ""
    is_property: bool = False
    is_public: bool = False

    @property
    def simple_name(self) -> str:
        return self.node.name

    def join_param(self, name: str, domain: Domain) -> bool:
        """Join evidence into a parameter cell; True when it changed."""
        before = self.param_domains.get(name, Domain.BOTTOM)
        after = join(before, domain)
        if after is not before:
            self.param_domains[name] = after
            return True
        return False

    def join_return(self, domain: Domain) -> bool:
        """Join evidence into the return cell; True when it changed."""
        after = join(self.return_domain, domain)
        if after is not self.return_domain:
            self.return_domain = after
            return True
        return False


@dataclass
class ClassSymbol:
    """One class with attribute domain/kind cells."""

    name: str
    module: str
    source: SourceFile
    node: ast.ClassDef
    base_names: list[str] = field(default_factory=list)
    attr_domains: dict[str, Domain] = field(default_factory=dict)
    attr_kinds: dict[str, str] = field(default_factory=dict)  # attr -> class name
    methods: dict[str, FunctionSymbol] = field(default_factory=dict)

    def join_attr(self, name: str, domain: Domain) -> bool:
        """Join evidence into an attribute cell; True when it changed."""
        before = self.attr_domains.get(name, Domain.BOTTOM)
        after = join(before, domain)
        if after is not before:
            self.attr_domains[name] = after
            return True
        return False


def _decorator_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    names = set()
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Name):
            names.add(decorator.id)
        elif isinstance(decorator, ast.Attribute):
            names.add(decorator.attr)
    return names


class SymbolTable:
    """Every function and class of the project, with seeded domain cells."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.functions: dict[str, FunctionSymbol] = {}  # qualname -> symbol
        self.classes: dict[str, ClassSymbol] = {}  # simple name -> symbol
        #: module-level function name -> qualname per module, for call
        #: resolution of plain-name calls.
        self.module_functions: dict[str, dict[str, str]] = {}
        #: per-module import aliases: local name -> imported simple name.
        self.imports: dict[str, dict[str, str]] = {}
        for source in project.files:
            self._index_file(source)
        self._seed_known_members()

    # ------------------------------------------------------------------ #
    # construction

    @staticmethod
    def module_of(source: SourceFile) -> str:
        return source.display_path

    def _index_file(self, source: SourceFile) -> None:
        module = self.module_of(source)
        self.module_functions.setdefault(module, {})
        imports = self.imports.setdefault(module, {})
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imports[local] = alias.name
        for node in source.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                symbol = self._function_symbol(source, node, class_name="")
                self.functions[symbol.qualname] = symbol
                self.module_functions[module][node.name] = symbol.qualname
            elif isinstance(node, ast.ClassDef):
                self._index_class(source, node)

    def _index_class(self, source: SourceFile, node: ast.ClassDef) -> None:
        module = self.module_of(source)
        base_names = []
        for base in node.bases:
            if isinstance(base, ast.Name):
                base_names.append(base.id)
            elif isinstance(base, ast.Attribute):
                base_names.append(base.attr)
            elif isinstance(base, ast.Subscript) and isinstance(
                base.value, ast.Name
            ):
                base_names.append(base.value.id)
        symbol = ClassSymbol(
            name=node.name,
            module=module,
            source=source,
            node=node,
            base_names=base_names,
        )
        # Duplicate simple names across files (fixture stubs shadowing the
        # real engine classes) keep the first definition — consistent with
        # the lint Project index, which drops ambiguous names entirely.
        self.classes.setdefault(node.name, symbol)
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method = self._function_symbol(source, item, class_name=node.name)
                self.functions[method.qualname] = method
                symbol.methods[item.name] = method
            elif isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                # Dataclass-style field declarations.
                domain = annotation_domain(item.annotation)
                if domain is Domain.BOTTOM:
                    domain = domain_of_name(item.target.id)
                if domain is not Domain.BOTTOM:
                    symbol.attr_domains[item.target.id] = domain
                kind = annotation_kind(item.annotation)
                if kind in self.classes or kind in FRONTIER_STORE_KINDS:
                    symbol.attr_kinds[item.target.id] = kind
        self._seed_init_attrs(symbol)

    def _function_symbol(
        self,
        source: SourceFile,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str,
    ) -> FunctionSymbol:
        module = self.module_of(source)
        scope = f"{class_name}." if class_name else ""
        symbol = FunctionSymbol(
            qualname=f"{module}:{scope}{node.name}",
            module=module,
            source=source,
            node=node,
            class_name=class_name,
            is_property="property" in _decorator_names(node),
            is_public=not node.name.startswith("_") or node.name == "__init__",
        )
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            symbol.param_names.append(arg.arg)
            domain = annotation_domain(arg.annotation)
            if domain is Domain.BOTTOM:
                domain = domain_of_name(arg.arg)
            symbol.param_domains[arg.arg] = domain
            kind = annotation_kind(arg.annotation)
            if kind:
                symbol.param_kinds[arg.arg] = kind
        symbol.return_domain = annotation_domain(node.returns)
        if symbol.return_domain is Domain.BOTTOM and (
            symbol.is_property or class_name == ""
        ):
            # Convention-named properties (``frontier``, ``current_slack``)
            # and module functions inherit their name's domain.
            symbol.return_domain = domain_of_name(node.name)
        symbol.return_kind = annotation_kind(node.returns)
        return symbol

    def _seed_init_attrs(self, symbol: ClassSymbol) -> None:
        """Seed attribute cells from ``self.x = ...`` in the class body."""
        for method in symbol.methods.values():
            for node in ast.walk(method.node):
                target: ast.expr | None = None
                value: ast.expr | None = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if (
                    not isinstance(target, ast.Attribute)
                    or not isinstance(target.value, ast.Name)
                    or target.value.id != "self"
                ):
                    continue
                attr = target.attr
                if isinstance(node, ast.AnnAssign):
                    domain = annotation_domain(node.annotation)
                    if domain is not Domain.BOTTOM:
                        symbol.join_attr(attr, domain)
                if attr not in symbol.attr_domains:
                    domain = domain_of_name(attr)
                    if domain is not Domain.BOTTOM:
                        symbol.attr_domains[attr] = domain
                # Constructor calls type the attribute's kind.
                if isinstance(value, ast.Call):
                    callee = value.func
                    name = (
                        callee.id
                        if isinstance(callee, ast.Name)
                        else callee.attr
                        if isinstance(callee, ast.Attribute)
                        else ""
                    )
                    if name in self.classes or name in FRONTIER_STORE_KINDS:
                        symbol.attr_kinds.setdefault(attr, name)

    def _seed_known_members(self) -> None:
        for (class_name, member), domain in KNOWN_MEMBER_DOMAINS.items():
            symbol = self.classes.get(class_name)
            if symbol is None:
                continue
            method = symbol.methods.get(member)
            if method is not None:
                method.join_return(domain)
            else:
                symbol.join_attr(member, domain)

    # ------------------------------------------------------------------ #
    # lookups

    def ancestry(self, class_name: str) -> list[ClassSymbol]:
        """The class plus its resolvable bases, MRO-ish (BFS) order."""
        result: list[ClassSymbol] = []
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            name = queue.pop(0)
            if name in seen:
                continue
            seen.add(name)
            symbol = self.classes.get(name)
            if symbol is None:
                continue
            result.append(symbol)
            queue.extend(symbol.base_names)
        return result

    def lineage_names(self, class_name: str) -> set[str]:
        """Simple names of the class and every resolvable ancestor."""
        names = {class_name}
        for symbol in self.ancestry(class_name):
            names.add(symbol.name)
            names.update(symbol.base_names)
        return names

    def find_method(self, class_name: str, method: str) -> FunctionSymbol | None:
        """Resolve a method through the class's ancestry."""
        for symbol in self.ancestry(class_name):
            found = symbol.methods.get(method)
            if found is not None:
                return found
        return None

    def attr_domain(self, class_name: str, attr: str) -> Domain:
        """Attribute domain through the ancestry, with known-member fallback."""
        for symbol in self.ancestry(class_name):
            domain = symbol.attr_domains.get(attr)
            if domain is not None and domain is not Domain.BOTTOM:
                return domain
        for name in self.lineage_names(class_name):
            known = KNOWN_MEMBER_DOMAINS.get((name, attr))
            if known is not None:
                return known
        return Domain.BOTTOM

    def attr_kind(self, class_name: str, attr: str) -> str:
        """Class name an attribute holds, resolved through the ancestry."""
        for symbol in self.ancestry(class_name):
            kind = symbol.attr_kinds.get(attr)
            if kind:
                return kind
        return ""

    def member_domain(self, class_name: str, member: str) -> Domain:
        """Domain of ``instance.member`` — property return, known member,
        or attribute cell, in that order."""
        method = self.find_method(class_name, member)
        if method is not None and method.is_property:
            if method.return_domain.is_definite:
                return method.return_domain
        for name in self.lineage_names(class_name):
            known = KNOWN_MEMBER_DOMAINS.get((name, member))
            if known is not None:
                return known
        return self.attr_domain(class_name, member)
