"""Call resolution and the project call graph.

Resolution is deliberately conservative: a call either resolves to exactly
one :class:`~repro.analysis.dataflow.symbols.FunctionSymbol` (same-module
function, constructor, ``self`` method through the ancestry, or a method on
a receiver whose class is known) or it does not resolve at all.  Unresolved
calls contribute no evidence and no findings — a wrong edge is worse than
a missing one.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.dataflow.symbols import FunctionSymbol, SymbolTable

#: Builtins whose result domain is the join of their arguments' domains
#: (clamping/folding preserves the axis).
JOINING_BUILTINS = {"max", "min", "abs", "float", "sum", "sorted"}

#: Builtins producing element counts.
COUNTING_BUILTINS = {"len", "range", "enumerate"}


def callee_name(node: ast.Call) -> str:
    """Simple name of the called function/method (``""`` if not a name)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def receiver_of(node: ast.Call) -> ast.expr | None:
    """The receiver expression of a method call (None for plain calls)."""
    if isinstance(node.func, ast.Attribute):
        return node.func.value
    return None


class CallResolver:
    """Resolves call expressions against the symbol table.

    The evaluation context supplies *kinds* — the project class a local
    name or receiver expression is known to hold — via the ``kind_of``
    callback, so the resolver itself stays stateless.
    """

    def __init__(self, table: SymbolTable) -> None:
        self.table = table

    def resolve(
        self,
        caller: FunctionSymbol,
        node: ast.Call,
        receiver_kind: str,
    ) -> FunctionSymbol | None:
        """The unique callee symbol of ``node``, or None.

        Args:
            caller: Function containing the call.
            node: The call expression.
            receiver_kind: Class name of the receiver expression for
                method calls (pre-computed by the evaluator; ``""`` when
                unknown or when the call has no receiver).
        """
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            # Constructor: Klass(...) resolves to Klass.__init__.
            klass = self.table.classes.get(name)
            if klass is not None:
                return self.table.find_method(name, "__init__")
            qualname = self.table.module_functions.get(caller.module, {}).get(name)
            if qualname is not None:
                return self.table.functions.get(qualname)
            return None
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                receiver_kind = receiver_kind or caller.class_name
            if receiver_kind:
                return self.table.find_method(receiver_kind, func.attr)
        return None


@dataclass
class CallGraph:
    """Resolved caller → callee edges, built as propagation discovers them."""

    edges: dict[str, set[str]] = field(default_factory=dict)

    def add(self, caller: str, callee: str) -> None:
        """Record one resolved call edge."""
        self.edges.setdefault(caller, set()).add(callee)

    def callees(self, qualname: str) -> set[str]:
        """Direct callees of one function (empty set when none resolved)."""
        return self.edges.get(qualname, set())

    def reachable_from(self, qualname: str) -> set[str]:
        """Transitive closure of :meth:`callees` (includes the root)."""
        seen: set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges.get(current, ()))
        return seen
