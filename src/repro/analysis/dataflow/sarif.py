"""SARIF 2.1.0 reporter for repro-lint findings.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning ingests: uploading the report from CI turns every finding into an
inline annotation on the pull request.  Only the small, stable subset of
the schema that code scanning reads is emitted.
"""

from __future__ import annotations

import json

from repro.analysis.lint.model import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/repro/repro"


def sarif_report(
    findings: list[Finding], rule_summaries: dict[str, str] | None = None
) -> dict[str, object]:
    """Build the SARIF log object (JSON-serializable dict)."""
    summaries = rule_summaries or {}
    rule_ids = sorted({finding.rule for finding in findings} | set(summaries))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": summaries.get(rule_id, rule_id),
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {
                "reproLint/v1": fingerprint(finding),
            },
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: list[Finding], rule_summaries: dict[str, str] | None = None
) -> str:
    """Serialize :func:`sarif_report` to pretty-printed JSON."""
    return json.dumps(sarif_report(findings, rule_summaries), indent=2) + "\n"


def fingerprint(finding: Finding) -> str:
    """Line-drift-resistant identity of a finding (shared with baseline)."""
    from repro.analysis.dataflow.baseline import finding_fingerprint

    return finding_fingerprint(finding)
