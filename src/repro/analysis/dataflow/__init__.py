"""Whole-program time-domain dataflow analysis (repro-lint v2).

Infers which time domain — event time, processing time, duration, count —
every parameter, return, attribute, and local in ``src/repro`` carries,
then reports cross-module violations as lint rules R06-R10.  See
``docs/ANALYSIS.md`` ("Time-domain analysis") for the lattice, the
seeding sources, and the baseline workflow.
"""

from __future__ import annotations

from repro.analysis.dataflow.lattice import Domain, domain_of_name, join
from repro.analysis.dataflow.propagation import (
    AnalysisResult,
    DomainViolation,
    analyse,
    analysis_for,
)
from repro.analysis.dataflow.rules import DATAFLOW_RULES
from repro.analysis.dataflow.baseline import Baseline, finding_fingerprint
from repro.analysis.dataflow.sarif import render_sarif, sarif_report
from repro.analysis.dataflow.symbols import SymbolTable

__all__ = [
    "AnalysisResult",
    "Baseline",
    "DATAFLOW_RULES",
    "Domain",
    "DomainViolation",
    "SymbolTable",
    "analyse",
    "analysis_for",
    "domain_of_name",
    "finding_fingerprint",
    "join",
    "render_sarif",
    "sarif_report",
]
