"""Seeded-schedule concurrent stress harness for the shared slice store.

The harness drives N threads of compatible-slide queries against one
:class:`~repro.engine.partial_tree.SharedSliceStore` under a
**deterministic barrier schedule**: every element is ingested by exactly
one thread (chosen by a seeded permuted round-robin), two barriers per
element separate ingestion from query advancement, and each query is
advanced only by its owner thread.  Determinism means a failure
reproduces from its ``(n_threads, seed)`` pair alone.

Two assertions come out of one run:

* **Parity** — the threaded run's per-query window results are
  bit-identical to a single-threaded :func:`run_shared_slices` reference
  over the same elements (the store's ingest/advance split replays
  ingest-time clocks, so interleaving must not matter).
* **Detection** — with ``buggy=True`` the store's lock is replaced by a
  do-nothing stand-in *before* RaceSan instrumentation, modelling
  "forgot the lock".  RaceSan must report at least one lockset finding
  (rotating ingester threads write ``_last_arrival``, the event-time
  clock and the tree's GC sequence with an empty candidate lockset).

Run it as ``python -m repro.analysis.concur stress``; the CI job sweeps
8 threads over several seeds.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field

from repro.analysis.concur.racesan import RaceFinding, RaceSan
from repro.engine.aggregates import MeanAggregate
from repro.engine.partial_tree import SharedSliceStore, run_shared_slices
from repro.streams.element import StreamElement

__all__ = [
    "StressReport",
    "build_elements",
    "build_store",
    "instrument_shared_store",
    "run_stress",
]

#: Seconds a worker waits on a barrier before declaring the run wedged.
_BARRIER_TIMEOUT_S = 60.0

#: Window sizes (in slides) cycled over registered queries; mixing spans
#: exercises both shallow and deep dyadic decompositions of the tree.
_SPANS = (1, 2, 4, 8)

#: Fixed release slacks cycled over registered queries.
_SLACKS = (0.5, 1.0, 1.5, 2.0, 2.5)


class _UnguardedLock:
    """Intentionally broken lock: acquires nothing, excludes nobody.

    Installed by the ``buggy=True`` stress fixture in place of the
    store's ``RLock`` so every "critical section" runs unprotected —
    the seeded race RaceSan is required to catch.
    """

    def __enter__(self) -> "_UnguardedLock":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Pretend to lock; returns True immediately."""
        return True

    def release(self) -> None:
        """Pretend to unlock."""
        return None


@dataclass
class StressReport:
    """Outcome of one :func:`run_stress` invocation."""

    n_threads: int
    seed: int
    n_elements: int
    n_queries: int
    buggy: bool
    parity_ok: bool
    findings: list[RaceFinding] = field(default_factory=list)
    #: Worker exceptions (thread index, repr).  Tolerated in buggy mode —
    #: an unguarded store may trip over its own corrupted state — and a
    #: hard failure otherwise.
    worker_errors: list[tuple[int, str]] = field(default_factory=list)
    results_per_query: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Did the run meet its contract (parity clean, or bug caught)?"""
        if self.buggy:
            return bool(self.findings)
        return self.parity_ok and not self.findings and not self.worker_errors


def build_elements(seed: int, n_elements: int) -> list[StreamElement]:
    """A seeded arrival-ordered stream with exponential-ish disorder."""
    rng = random.Random(seed)
    elements: list[StreamElement] = []
    arrival = 0.0
    for seq in range(n_elements):
        arrival += rng.expovariate(1.0 / 0.05)
        delay = rng.expovariate(1.0 / 0.4) if rng.random() < 0.4 else 0.0
        event = max(arrival - delay, 0.0)
        elements.append(
            StreamElement(
                event_time=event,
                value=rng.uniform(-1.0, 1.0),
                key=None,
                arrival_time=arrival,
                seq=seq,
            )
        )
    return elements


def build_store(n_queries: int, slide: float = 1.0) -> SharedSliceStore:
    """A store with ``n_queries`` fixed-slack queries of mixed spans."""
    store = SharedSliceStore(slide, MeanAggregate())
    for index in range(n_queries):
        store.register(
            f"q{index}",
            size=slide * _SPANS[index % len(_SPANS)],
            slack=_SLACKS[index % len(_SLACKS)],
        )
    return store


def instrument_shared_store(store: SharedSliceStore, san: RaceSan) -> None:
    """Attach attribute-level RaceSan instrumentation to a store.

    The store's lock is wrapped in a :class:`~.racesan.TrackedLock` (so
    holding it populates locksets), then the store, the shared tree, the
    event-time clock and every query record, view, stats block and
    frontier are class-swapped into recording mode.
    """
    store._lock = san.wrap_lock(store._lock, "SharedSliceStore._lock")
    san.instrument(store, "SharedSliceStore")
    san.instrument(store._tree, "_SliceTree")
    san.instrument(store._clock, "EventTimeFrontier")
    for query_id, query in store._queries.items():
        san.instrument(query, f"_SharedQuery[{query_id}]")
        san.instrument(query.frontier, f"MonotoneFrontier[{query_id}]")
        san.instrument(query.view, f"_QueryWindowView[{query_id}]")
        san.instrument(query.view.stats, f"OperatorStats[{query_id}]")


def run_stress(
    n_threads: int,
    seed: int,
    n_elements: int = 300,
    n_queries: int | None = None,
    buggy: bool = False,
    sanitize: bool = True,
) -> StressReport:
    """One deterministic multi-threaded run against a shared store.

    Args:
        n_threads: Worker threads; every thread ingests (round-robin,
            seeded permutation per round) and owns ``n_queries /
            n_threads`` queries.
        seed: Seeds both the element stream and the ingester schedule.
        n_elements: Stream length.
        n_queries: Registered queries (default ``2 * n_threads`` so
            every thread owns at least two).
        buggy: Replace the store's lock with a no-op before
            instrumentation — the seeded race RaceSan must detect.
        sanitize: Attach RaceSan instrumentation (disable to measure the
            harness itself).

    Returns:
        A :class:`StressReport`; check :attr:`StressReport.ok`.
    """
    if n_threads < 2:
        raise ValueError(f"stress needs >= 2 threads, got {n_threads}")
    if n_queries is None:
        n_queries = 2 * n_threads
    elements = build_elements(seed, n_elements)

    reference = build_store(n_queries)
    expected = {
        query_id: list(results)
        for query_id, results in run_shared_slices(elements, reference).items()
    }

    store = build_store(n_queries)
    san = RaceSan(raise_on_finding=False)
    if sanitize:
        instrument_shared_store(store, san)
    if buggy:
        # After instrumentation, so the do-nothing lock is NOT wrapped in
        # a TrackedLock — critical sections run with empty locksets.
        store._lock = _UnguardedLock()  # type: ignore[assignment]

    # Seeded permuted round-robin: every block of n_threads elements is
    # ingested by each thread exactly once, in shuffled order.
    rng = random.Random(seed ^ 0x5EED)
    schedule: list[int] = []
    while len(schedule) < n_elements:
        block = list(range(n_threads))
        rng.shuffle(block)
        schedule.extend(block)
    del schedule[n_elements:]

    owned: dict[int, list[str]] = {index: [] for index in range(n_threads)}
    for q_index in range(n_queries):
        owned[q_index % n_threads].append(f"q{q_index}")

    barrier = threading.Barrier(n_threads)
    errors: list[tuple[int, Exception]] = []

    def worker(thread_index: int) -> None:
        my_queries = owned[thread_index]
        try:
            for index, element in enumerate(elements):
                barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                if schedule[index] == thread_index:
                    store.ingest(element)
                barrier.wait(timeout=_BARRIER_TIMEOUT_S)
                for query_id in my_queries:
                    store.advance(query_id)
                if schedule[index] == thread_index and index % 16 == 15:
                    store.collect()
            barrier.wait(timeout=_BARRIER_TIMEOUT_S)
            for query_id in my_queries:
                store.finish_query(query_id)
        except threading.BrokenBarrierError:
            pass  # a peer failed; its exception carries the cause
        except Exception as exc:  # noqa: BLE001 — reported via the report
            errors.append((thread_index, exc))
            barrier.abort()

    threads = [
        threading.Thread(
            target=worker, args=(index,), name=f"stress-{index}", daemon=True
        )
        for index in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10 * _BARRIER_TIMEOUT_S)

    findings = list(san.findings)
    san.reset()
    parity_ok = not errors and store.results == expected
    report = StressReport(
        n_threads=n_threads,
        seed=seed,
        n_elements=n_elements,
        n_queries=n_queries,
        buggy=buggy,
        parity_ok=parity_ok,
        findings=findings,
        worker_errors=[(index, repr(exc)) for index, exc in errors],
        results_per_query={
            query_id: len(results) for query_id, results in store.results.items()
        },
    )
    if errors and not buggy:
        raise errors[0][1]
    return report
