"""CLI for the concurrency analysis: stress harness and inventory dump.

``python -m repro.analysis.concur stress`` runs the deterministic
barrier-schedule stress harness twice per seed — once guarded (asserting
single-threaded parity and zero RaceSan findings) and once against the
intentionally unguarded fixture (asserting RaceSan reports the seeded
race).  Exit status 1 when any phase misses its contract.

``python -m repro.analysis.concur inventory`` prints the shared-state
inventory the R11-R15 lint rules govern: every reachable class, how it
was reached, its declared ownership and its locks.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.concur.stress import run_stress
from repro.errors import ReproError


def _cmd_stress(args: argparse.Namespace) -> int:
    seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
    failures = 0
    for seed in seeds:
        report = run_stress(
            args.threads, seed, n_elements=args.elements, n_queries=args.queries
        )
        status = "ok" if report.ok else "FAIL"
        print(
            f"guarded  threads={report.n_threads} seed={seed}: parity="
            f"{report.parity_ok} findings={len(report.findings)} [{status}]"
        )
        if not report.ok:
            failures += 1
            for finding in report.findings[:5]:
                print(f"  unexpected: {finding.message}")
    if not args.skip_buggy:
        for seed in seeds:
            report = run_stress(
                args.threads,
                seed,
                n_elements=args.elements,
                n_queries=args.queries,
                buggy=True,
            )
            status = "ok" if report.ok else "FAIL"
            print(
                f"unguarded threads={report.n_threads} seed={seed}: "
                f"findings={len(report.findings)} "
                f"(seeded race {'caught' if report.ok else 'MISSED'}) [{status}]"
            )
            if not report.ok:
                failures += 1
    if failures:
        print(f"concur-stress: {failures} failing phase(s)", file=sys.stderr)
        return 1
    print("concur-stress: all phases ok")
    return 0


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.analysis.concur.inventory import build_inventory
    from repro.analysis.lint.model import Project, SourceFile, discover_files

    root = Path(args.path)
    files = [
        SourceFile.load(path, root=root if root.is_dir() else None)
        for path in discover_files([root])
    ]
    inventory = build_inventory(Project(files))
    width = max((len(name) for name in inventory.classes), default=10)
    for name in sorted(inventory.classes):
        record = inventory.classes[name]
        locks = ",".join(sorted(record.locks)) or "-"
        via = record.via or "(root)"
        print(
            f"{name:<{width}}  {record.declared or '?':<13} "
            f"locks={locks:<18} via {via}  [{record.module}:{record.line}]"
        )
    if inventory.globals:
        print()
        for (module, name), line in sorted(inventory.globals.items()):
            print(f"global {name}  [{module}:{line}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.concur",
        description="Concurrency analysis tools (stress harness, inventory).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stress = sub.add_parser("stress", help="run the concurrent stress harness")
    stress.add_argument("--threads", type=int, default=4)
    stress.add_argument("--seeds", default="0,1,2", help="comma-separated seeds")
    stress.add_argument("--elements", type=int, default=300)
    stress.add_argument(
        "--queries", type=int, default=None, help="default: 2 * threads"
    )
    stress.add_argument(
        "--skip-buggy",
        action="store_true",
        help="skip the unguarded-fixture detection phase",
    )
    stress.set_defaults(func=_cmd_stress)

    inventory = sub.add_parser(
        "inventory", help="print the shared-state inventory"
    )
    inventory.add_argument(
        "path", nargs="?", default="src", help="source root to analyze"
    )
    inventory.set_defaults(func=_cmd_inventory)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"concur: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
