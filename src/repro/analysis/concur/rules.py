"""Concurrency lint rules R11-R15 over the shared-state inventory.

========  ============================================================
R11       inventoried shared state is mutated only while holding the
          owning ``threading.Lock``/``RLock`` (``guarded`` classes) or
          never after ``__init__`` (``immutable`` classes); no writes
          to inventoried module globals
R12       raw ``lock.acquire()`` must sit in a ``try`` whose ``finally``
          releases the same lock (prefer ``with lock:``)
R13       the static lock-order graph must be acyclic; a non-reentrant
          ``Lock`` must not be re-acquired while already held
R14       inventoried shared classes declare
          ``__concurrency__ = "guarded" | "single-thread" | "immutable"``
R15       no ``time.sleep``/blocking I/O while holding a lock
========  ============================================================

R11, R13 and R15 are *lexical* analyses: a lock counts as held inside a
``with self._lock:`` block (plus, for R13, one level of same-class method
calls).  Helper methods that mutate guarded state should therefore acquire
the class's ``RLock`` themselves — re-entry is cheap and keeps the
discipline checkable.  See ``docs/ANALYSIS.md`` ("Concurrency analysis")
for the full contract and examples.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

# Bound at call time (``inventory.inventory_for`` etc.): this module is
# imported from inside ``repro.analysis.lint.__init__`` while the concur
# package may still be mid-initialization, so import-time name binding
# would fail depending on which package entered the cycle first.
from repro.analysis.concur import inventory as _inventory
from repro.analysis.lint.model import Finding, Project, SourceFile
from repro.analysis.lint.rules import Rule, _dotted

#: Methods allowed to mutate state without holding a lock: construction
#: happens before the instance can be shared.
_EXEMPT_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__init_subclass__"}
)

#: Receiver method names treated as in-place mutations of the receiver.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "setdefault",
        "sort",
        "reverse",
    }
)

#: Module functions that mutate their first argument in place.
_MUTATOR_FUNCTIONS = frozenset(
    {"heappush", "heappop", "heapify", "heappushpop", "heapreplace"}
)

#: Call targets considered blocking under a lock (R15).
_BLOCKING_DOTTED = frozenset({"time.sleep", "sleep", "os.system", "open", "input"})
_BLOCKING_ROOTS = frozenset({"socket", "requests", "urllib", "subprocess", "http"})
_BLOCKING_ATTRS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "wait"}
)


def _self_path(node: ast.expr) -> str:
    """Dotted display of an attribute/subscript chain rooted at ``self``."""
    if isinstance(node, ast.Name):
        return "self" if node.id == "self" else ""
    if isinstance(node, ast.Attribute):
        base = _self_path(node.value)
        return f"{base}.{node.attr}" if base else ""
    if isinstance(node, ast.Subscript):
        base = _self_path(node.value)
        return f"{base}[...]" if base else ""
    return ""


def _looks_like_lock(name: str) -> bool:
    return "lock" in name.lower() or "mutex" in name.lower()


def _self_lock_attr(node: ast.expr, lock_names: frozenset[str]) -> str:
    """The lock attribute acquired by a ``with self.X`` context expression."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (node.attr in lock_names or _looks_like_lock(node.attr))
    ):
        return node.attr
    return ""


def _mutations(node: ast.AST) -> list[tuple[ast.AST, str]]:
    """Mutations of ``self`` state performed directly by ``node``."""
    found: list[tuple[ast.AST, str]] = []

    def target_paths(target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                target_paths(element)
            return
        path = _self_path(target)
        if path and path != "self":
            found.append((target, f"assignment to {path}"))

    if isinstance(node, ast.Assign):
        for target in node.targets:
            target_paths(target)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if not (isinstance(node, ast.AnnAssign) and node.value is None):
            target_paths(node.target)
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            path = _self_path(target)
            if path and path != "self":
                found.append((target, f"deletion of {path}"))
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATOR_METHODS:
            path = _self_path(func.value)
            if path and path != "self":
                found.append((node, f"call to {path}.{func.attr}()"))
        else:
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            if name in _MUTATOR_FUNCTIONS and node.args:
                path = _self_path(node.args[0])
                if path and path != "self":
                    found.append((node, f"{name}() on {path}"))
    return found


def _walk_held(
    node: ast.AST,
    held: frozenset[str],
    lock_of: Callable[[ast.expr], str],
    visit: Callable[[ast.AST, frozenset[str]], None],
) -> None:
    """DFS that tracks which locks are lexically held at each node."""
    if isinstance(node, (ast.With, ast.AsyncWith)):
        visit(node, held)
        acquired: set[str] = set()
        for item in node.items:
            lock_id = lock_of(item.context_expr)
            if lock_id:
                acquired.add(lock_id)
            for child in ast.iter_child_nodes(item):
                _walk_held(child, held, lock_of, visit)
        inner = held | acquired if acquired else held
        for statement in node.body:
            _walk_held(statement, inner, lock_of, visit)
        return
    visit(node, held)
    for child in ast.iter_child_nodes(node):
        _walk_held(child, held, lock_of, visit)


def _methods(class_node: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


class GuardedMutationRule(Rule):
    """R11 — shared state is mutated only under its owning lock.

    A class annotated ``__concurrency__ = "guarded"`` owns at least one
    ``threading.Lock``/``RLock`` attribute, and every mutation of its
    ``self`` state outside ``__init__`` happens lexically inside a
    ``with self.<lock>:`` block.  A class annotated ``"immutable"`` never
    mutates itself after ``__init__`` at all.  Writing an inventoried
    module global through a ``global`` statement from any inventoried
    class is likewise flagged — module state reachable from shared
    instances is shared state.

    The check is lexical on purpose: a helper that mutates guarded state
    should re-acquire the class ``RLock`` itself rather than rely on its
    callers (re-entry is cheap, unlocked helpers are future races).
    """

    id = "R11"
    summary = (
        "mutation of inventoried shared state outside the owning "
        "threading.Lock/RLock (guarded) or after __init__ (immutable)"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        inventory = _inventory.inventory_for(project)
        module_globals = inventory.module_globals(source.display_path)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = inventory.class_in(node.name, source.display_path)
            if record is None:
                continue
            if record.declared == "guarded":
                yield from self._check_guarded(source, node, record.locks)
            elif record.declared == "immutable":
                yield from self._check_immutable(source, node)
            yield from self._check_globals(source, node, module_globals)

    def _check_guarded(
        self, source: SourceFile, node: ast.ClassDef, locks: dict[str, str]
    ) -> Iterator[Finding]:
        if not locks:
            yield self._finding(
                source,
                node,
                f"guarded class {node.name} owns no threading.Lock/RLock "
                "attribute; declare one (e.g. self._lock = threading.RLock()) "
                "or annotate the class single-thread",
            )
            return
        lock_names = frozenset(locks)
        lock_display = ", ".join(f"self.{name}" for name in sorted(locks))
        for method in _methods(node):
            if method.name in _EXEMPT_METHODS:
                continue
            findings: list[Finding] = []

            def visit(child: ast.AST, held: frozenset[str]) -> None:
                if held:
                    return
                for anchor, description in _mutations(child):
                    findings.append(
                        self._finding(
                            source,
                            anchor,
                            f"{description} in {node.name}.{method.name}() "
                            f"without holding {lock_display}; guarded state "
                            "must be mutated inside `with "
                            f"self.{sorted(locks)[0]}:`",
                        )
                    )

            _walk_held(
                method,
                frozenset(),
                lambda expr: _self_lock_attr(expr, lock_names),
                visit,
            )
            yield from findings

    def _check_immutable(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for method in _methods(node):
            if method.name in _EXEMPT_METHODS:
                continue
            for child in ast.walk(method):
                for anchor, description in _mutations(child):
                    yield self._finding(
                        source,
                        anchor,
                        f"{description} in {node.name}.{method.name}() "
                        f"mutates a class annotated __concurrency__ = "
                        '"immutable"',
                    )

    def _check_globals(
        self, source: SourceFile, node: ast.ClassDef, module_globals: set[str]
    ) -> Iterator[Finding]:
        if not module_globals:
            return
        for method in _methods(node):
            declared: set[str] = set()
            for child in ast.walk(method):
                if isinstance(child, ast.Global):
                    declared.update(child.names)
            if not declared:
                continue
            writable = declared & module_globals
            if not writable:
                continue
            for child in ast.walk(method):
                targets: list[ast.expr] = []
                if isinstance(child, ast.Assign):
                    targets = child.targets
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    targets = [child.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in writable:
                        yield self._finding(
                            source,
                            target,
                            f"write to module global {target.id} from "
                            f"{node.name}.{method.name}(); globals reachable "
                            "from shared state must not be reassigned",
                        )


class LockAcquireDisciplineRule(Rule):
    """R12 — raw ``acquire()`` calls need a try/finally ``release()``.

    ``with lock:`` is exception-safe by construction; a bare
    ``lock.acquire()`` is only accepted when a ``try`` releases the *same*
    dotted receiver in its ``finally`` block — either an enclosing try, or
    the statement immediately after the acquire (the canonical
    acquire-then-try idiom).  Receivers are recognized by name: any
    attribute or variable whose last segment contains ``lock``/``mutex``.
    """

    id = "R12"
    summary = (
        "lock acquired without `with` or a try/finally release of the "
        "same receiver"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        del project
        self._sanctioned = self._preceding_acquires(source.tree)
        yield from self._walk(source, source.tree, [])

    @classmethod
    def _preceding_acquires(cls, tree: ast.AST) -> frozenset[int]:
        """Acquire calls sanctioned by the canonical acquire-then-try idiom.

        ``lock.acquire()`` immediately followed by a ``try`` whose
        ``finally`` releases the same receiver is the textbook
        exception-safe pattern (acquiring *inside* the try would release
        an unheld lock if the acquire itself raised), so the acquire
        statement sits one position before the try, not within it.
        """
        sanctioned: set[int] = set()
        for node in ast.walk(tree):
            for name in ("body", "orelse", "finalbody"):
                statements = getattr(node, name, None)
                if not isinstance(statements, list):
                    continue
                for before, after in zip(statements, statements[1:]):
                    if (
                        isinstance(before, ast.Expr)
                        and isinstance(before.value, ast.Call)
                        and isinstance(before.value.func, ast.Attribute)
                        and before.value.func.attr == "acquire"
                        and isinstance(after, ast.Try)
                        and cls._releases(
                            after, _dotted(before.value.func.value)
                        )
                    ):
                        sanctioned.add(id(before.value))
        return frozenset(sanctioned)

    def _walk(
        self, source: SourceFile, node: ast.AST, tries: list[ast.Try]
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Try):
            inner = tries + [node]
            for part in (node.body, node.handlers, node.orelse):
                for child in part:
                    yield from self._walk(source, child, inner)
            for child in node.finalbody:
                yield from self._walk(source, child, tries)
            return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "acquire":
                receiver = _dotted(func.value)
                segment = receiver.rsplit(".", 1)[-1]
                if receiver and _looks_like_lock(segment):
                    if id(node) not in self._sanctioned and not any(
                        self._releases(guard, receiver) for guard in tries
                    ):
                        yield self._finding(
                            source,
                            node,
                            f"{receiver}.acquire() without `with` or a "
                            f"try/finally {receiver}.release(); a raised "
                            "exception would leak the lock",
                        )
        for child in ast.iter_child_nodes(node):
            yield from self._walk(source, child, tries)

    @staticmethod
    def _releases(guard: ast.Try, receiver: str) -> bool:
        for statement in guard.finalbody:
            for child in ast.walk(statement):
                if (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr == "release"
                    and _dotted(child.func.value) == receiver
                ):
                    return True
        return False


class _LockEdge:
    """One recorded acquisition edge ``src -> dst`` of the lock-order graph."""

    __slots__ = ("src", "dst", "path", "line", "col", "context")

    def __init__(
        self, src: str, dst: str, path: str, line: int, col: int, context: str
    ) -> None:
        self.src = src
        self.dst = dst
        self.path = path
        self.line = line
        self.col = col
        self.context = context


def _ast_class_locks(node: ast.ClassDef) -> dict[str, str]:
    """``self.X = threading.Lock()/RLock()`` attributes of one class body."""
    locks: dict[str, str] = {}
    for child in ast.walk(node):
        if not isinstance(child, ast.Assign) or not isinstance(
            child.value, ast.Call
        ):
            continue
        func = child.value.func
        factory = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else ""
        )
        if factory not in _inventory.LOCK_FACTORIES:
            continue
        for target in child.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                locks[target.attr] = factory
    return locks


def _lock_graph_for(project: Project) -> tuple[list[_LockEdge], dict[str, str]]:
    """Project-wide lock-order edges plus lock-kind map, cached."""
    cached = getattr(project, "_concur_lock_graph", None)
    if cached is None:
        cached = _build_lock_graph(project)
        project._concur_lock_graph = cached  # type: ignore[attr-defined]
    return cached


def _method_acquisitions(
    method: ast.AST, lock_names: frozenset[str]
) -> list[tuple[str, ast.expr]]:
    """Every ``with self.X`` lock acquisition anywhere inside ``method``."""
    acquired: list[tuple[str, ast.expr]] = []
    for child in ast.walk(method):
        if isinstance(child, (ast.With, ast.AsyncWith)):
            for item in child.items:
                attr = _self_lock_attr(item.context_expr, lock_names)
                if attr:
                    acquired.append((attr, item.context_expr))
    return acquired


def _build_lock_graph(project: Project) -> tuple[list[_LockEdge], dict[str, str]]:
    edges: list[_LockEdge] = []
    kinds: dict[str, str] = {}
    for source in project.files:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            locks = _ast_class_locks(node)
            lock_names = frozenset(locks) | frozenset(
                attr
                for method in _methods(node)
                for attr, _ in _method_acquisitions(method, frozenset())
            )
            for attr, kind in locks.items():
                kinds[f"{node.name}.{attr}"] = kind
            method_index = {method.name: method for method in _methods(node)}
            for method in _methods(node):

                def visit(child: ast.AST, held: frozenset[str]) -> None:
                    if not held:
                        return
                    # Direct nested acquisition.
                    if isinstance(child, (ast.With, ast.AsyncWith)):
                        for item in child.items:
                            attr = _self_lock_attr(item.context_expr, lock_names)
                            if attr:
                                for held_attr in sorted(held):
                                    edges.append(
                                        _LockEdge(
                                            f"{node.name}.{held_attr}",
                                            f"{node.name}.{attr}",
                                            source.display_path,
                                            item.context_expr.lineno,
                                            item.context_expr.col_offset + 1,
                                            f"{node.name}.{method.name}()",
                                        )
                                    )
                    # One level of same-class calls: with A held, calling a
                    # method that acquires B orders A before B.
                    elif isinstance(child, ast.Call):
                        func = child.func
                        if (
                            isinstance(func, ast.Attribute)
                            and isinstance(func.value, ast.Name)
                            and func.value.id == "self"
                            and func.attr in method_index
                            and func.attr != method.name
                        ):
                            callee = method_index[func.attr]
                            for attr, _ in _method_acquisitions(
                                callee, lock_names
                            ):
                                for held_attr in sorted(held):
                                    edges.append(
                                        _LockEdge(
                                            f"{node.name}.{held_attr}",
                                            f"{node.name}.{attr}",
                                            source.display_path,
                                            child.lineno,
                                            child.col_offset + 1,
                                            f"{node.name}.{method.name}() -> "
                                            f"self.{func.attr}()",
                                        )
                                    )

                _walk_held(
                    method,
                    frozenset(),
                    lambda expr: _self_lock_attr(expr, lock_names),
                    visit,
                )
    return edges, kinds


def _reaches(edges: list[_LockEdge], start: str, goal: str) -> bool:
    adjacency: dict[str, set[str]] = {}
    for edge in edges:
        adjacency.setdefault(edge.src, set()).add(edge.dst)
    seen = {start}
    queue = [start]
    while queue:
        here = queue.pop()
        for nxt in sorted(adjacency.get(here, ())):
            if nxt == goal:
                return True
            if nxt not in seen:
                seen.add(nxt)
                queue.append(nxt)
    return False


class LockOrderRule(Rule):
    """R13 — the static lock-acquisition-order graph must be acyclic.

    Nodes are class-level lock attributes (``Class.attr``); an edge
    ``A -> B`` is recorded when ``B`` is acquired lexically inside a
    ``with A`` block, or when a method called on ``self`` while holding
    ``A`` acquires ``B`` (one call level deep).  Any edge on a cycle is a
    potential deadlock and is flagged at its acquisition site.  A
    self-edge on a non-reentrant ``threading.Lock`` — re-acquiring a lock
    the thread already holds — deadlocks unconditionally and is always
    flagged; re-entering an ``RLock`` is legal and ignored.
    """

    id = "R13"
    summary = (
        "static lock-order graph must be acyclic; non-reentrant locks "
        "must not be re-acquired while held"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        edges, kinds = _lock_graph_for(project)
        cross_edges = [edge for edge in edges if edge.src != edge.dst]
        for edge in edges:
            if edge.path != source.display_path:
                continue
            if edge.src == edge.dst:
                if kinds.get(edge.src, "RLock") == "Lock":
                    yield Finding(
                        rule=self.id,
                        path=edge.path,
                        line=edge.line,
                        col=edge.col,
                        message=(
                            f"non-reentrant lock {edge.src} re-acquired "
                            f"while already held in {edge.context}; this "
                            "self-deadlocks (use threading.RLock or "
                            "restructure)"
                        ),
                    )
                continue
            if _reaches(cross_edges, edge.dst, edge.src):
                yield Finding(
                    rule=self.id,
                    path=edge.path,
                    line=edge.line,
                    col=edge.col,
                    message=(
                        f"lock-order cycle: {edge.src} -> {edge.dst} in "
                        f"{edge.context}, but {edge.dst} -> {edge.src} is "
                        "also acquired elsewhere; pick one global order"
                    ),
                )


class OwnershipAnnotationRule(Rule):
    """R14 — every inventoried shared class declares its ownership.

    The ``__concurrency__`` class attribute is a machine-checked contract:
    ``"guarded"`` (lock-protected, see R11), ``"single-thread"``
    (externally serialized; RaceSan verifies dynamically) or
    ``"immutable"`` (never mutated after construction).  Missing or
    invalid annotations are flagged on the class.
    """

    id = "R14"
    summary = (
        'inventoried shared classes declare __concurrency__ = "guarded" '
        '| "single-thread" | "immutable"'
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        inventory = _inventory.inventory_for(project)
        valid = ", ".join(f'"{value}"' for value in _inventory.OWNERSHIP_VALUES)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            record = inventory.class_in(node.name, source.display_path)
            if record is None:
                continue
            origin = f"reached via {record.via}" if record.via else "inventory root"
            if record.declared is None:
                yield self._finding(
                    source,
                    node,
                    f"class {node.name} is shared state ({origin}) but "
                    f"declares no __concurrency__ annotation; add "
                    f"__concurrency__ = one of {valid}",
                )
            elif record.declared not in _inventory.OWNERSHIP_VALUES:
                yield Finding(
                    rule=self.id,
                    path=source.display_path,
                    line=record.declared_line or node.lineno,
                    col=1,
                    message=(
                        f"class {node.name} declares __concurrency__ = "
                        f"{record.declared!r}; expected a string literal, "
                        f"one of {valid}"
                    ),
                )


class NoBlockingUnderLockRule(Rule):
    """R15 — critical sections must not block.

    ``time.sleep``, console/file I/O (``open``/``input``/``Path.read_*``),
    sockets/HTTP/subprocesses and ``.wait()`` calls while lexically inside
    a ``with <lock>:`` block stall every thread contending for the lock —
    and under the shared store's coarse lock, the whole pipeline.  Move
    the blocking work outside the critical section.
    """

    id = "R15"
    summary = "no time.sleep or blocking I/O while holding a lock"

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        del project
        findings: list[Finding] = []

        def lock_of(expr: ast.expr) -> str:
            dotted = _dotted(expr)
            segment = dotted.rsplit(".", 1)[-1] if dotted else ""
            return dotted if segment and _looks_like_lock(segment) else ""

        def visit(child: ast.AST, held: frozenset[str]) -> None:
            if not held or not isinstance(child, ast.Call):
                return
            label = self._blocking_label(child)
            if label:
                holder = sorted(held)[0]
                findings.append(
                    self._finding(
                        source,
                        child,
                        f"blocking call {label} while holding lock "
                        f"{holder}; move I/O and sleeps outside the "
                        "critical section",
                    )
                )

        _walk_held(source.tree, frozenset(), lock_of, visit)
        findings.sort(key=Finding.sort_key)
        yield from findings

    @staticmethod
    def _blocking_label(node: ast.Call) -> str:
        dotted = _dotted(node.func)
        if dotted in _BLOCKING_DOTTED:
            return f"{dotted}()"
        root = dotted.split(".", 1)[0] if dotted else ""
        if root in _BLOCKING_ROOTS and "." in dotted:
            return f"{dotted}()"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_ATTRS
        ):
            return f".{node.func.attr}()"
        return ""


#: The concurrency rule catalog, appended to ``repro.analysis.lint.ALL_RULES``.
CONCUR_RULES: tuple[Rule, ...] = (
    GuardedMutationRule(),
    LockAcquireDisciplineRule(),
    LockOrderRule(),
    OwnershipAnnotationRule(),
    NoBlockingUnderLockRule(),
)
