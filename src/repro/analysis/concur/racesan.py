"""RaceSan: a lockset-based dynamic race detector (Eraser-style mini-TSan).

RaceSan watches attribute accesses on *instrumented* objects and lock
acquire/release on *tracked* locks, and maintains the classic Eraser
state machine per ``(object, attribute)`` location:

* **Exclusive** — only one thread has ever touched the location.  No
  checking happens; single-threaded runs can never report a finding, by
  construction.
* **Shared** — a second thread touches the location.  The location's
  *candidate lockset* is initialised to the locks that thread holds, and
  every later access intersects the candidate set with the accessing
  thread's held locks.
* **Report** — the candidate lockset is empty at a write (write/write
  race) or at a read of a location some thread already wrote in the
  shared phase (read/write race).  Each location reports at most once.

Two instrumentation levels trade accuracy for overhead:

* :meth:`RaceSan.instrument` swaps an object's ``__class__`` for a
  generated subclass whose ``__getattribute__``/``__setattr__`` record
  every data-attribute access — precise, used by the concurrent stress
  harness (:mod:`repro.analysis.concur.stress`).
* :meth:`RaceSan.guard` wraps an object in a :class:`GuardedProxy` that
  records one access per *method call* (classified read or write by
  name) — cheap enough for ``run_pipeline(sanitize="race")``, whose
  overhead budget is enforced by ``benchmarks/test_racesan_overhead.py``.

Findings surface exactly like StreamSan's: a
:class:`~repro.errors.SanitizerError` whose message is prefixed
``RaceSan[lockset]``, mirrored to ``tracer.sanitizer_finding`` when a
tracer is attached, and collected on :attr:`RaceSan.findings` when
``raise_on_finding`` is off (the stress harness inspects the list after
joining its workers instead of blowing up mid-barrier).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import SanitizerError
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = ["GuardedProxy", "RaceFinding", "RaceSan", "TrackedLock"]


@dataclass(frozen=True)
class RaceFinding:
    """One detected lockset violation on a shared location."""

    kind: str  # "write/write" or "read/write"
    label: str  # instrumentation label of the object
    attr: str
    first_thread: int
    second_thread: int
    message: str


class TrackedLock:
    """A ``threading.Lock``/``RLock`` wrapper that reports to RaceSan.

    Only locks wrapped through :meth:`RaceSan.wrap_lock` count towards a
    thread's lockset; untracked locks are invisible, which is exactly how
    the intentionally buggy stress fixture models "forgot the lock".
    """

    __slots__ = ("_inner", "_san", "name")

    def __init__(self, inner: Any, san: "RaceSan", name: str) -> None:
        self._inner = inner
        self._san = san
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the wrapped lock, adding it to the holder's lockset."""
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._san.note_acquire(id(self))
        return acquired

    def release(self) -> None:
        """Release the wrapped lock, dropping it from the lockset."""
        self._san.note_release(id(self))
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"TrackedLock({self.name!r})"


class _LocationState:
    """Eraser state of one ``(object, attribute)`` location."""

    __slots__ = ("owner", "written", "lockset", "shared_written", "reported")

    def __init__(self, owner: int, written: bool) -> None:
        self.owner = owner
        self.written = written
        #: None while exclusive; the candidate lockset once shared.
        self.lockset: frozenset[int] | None = None
        self.shared_written = False
        self.reported = False


#: id(obj) -> (sanitizer, label) for every currently instrumented object.
#: Module-global so generated subclasses need no per-class state.
_INSTRUMENTED: dict[int, tuple["RaceSan", str]] = {}

#: Original class -> generated instrumented subclass.
_SUBCLASS_CACHE: dict[type, type] = {}


def _instrumented_subclass(cls: type) -> type:
    """Build (and cache) the recording subclass for ``cls``."""
    cached = _SUBCLASS_CACHE.get(cls)
    if cached is not None:
        return cached
    # Methods, properties and other class-level callables are not data:
    # recording their lookup would swamp the report with method fetches.
    skip = set()
    for klass in cls.__mro__:
        for name, value in vars(klass).items():
            if callable(value) or isinstance(
                value, (classmethod, staticmethod, property)
            ):
                skip.add(name)
    holder: dict[str, type] = {}

    def __getattribute__(self: Any, name: str) -> Any:
        value = super(holder["sub"], self).__getattribute__(name)
        if name.startswith("__") or name in skip:
            return value
        entry = _INSTRUMENTED.get(id(self))
        if entry is not None:
            san, label = entry
            san.record(label, id(self), name, is_write=False)
        return value

    def __setattr__(self: Any, name: str, value: Any) -> None:
        if not name.startswith("__"):
            entry = _INSTRUMENTED.get(id(self))
            if entry is not None:
                san, label = entry
                san.record(label, id(self), name, is_write=True)
        super(holder["sub"], self).__setattr__(name, value)

    sub = type(
        "Instrumented" + cls.__name__,
        (cls,),
        {
            "__slots__": (),
            "__getattribute__": __getattribute__,
            "__setattr__": __setattr__,
        },
    )
    holder["sub"] = sub
    sub._racesan_base = cls  # type: ignore[attr-defined]
    _SUBCLASS_CACHE[cls] = sub
    return sub


class RaceSan:
    """Lockset-based dynamic race detector over instrumented objects.

    Thread-safe: the detector's own tables are protected by a private
    mutex (held only for dictionary updates, never while running user
    code, so it cannot participate in a deadlock with tracked locks).
    """

    def __init__(
        self,
        raise_on_finding: bool = True,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.raise_on_finding = raise_on_finding
        self.tracer = tracer
        self.findings: list[RaceFinding] = []
        self._mu = threading.Lock()
        self._states: dict[tuple[int, str], _LocationState] = {}
        #: thread ident -> {id(TrackedLock): recursive hold count}.
        self._held: dict[int, dict[int, int]] = {}
        self._lock_names: dict[int, str] = {}
        self._my: list[int] = []  # ids this sanitizer instrumented

    # ---------------------------------------------------------------- locks

    def wrap_lock(self, lock: Any, name: str = "lock") -> TrackedLock:
        """Wrap ``lock`` so holding it counts towards locksets."""
        if isinstance(lock, TrackedLock):
            return lock
        tracked = TrackedLock(lock, self, name)
        with self._mu:
            self._lock_names[id(tracked)] = name
        return tracked

    def note_acquire(self, lock_id: int) -> None:
        """A tracked lock was acquired by the calling thread."""
        tid = threading.get_ident()
        with self._mu:
            counts = self._held.setdefault(tid, {})
            counts[lock_id] = counts.get(lock_id, 0) + 1

    def note_release(self, lock_id: int) -> None:
        """A tracked lock was released by the calling thread."""
        tid = threading.get_ident()
        with self._mu:
            counts = self._held.get(tid, {})
            remaining = counts.get(lock_id, 0) - 1
            if remaining > 0:
                counts[lock_id] = remaining
            else:
                counts.pop(lock_id, None)

    def locks_held(self) -> frozenset[int]:
        """Lock ids the calling thread currently holds (for tests)."""
        with self._mu:
            return frozenset(self._held.get(threading.get_ident(), ()))

    # -------------------------------------------------------------- accesses

    def record(self, label: str, obj_id: int, attr: str, is_write: bool) -> None:
        """Note one attribute access; raises on a lockset violation."""
        tid = threading.get_ident()
        finding: RaceFinding | None = None
        with self._mu:
            key = (obj_id, attr)
            state = self._states.get(key)
            if state is None:
                self._states[key] = _LocationState(tid, is_write)
                return
            if state.lockset is None:
                if state.owner == tid:
                    state.written = state.written or is_write
                    return
                # Second thread: enter the shared phase.  Writes from the
                # exclusive phase only matter if the shared phase writes
                # too (the classic initialise-then-publish refinement).
                held = frozenset(self._held.get(tid, ()))
                state.lockset = held
                state.shared_written = is_write and state.written
            else:
                held = frozenset(self._held.get(tid, ()))
                state.lockset &= held
                if is_write:
                    state.shared_written = True
            if state.shared_written and not state.lockset and not state.reported:
                state.reported = True
                kind = "write/write" if is_write else "read/write"
                message = (
                    f"RaceSan[lockset]: {kind} race on {label}.{attr} — "
                    f"thread {tid} accessed it with no lock in common with "
                    f"thread {state.owner} (candidate lockset is empty)"
                )
                finding = RaceFinding(
                    kind=kind,
                    label=label,
                    attr=attr,
                    first_thread=state.owner,
                    second_thread=tid,
                    message=message,
                )
                self.findings.append(finding)
        if finding is not None:
            if self.tracer.enabled:
                self.tracer.sanitizer_finding(
                    float("nan"), "race.lockset", finding.message
                )
            if self.raise_on_finding:
                raise SanitizerError(finding.message)

    # -------------------------------------------- attribute instrumentation

    def instrument(self, obj: Any, label: str) -> Any:
        """Record every data-attribute access on ``obj`` (in place).

        Swaps ``obj.__class__`` for a generated recording subclass with an
        empty ``__slots__`` (layout-compatible with slotted classes).
        Returns ``obj`` for chaining.
        """
        if id(obj) in _INSTRUMENTED:
            return obj
        obj.__class__ = _instrumented_subclass(type(obj))
        _INSTRUMENTED[id(obj)] = (self, label)
        self._my.append(id(obj))
        return obj

    def uninstrument(self, obj: Any) -> Any:
        """Undo :meth:`instrument` (restores the original class)."""
        entry = _INSTRUMENTED.pop(id(obj), None)
        if entry is not None:
            obj.__class__ = type(obj)._racesan_base
        return obj

    def reset(self) -> None:
        """Drop all state and detach every object this sanitizer watches."""
        with self._mu:
            self._states.clear()
            self._held.clear()
            self.findings.clear()
            my, self._my = self._my, []
        for obj_id in my:
            _INSTRUMENTED.pop(obj_id, None)

    # ------------------------------------------------ method-level guarding

    def guard(
        self,
        obj: Any,
        label: str,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        wrap_attrs: Iterable[str] = ("handler",),
    ) -> "GuardedProxy":
        """Wrap ``obj`` in a :class:`GuardedProxy` (one record per call)."""
        return GuardedProxy(
            obj,
            self,
            label,
            reads=frozenset(reads),
            writes=frozenset(writes),
            wrap_attrs=frozenset(wrap_attrs),
        )

    def guard_operator(self, operator: Any) -> "GuardedProxy":
        """Guard a pipeline operator (``run_pipeline(sanitize="race")``)."""
        return self.guard(operator, type(operator).__name__)


#: Method-name prefixes classified as reads by :class:`GuardedProxy`.
_READ_PREFIXES: tuple[str, ...] = (
    "get",
    "is_",
    "has_",
    "peek",
    "describe",
    "snapshot",
    "stats",
    "count",
    "buffered",
    "released",
    "max_",
    "slice",
    "node",
    "current",
    "frontier",
    "latency",
)


class GuardedProxy:
    """Transparent wrapper recording one RaceSan access per method call.

    Attribute reads of plain data are recorded as reads and returned
    unwrapped; attributes named in ``wrap_attrs`` (by default the
    operator's ``handler``) are wrapped in nested proxies so their calls
    are tracked too.  Method calls record a read or a write according to
    the method's name (``_READ_PREFIXES``), overridable per proxy via the
    explicit ``reads``/``writes`` sets.
    """

    __slots__ = ("_inner", "_san", "_label", "_reads", "_writes", "_wrap", "_cache")

    def __init__(
        self,
        inner: Any,
        san: RaceSan,
        label: str,
        reads: frozenset[str] = frozenset(),
        writes: frozenset[str] = frozenset(),
        wrap_attrs: frozenset[str] = frozenset(),
    ) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_san", san)
        object.__setattr__(self, "_label", label)
        object.__setattr__(self, "_reads", reads)
        object.__setattr__(self, "_writes", writes)
        object.__setattr__(self, "_wrap", wrap_attrs)
        object.__setattr__(self, "_cache", {})

    def _is_read(self, name: str) -> bool:
        if name in self._writes:
            return False
        if name in self._reads:
            return True
        return name.startswith(_READ_PREFIXES)

    def __getattr__(self, name: str) -> Any:
        cache = self._cache
        cached = cache.get(name)
        if cached is not None:
            return cached
        inner = self._inner
        san = self._san
        label = self._label
        value = getattr(inner, name)
        if name in self._wrap and value is not None:
            wrapped = GuardedProxy(
                value, san, f"{label}.{name}", self._reads, self._writes
            )
            cache[name] = wrapped
            return wrapped
        if callable(value) and not isinstance(value, type):
            is_write = not self._is_read(name)
            inner_id = id(inner)

            def call(*args: Any, **kwargs: Any) -> Any:
                san.record(label, inner_id, name, is_write)
                return value(*args, **kwargs)

            call.__name__ = name
            cache[name] = call
            return call
        san.record(label, id(inner), name, is_write=False)
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        inner = self._inner
        self._san.record(self._label, id(inner), name, is_write=True)
        self._cache.pop(name, None)
        setattr(inner, name, value)

    def __repr__(self) -> str:
        return f"GuardedProxy({self._inner!r})"
