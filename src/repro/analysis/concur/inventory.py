"""Shared-state inventory: which classes the concurrency rules govern.

The inventory answers one question: *which state can be reached from the
shared execution layer?*  Starting from the root classes (the shared
store/buffer, the partial-aggregate tree, the sorting buffer, the metrics
registry and the trace recorder), it walks the project's symbol table:

* an attribute whose *kind* resolves to a project class pulls that class
  in (``self._tree = _SliceTree(...)`` reaches ``_SliceTree``);
* a constructor call anywhere in a reachable class's methods pulls the
  constructed class in (``self._queries[qid] = _SharedQuery(...)`` and
  ``WindowResult(...)`` both count — aliasing through locals does not
  hide the edge);
* an ``__init__`` assignment from a typed parameter pulls the parameter's
  class in (``self.handler = handler`` with ``handler: DisorderHandler``);
* base classes of reachable classes are reachable (their attributes live
  on the same instances).

Exception types are excluded — raising is not sharing.  Every inventoried
class must carry a ``__concurrency__`` ownership annotation (rule R14)
declaring its contract:

``"guarded"``
    The class owns a ``threading.Lock``/``RLock`` and every mutation of
    its state happens while holding it (rule R11 enforces this
    lexically).
``"single-thread"``
    Instances are only ever driven by one thread at a time — either a
    single owner, or callers serialize access externally (e.g. the slice
    tree is only touched under the shared store's lock).  RaceSan checks
    the claim dynamically.
``"immutable"``
    Instances never change after construction; sharing them is free.

Module globals defined in files that declare inventoried classes are
tracked too: writing one through a ``global`` statement from an
inventoried class is an R11 finding.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# Bound at call time (``propagation.analysis_for``): the analysis
# packages form an import cycle and this module can be reached while
# ``propagation`` is still mid-initialization.
from repro.analysis.dataflow import propagation
from repro.analysis.dataflow.symbols import ClassSymbol, SymbolTable
from repro.analysis.lint.model import Project

#: Classes whose reachable state forms the shared-state inventory.
#: ``PartialAggregateTree`` is accepted as an alias of the internal
#: ``_SliceTree`` so forks that rename the tree stay covered.
ROOT_CLASSES: tuple[str, ...] = (
    "SharedSliceStore",
    "SharedAQKBuffer",
    "PartialAggregateTree",
    "_SliceTree",
    "TreeWindowAggregateOperator",
    "SortingBuffer",
    "MetricsRegistry",
    "TraceRecorder",
)

#: Legal values of the ``__concurrency__`` ownership annotation.
OWNERSHIP_VALUES: tuple[str, ...] = ("guarded", "single-thread", "immutable")

#: Constructor names recognized as lock factories.
LOCK_FACTORIES: frozenset[str] = frozenset({"Lock", "RLock"})

#: Base-class names marking exception types (excluded from the inventory).
_EXCEPTION_BASES: frozenset[str] = frozenset(
    {"Exception", "BaseException", "ValueError", "RuntimeError", "TypeError"}
)


@dataclass
class InventoriedClass:
    """One class of the shared-state inventory."""

    name: str
    module: str  # display path of the defining file
    line: int
    #: How the class entered the inventory: "" for roots, else the name of
    #: the reachable class that references it.
    via: str
    #: Instance attribute names seen in ``__slots__`` or ``self.x = ...``.
    attrs: tuple[str, ...] = ()
    #: Lock-typed attributes: name -> "Lock" | "RLock".
    locks: dict[str, str] = field(default_factory=dict)
    #: Declared ``__concurrency__`` value (None when missing; the raw
    #: string even when invalid, so R14 can distinguish the two).
    declared: str | None = None
    declared_line: int = 0


@dataclass
class SharedStateInventory:
    """Every class and module global the concurrency rules govern."""

    classes: dict[str, InventoriedClass] = field(default_factory=dict)
    #: (module display path, global name) -> definition line.
    globals: dict[tuple[str, str], int] = field(default_factory=dict)

    def class_in(self, name: str, module: str) -> InventoriedClass | None:
        """The inventory record for ``name`` if it is defined in ``module``."""
        record = self.classes.get(name)
        if record is not None and record.module == module:
            return record
        return None

    def module_globals(self, module: str) -> set[str]:
        """Tracked global names of one module."""
        return {name for (mod, name) in self.globals if mod == module}


def _is_exception(table: SymbolTable, name: str) -> bool:
    if name.endswith("Error") or name.endswith("Exception"):
        return True
    for symbol in table.ancestry(name):
        if _EXCEPTION_BASES & set(symbol.base_names):
            return True
    return False


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _class_neighbours(table: SymbolTable, symbol: ClassSymbol) -> set[str]:
    """Project classes one reachability step away from ``symbol``."""
    found: set[str] = set()
    # Attribute kinds: annotations and ``self.x = Klass()`` seeds.  Kinds
    # that do not resolve to a project class (type aliases, builtins) are
    # not reachability edges.
    found.update(
        kind for kind in symbol.attr_kinds.values() if kind in table.classes
    )
    for method in symbol.methods.values():
        for node in ast.walk(method.node):
            # Any constructor call in a method body (stored, appended,
            # returned — all of it escapes into reachable state or results).
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in table.classes and name != symbol.name:
                    found.add(name)
            # ``self.x = param`` where the parameter is class-typed.
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
                kind = method.param_kinds.get(node.value.id, "")
                if kind and kind in table.classes:
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            found.add(kind)
    # Base classes share the instance layout.
    found.update(base for base in symbol.base_names if base in table.classes)
    return {name for name in found if not _is_exception(table, name)}


def _class_attrs(symbol: ClassSymbol) -> tuple[str, ...]:
    attrs: set[str] = set()
    for item in symbol.node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    value = item.value
                    if isinstance(value, (ast.Tuple, ast.List)):
                        attrs.update(
                            elt.value
                            for elt in value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)
                        )
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            attrs.add(item.target.id)
    for method in symbol.methods.values():
        for node in ast.walk(method.node):
            if (
                isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                and (target := getattr(node, "target", None) or node.targets[0])
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                attrs.add(target.attr)
    return tuple(sorted(attrs))


def _class_locks(symbol: ClassSymbol) -> dict[str, str]:
    """Lock-typed ``self.x`` attributes: name -> Lock/RLock kind."""
    locks: dict[str, str] = {}
    for method in symbol.methods.values():
        for node in ast.walk(method.node):
            if not isinstance(node, ast.Assign) or not isinstance(
                node.value, ast.Call
            ):
                continue
            factory = _call_name(node.value)
            if factory not in LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    locks[target.attr] = factory
    return locks


def _declared_ownership(symbol: ClassSymbol) -> tuple[str | None, int]:
    for item in symbol.node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__concurrency__":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value, item.lineno
                return "", item.lineno  # non-literal: invalid
    return None, 0


def build_inventory(project: Project) -> SharedStateInventory:
    """Walk reachability from the root classes over the symbol table."""
    table = propagation.analysis_for(project).table
    inventory = SharedStateInventory()
    queue: list[tuple[str, str]] = [
        (root, "") for root in ROOT_CLASSES if root in table.classes
    ]
    while queue:
        name, via = queue.pop(0)
        if name in inventory.classes:
            continue
        symbol = table.classes[name]
        declared, declared_line = _declared_ownership(symbol)
        inventory.classes[name] = InventoriedClass(
            name=name,
            module=symbol.module,
            line=symbol.node.lineno,
            via=via,
            attrs=_class_attrs(symbol),
            locks=_class_locks(symbol),
            declared=declared,
            declared_line=declared_line,
        )
        for neighbour in sorted(_class_neighbours(table, symbol)):
            if neighbour not in inventory.classes:
                queue.append((neighbour, name))
    # Module globals of every file defining an inventoried class.
    modules = {record.module for record in inventory.classes.values()}
    for source in project.files:
        if source.display_path not in modules:
            continue
        for item in source.tree.body:
            targets = (
                item.targets
                if isinstance(item, ast.Assign)
                else [item.target]
                if isinstance(item, ast.AnnAssign)
                else []
            )
            for target in targets:
                if isinstance(target, ast.Name) and target.id != "__all__":
                    inventory.globals[(source.display_path, target.id)] = item.lineno
    return inventory


def inventory_for(project: Project) -> SharedStateInventory:
    """Per-project cached :func:`build_inventory` (rules share one walk)."""
    cached = getattr(project, "_concur_inventory", None)
    if cached is None:
        cached = build_inventory(project)
        project._concur_inventory = cached  # type: ignore[attr-defined]
    return cached
