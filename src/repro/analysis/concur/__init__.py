"""Concurrency-safety analysis for the shared execution layer.

The shared-state layer (:class:`~repro.engine.partial_tree.SharedSliceStore`,
:class:`~repro.core.shared.SharedAQKBuffer`, the partial-aggregate tree,
buffers, metrics, traces) is the substrate the ROADMAP's parallel executor
will drive from multiple threads.  This package proves — statically and
dynamically — that the substrate's locking discipline holds:

* :mod:`repro.analysis.concur.inventory` infers the **shared-state
  inventory**: every class (and module global) reachable from the shared
  roots through attribute types and constructor calls, plus each class's
  declared ``__concurrency__`` ownership annotation and owned locks.
* :mod:`repro.analysis.concur.rules` turns the inventory into lint rules
  **R11-R15** (lock-guarded mutation, ``with``/try-finally acquire
  discipline, acyclic lock-order graph, mandatory ownership annotations,
  no blocking calls under a lock), reported through the standard
  repro-lint reporters, suppressions and baseline.
* :mod:`repro.analysis.concur.racesan` is **RaceSan**, a runtime
  lockset-based race detector (an Eraser-style mini-TSan) enabled via
  ``run_pipeline(sanitize="race")`` or explicit instrumentation.
* :mod:`repro.analysis.concur.stress` drives N threads of compatible-slide
  queries against one shared store under deterministic barrier schedules,
  asserting single-threaded result parity and that RaceSan catches an
  intentionally unguarded fixture: ``python -m repro.analysis.concur
  stress``.
"""

from __future__ import annotations

from repro.analysis.concur.inventory import (
    OWNERSHIP_VALUES,
    ROOT_CLASSES,
    SharedStateInventory,
    inventory_for,
)
from repro.analysis.concur.racesan import GuardedProxy, RaceFinding, RaceSan
from repro.analysis.concur.rules import CONCUR_RULES

__all__ = [
    "CONCUR_RULES",
    "GuardedProxy",
    "OWNERSHIP_VALUES",
    "ROOT_CLASSES",
    "RaceFinding",
    "RaceSan",
    "SharedStateInventory",
    "inventory_for",
]
