"""Static and dynamic analysis of the disorder-handling engine.

Two complementary layers keep the engine honest about the invariants the
paper assumes but ordinary tests rarely pin down:

* :mod:`repro.analysis.lint` — **repro-lint**, an AST-based linter with
  engine-specific rules (no wall-clock time in simulated-time code,
  scalar/batched API parity, no exact float comparison of timestamps,
  stream-element immutability, metrics-field registration).  Run it as
  ``python -m repro.analysis.lint src/``.
* :mod:`repro.analysis.sanitizer` — **StreamSan**, ASan-style runtime
  checkers that wrap a pipeline's handler and operator and assert frontier
  monotonicity, release/buffer bookkeeping, window-retirement ordering and
  (opt-in) batched-vs-scalar equivalence while real workloads execute.
  Enable it with ``run_pipeline(..., sanitize=True)``.

See ``docs/ANALYSIS.md`` for the rule catalog and sanitizer flags.
"""

from __future__ import annotations

__all__ = [
    "lint",
    "sanitizer",
]
