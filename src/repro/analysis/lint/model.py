"""Data model of the linter: parsed files, findings, suppressions.

The linter works on a :class:`Project` — every Python file under the
scanned roots, parsed once.  Rules receive the whole project so they can
perform cross-file analysis (e.g. resolving a class's ancestors to decide
whether it inherits a specialized batched path).

Suppressions are source comments:

* ``# repro-lint: disable=R01`` — suppress the named rule(s) on that line
  (comma-separated ids, or ``all``);
* ``# repro-lint: disable-file=R03`` — suppress for the whole file.

Every suppression in the repository is expected to carry a justification
in the surrounding code; the linter itself only honours the directive.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

_SUPPRESS_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")
_SUPPRESS_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report order: path, then position, then rule."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable representation (used by the JSON reporter)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def _parse_ids(raw: str) -> set[str]:
    return {part.strip().upper() for part in raw.split(",") if part.strip()}


def _comments(text: str) -> list[tuple[int, str]]:
    """(line, comment text) for every comment token in ``text``.

    Falls back to raw lines when the file does not tokenize (the caller
    parses it with :mod:`ast` right before, so this only happens for
    encoding corner cases).
    """
    try:
        return [
            (token.start[0], token.string)
            for token in tokenize.generate_tokens(io.StringIO(text).readline)
            if token.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        return list(enumerate(text.splitlines(), start=1))


@dataclass
class SourceFile:
    """One parsed Python source file plus its suppression directives."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    line_suppressions: dict[int, set[str]] = field(default_factory=dict)
    file_suppressions: set[str] = field(default_factory=set)
    #: Every rule id mentioned by a suppression comment, with its line —
    #: used to reject typo'd ids (``disable=R16``) that would otherwise
    #: silently disable nothing.
    suppression_mentions: list[tuple[int, str]] = field(default_factory=list)

    @staticmethod
    def load(path: Path, root: Path | None = None) -> "SourceFile":
        """Read and parse ``path``; raises ``SyntaxError`` on bad source."""
        text = path.read_text(encoding="utf-8")
        try:
            display = str(path.relative_to(root)) if root is not None else str(path)
        except ValueError:
            display = str(path)
        tree = ast.parse(text, filename=display)
        source = SourceFile(
            path=path, display_path=display, text=text, tree=tree
        )
        # Directives are read off real COMMENT tokens, not raw text lines:
        # a docstring *describing* ``# repro-lint: disable=R01`` must
        # neither suppress anything nor trip the unknown-id check.
        for number, line in _comments(text):
            if "repro-lint" not in line:
                continue
            match = _SUPPRESS_FILE.search(line)
            if match:
                ids = _parse_ids(match.group(1))
                source.file_suppressions |= ids
                source.suppression_mentions.extend(
                    (number, rule_id) for rule_id in sorted(ids)
                )
                continue
            match = _SUPPRESS_LINE.search(line)
            if match:
                ids = _parse_ids(match.group(1))
                source.line_suppressions.setdefault(number, set()).update(ids)
                source.suppression_mentions.extend(
                    (number, rule_id) for rule_id in sorted(ids)
                )
        return source

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when the rule is disabled for this file or this line."""
        rule_id = rule_id.upper()
        for ids in (self.file_suppressions, self.line_suppressions.get(line, ())):
            if rule_id in ids or "ALL" in ids:
                return True
        return False

    @property
    def engine_scoped(self) -> bool:
        """True for files inside the simulated-time core (``engine``/``core``)."""
        posix = self.path.as_posix()
        return "/engine/" in posix or "/core/" in posix


@dataclass
class ClassInfo:
    """Cross-file class facts used by the parity rule (R02)."""

    name: str
    display_path: str
    line: int
    base_names: list[str]
    methods: set[str]


class Project:
    """Every parsed file of one lint run, plus cross-file indexes."""

    def __init__(self, files: list[SourceFile]) -> None:
        self.files = files
        self.classes: dict[str, ClassInfo] = {}
        for source in files:
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods = {
                    item.name
                    for item in node.body
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                info = ClassInfo(
                    name=node.name,
                    display_path=source.display_path,
                    line=node.lineno,
                    base_names=[_base_name(base) for base in node.bases],
                    methods=methods,
                )
                # Duplicate simple names across files are dropped from the
                # index: resolving them would need full import tracking, and
                # a wrong ancestor chain is worse than no finding.
                if node.name in self.classes:
                    self.classes[node.name] = ClassInfo(
                        name=node.name,
                        display_path="",
                        line=0,
                        base_names=[],
                        methods=set(),
                    )
                else:
                    self.classes[node.name] = info

    def ancestors(self, class_name: str) -> list[ClassInfo]:
        """Transitive base classes resolvable inside the project, BFS order."""
        seen: set[str] = {class_name}
        queue = list(self.classes.get(class_name, ClassInfo("", "", 0, [], set())).base_names)
        found: list[ClassInfo] = []
        while queue:
            base = queue.pop(0)
            if base in seen:
                continue
            seen.add(base)
            info = self.classes.get(base)
            if info is None:
                continue
            found.append(info)
            queue.extend(info.base_names)
        return found


def _base_name(node: ast.expr) -> str:
    """Simple name of a base-class expression (``pkg.Base`` -> ``Base``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _base_name(node.value)
    return ""


def discover_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            seen.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            seen.add(path)
    return sorted(seen)
