"""Reporters turning lint findings into text or JSON output."""

from __future__ import annotations

import json
from collections import Counter

from repro.analysis.lint.model import Finding


def render_text(findings: list[Finding]) -> str:
    """GCC-style one-line-per-finding report, ending with a summary line."""
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        for f in sorted(findings, key=Finding.sort_key)
    ]
    if findings:
        counts = Counter(f.rule for f in findings)
        breakdown = ", ".join(
            f"{rule}={count}" for rule, count in sorted(counts.items())
        )
        lines.append(f"repro-lint: {len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("repro-lint: clean")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    """Machine-readable report: findings plus per-rule counts."""
    ordered = sorted(findings, key=Finding.sort_key)
    payload = {
        "findings": [f.to_dict() for f in ordered],
        "counts": dict(sorted(Counter(f.rule for f in ordered).items())),
        "total": len(ordered),
    }
    return json.dumps(payload, indent=2)
