"""Command-line entry point: ``python -m repro.analysis.lint [paths...]``.

Exit status is 0 when no findings survive suppression, 1 otherwise, and
2 on usage errors — suitable for ``make lint`` and CI gates.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import ALL_RULES, render_json, render_text, run_lint
from repro.errors import ConfigurationError


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the linter, print a report, return exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Engine-specific invariant linter (repro-lint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--no-suppressions",
        action="store_true",
        help="ignore # repro-lint: disable comments",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
            doc = (rule.__doc__ or "").strip()
            for line in doc.splitlines():
                print(f"      {line.strip()}")
            print()
        return 0

    select = args.select.split(",") if args.select else None
    try:
        findings = run_lint(
            args.paths,
            select=select,
            honour_suppressions=not args.no_suppressions,
        )
    except ConfigurationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
