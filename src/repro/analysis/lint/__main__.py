"""Command-line entry point: ``python -m repro.analysis.lint [paths...]``.

Exit status is 0 when no findings survive suppression and the baseline,
1 otherwise, and 2 on usage errors — suitable for ``make lint`` and CI
gates.  ``--check-baseline`` additionally fails (status 1) when
``analysis/baseline.json`` contains entries that no longer occur.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.lint import (
    ALL_RULES,
    expand_rule_ids,
    render_json,
    render_text,
    run_lint,
)
from repro.analysis.dataflow.baseline import (
    DEFAULT_BASELINE_PATH,
    Baseline,
)
from repro.analysis.dataflow.sarif import render_sarif
from repro.errors import ConfigurationError


def main(argv: list[str] | None = None) -> int:
    """Parse arguments, run the linter, print a report, return exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Engine-specific invariant linter (repro-lint).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        default=None,
        help=(
            "comma-separated rule ids to run; ranges allowed "
            "(e.g. R06-R10). Default: all"
        ),
    )
    parser.add_argument(
        "--no-suppressions",
        action="store_true",
        help="ignore # repro-lint: disable comments",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE_PATH} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report all findings, ignoring any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="capture the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help=(
            "fail when the baseline contains stale entries (fixed findings "
            "that were never regenerated away)"
        ),
    )
    parser.add_argument(
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.summary}")
            doc = (rule.__doc__ or "").strip()
            for line in doc.splitlines():
                print(f"      {line.strip()}")
            print()
        return 0

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE_PATH
    baseline: Baseline | None = None
    if not args.no_baseline and not args.write_baseline:
        if args.baseline or baseline_path.exists():
            baseline = Baseline.load(baseline_path)

    try:
        select = expand_rule_ids(args.select) if args.select else None
        findings = run_lint(
            args.paths,
            select=select,
            honour_suppressions=not args.no_suppressions,
        )
    except ConfigurationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(
            f"repro-lint: baseline of {len(findings)} finding(s) written "
            f"to {baseline_path}"
        )
        return 0

    status = 0
    if args.check_baseline and baseline is not None:
        stale = baseline.stale_entries(findings)
        if stale:
            print(
                f"repro-lint: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} in {baseline_path} — "
                "the findings were fixed; regenerate with --write-baseline",
                file=sys.stderr,
            )
            status = 1

    if baseline is not None:
        findings = baseline.apply(findings)

    if args.format == "sarif":
        report = render_sarif(
            findings, {rule.id: rule.summary for rule in ALL_RULES}
        )
    elif args.format == "json":
        report = render_json(findings)
    else:
        report = render_text(findings)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
    else:
        print(report)
    return 1 if findings else status


if __name__ == "__main__":
    sys.exit(main())
