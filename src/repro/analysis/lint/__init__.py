"""repro-lint: AST-based invariant linter for the disorder-handling engine.

The linter enforces engine-specific invariants that generic tools cannot
know about.  R01-R05 are per-file syntactic rules; R06-R10 come from the
whole-program time-domain dataflow analysis
(:mod:`repro.analysis.dataflow`); R11-R15 are the concurrency-safety
rules over the shared-state inventory (:mod:`repro.analysis.concur`);
R16-R20 are the float-soundness rules over the numeric inventory
(:mod:`repro.analysis.numeric`):

========  ============================================================
R01       no wall-clock time or nondeterministic RNG in ``engine``/``core``
R02       scalar/batched method parity (``process``/``process_many``,
          ``offer``/``offer_many``, ``add``/``add_many``)
R03       no ``==``/``!=`` on float timestamps
R04       no mutation of frozen ``StreamElement`` fields
R05       ``RunMetrics`` attributes must be registered fields
R06       no cross-domain time arithmetic/comparison (event ⋈ proc time)
R07       frontier-contract conformance for ``DisorderHandler``
R08       no duration/timestamp mixing in slack computations
R09       domain-consistent ``RunMetrics`` fields
R10       unannotated public time-typed APIs in ``engine``/``core``
R11       shared-state mutations hold the owning Lock/RLock
R12       no raw ``acquire()`` without ``with``/try-finally release
R13       static lock-order graph acyclic, no non-reentrant re-entry
R14       shared classes declare ``__concurrency__`` ownership
R15       no ``time.sleep``/blocking I/O while holding a lock
R16       no bare ``+=`` float accumulation in aggregate
          ``add``/``add_many``/``merge``; use the compensated primitives
R17       no subtraction-based sliding-window retraction; use
          ``RetractableSum`` (drift bound + periodic re-summation)
R18       no ``==``/``!=`` on accumulated floats; use ``floats_close``
R19       numeric classes declare ``__numeric__`` rounding discipline
R20       no mixed python/numpy summation orders across scalar/batched
          twins of one fold
========  ============================================================

A suppression comment naming an id no rule carries (``disable=R99``) is a
hard configuration error — typos must not silently disable nothing.

Run ``python -m repro.analysis.lint src/`` (exit status 1 on findings) or
call :func:`run_lint` programmatically.  Suppress a finding with an inline
``# repro-lint: disable=Rxx`` comment carrying a justification, or a
file-level ``# repro-lint: disable-file=Rxx``.  Pre-existing findings can
be grandfathered in ``analysis/baseline.json`` (see
:mod:`repro.analysis.dataflow.baseline`).
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint.model import (
    Finding,
    Project,
    SourceFile,
    discover_files,
)
from repro.analysis.lint.reporting import render_json, render_text
from repro.analysis.lint.rules import CORE_RULES, Rule
from repro.analysis.dataflow.rules import DATAFLOW_RULES
from repro.analysis.concur.rules import CONCUR_RULES
from repro.analysis.numeric.rules import NUMERIC_RULES
from repro.analysis.dataflow.baseline import Baseline
from repro.errors import ConfigurationError

#: Full rule catalog: per-file syntactic rules + whole-program dataflow
#: + concurrency-safety rules over the shared-state inventory
#: + float-soundness rules over the numeric inventory.
ALL_RULES: tuple[Rule, ...] = (
    CORE_RULES + DATAFLOW_RULES + CONCUR_RULES + NUMERIC_RULES
)

__all__ = [
    "ALL_RULES",
    "CONCUR_RULES",
    "CORE_RULES",
    "DATAFLOW_RULES",
    "NUMERIC_RULES",
    "Baseline",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "discover_files",
    "expand_rule_ids",
    "render_json",
    "render_text",
    "run_lint",
]


def expand_rule_ids(spec: str) -> list[str]:
    """Expand a rule selection string into explicit ids.

    Accepts comma-separated ids with optional ranges: ``"R06-R10"`` →
    ``["R06", ..., "R10"]``; ``"R01,R03"`` passes through.

    Raises:
        ConfigurationError: on malformed ids or inverted ranges.
    """
    ids: list[str] = []
    for part in spec.split(","):
        part = part.strip().upper()
        if not part:
            continue
        if "-" in part:
            low, _, high = part.partition("-")
            try:
                start, stop = int(low.lstrip("R")), int(high.lstrip("R"))
            except ValueError:
                raise ConfigurationError(f"malformed rule range: {part!r}")
            if stop < start:
                raise ConfigurationError(f"inverted rule range: {part!r}")
            ids.extend(f"R{number:02d}" for number in range(start, stop + 1))
        else:
            ids.append(part)
    return ids


def run_lint(
    paths: list[str | Path],
    select: list[str] | None = None,
    honour_suppressions: bool = True,
    baseline: Baseline | None = None,
) -> list[Finding]:
    """Lint every Python file under ``paths`` and return the findings.

    Args:
        paths: Files and/or directories to scan (directories recurse).
        select: Rule ids to run (default: all rules).
        honour_suppressions: When False, report findings even on lines
            carrying ``# repro-lint: disable`` comments (used by the rule
            self-tests).
        baseline: When given, findings covered by the baseline are
            filtered out (grandfathered debt).

    Raises:
        ConfigurationError: when ``select`` names an unknown rule id, or
            when a suppression comment in a scanned file names one
            (``# repro-lint: disable=R99`` typos must not silently
            disable nothing).
    """
    wanted = {rule_id.upper() for rule_id in select} if select else None
    known = {rule.id for rule in ALL_RULES}
    if wanted is not None and not wanted <= known:
        unknown = ", ".join(sorted(wanted - known))
        raise ConfigurationError(f"unknown lint rule id(s): {unknown}")
    roots = [Path(p) for p in paths]
    root_dirs = [p for p in roots if p.is_dir()]
    files = []
    for path in discover_files(roots):
        root = next((r for r in root_dirs if r in path.parents), None)
        files.append(SourceFile.load(path, root=root))
    bad_mentions = [
        f"{source.display_path}:{line}: {rule_id}"
        for source in files
        for line, rule_id in source.suppression_mentions
        if rule_id != "ALL" and rule_id not in known
    ]
    if bad_mentions:
        raise ConfigurationError(
            "suppression comment(s) name unknown rule id(s) — "
            + "; ".join(sorted(bad_mentions))
        )
    project = Project(files)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        for source in files:
            for finding in rule.check(source, project):
                if honour_suppressions and source.is_suppressed(
                    finding.rule, finding.line
                ):
                    continue
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    if baseline is not None:
        findings = baseline.apply(findings)
    return findings
