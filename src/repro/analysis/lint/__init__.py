"""repro-lint: AST-based invariant linter for the disorder-handling engine.

The linter enforces engine-specific invariants that generic tools cannot
know about:

========  ============================================================
R01       no wall-clock time or nondeterministic RNG in ``engine``/``core``
R02       scalar/batched method parity (``process``/``process_many``,
          ``offer``/``offer_many``)
R03       no ``==``/``!=`` on float timestamps
R04       no mutation of frozen ``StreamElement`` fields
R05       ``RunMetrics`` attributes must be registered fields
========  ============================================================

Run ``python -m repro.analysis.lint src/`` (exit status 1 on findings) or
call :func:`run_lint` programmatically.  Suppress a finding with an inline
``# repro-lint: disable=Rxx`` comment carrying a justification, or a
file-level ``# repro-lint: disable-file=Rxx``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint.model import (
    Finding,
    Project,
    SourceFile,
    discover_files,
)
from repro.analysis.lint.reporting import render_json, render_text
from repro.analysis.lint.rules import ALL_RULES, Rule
from repro.errors import ConfigurationError

__all__ = [
    "ALL_RULES",
    "Finding",
    "Project",
    "Rule",
    "SourceFile",
    "discover_files",
    "render_json",
    "render_text",
    "run_lint",
]


def run_lint(
    paths: list[str | Path],
    select: list[str] | None = None,
    honour_suppressions: bool = True,
) -> list[Finding]:
    """Lint every Python file under ``paths`` and return the findings.

    Args:
        paths: Files and/or directories to scan (directories recurse).
        select: Rule ids to run (default: all rules).
        honour_suppressions: When False, report findings even on lines
            carrying ``# repro-lint: disable`` comments (used by the rule
            self-tests).

    Raises:
        ConfigurationError: when ``select`` names an unknown rule id.
    """
    wanted = {rule_id.upper() for rule_id in select} if select else None
    known = {rule.id for rule in ALL_RULES}
    if wanted is not None and not wanted <= known:
        unknown = ", ".join(sorted(wanted - known))
        raise ConfigurationError(f"unknown lint rule id(s): {unknown}")
    roots = [Path(p) for p in paths]
    root_dirs = [p for p in roots if p.is_dir()]
    files = []
    for path in discover_files(roots):
        root = next((r for r in root_dirs if r in path.parents), None)
        files.append(SourceFile.load(path, root=root))
    project = Project(files)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        if wanted is not None and rule.id not in wanted:
            continue
        for source in files:
            for finding in rule.check(source, project):
                if honour_suppressions and source.is_suppressed(
                    finding.rule, finding.line
                ):
                    continue
                findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings
