"""The repro-lint rule catalog (R01–R05).

Each rule is a class with an ``id``, a one-line ``summary`` and a
``check`` method yielding :class:`~repro.analysis.lint.model.Finding`
objects.  The class docstring is the rule's long documentation, printed by
``python -m repro.analysis.lint --list-rules``.

Rules are engine-specific by design: they encode invariants of *this*
codebase (simulated time, scalar/batched parity, frozen stream elements)
rather than generic style.  See ``docs/ANALYSIS.md`` for the catalog with
examples and suppression guidance.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from typing import Iterator

from repro.analysis.lint.model import ClassInfo, Finding, Project, SourceFile

#: Attribute names that denote event/arrival-domain instants in this
#: codebase (see R03); suffix matches extend the list to private fields.
TIME_ATTRIBUTES = {
    "event_time",
    "arrival_time",
    "emit_time",
    "frontier",
    "timestamp",
    "watermark",
    "end",
    "start",
}

_TIME_SUFFIXES = ("_time", "_frontier", "frontier_value", "_arrival", "_watermark")

#: Fields of :class:`repro.streams.element.StreamElement` that uniquely
#: identify it; assigning to them anywhere is a mutation of a frozen
#: element (R04).  ``value``/``key`` are too generic to match on.
ELEMENT_FIELDS = {"event_time", "arrival_time", "seq"}


class Rule(ABC):
    """Base class of all lint rules."""

    id: str = "R00"
    summary: str = ""

    @abstractmethod
    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        """Yield findings for one source file."""

    def _finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        return Finding(
            rule=self.id,
            path=source.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (``a.b.c``), else ``""``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        prefix = _dotted(node.value)
        return f"{prefix}.{node.attr}" if prefix else node.attr
    return ""


class NoWallClockRule(Rule):
    """R01 — no wall-clock reads or unseeded randomness in simulated-time code.

    The engine (``repro/engine``) and the adaptive core (``repro/core``)
    run on *simulated* time: the processing clock is the arrival timestamp
    of the element being processed.  Reading the host clock
    (``time.time``, ``datetime.now``, ...) or drawing from global /
    unseeded RNGs (``random.*``, ``numpy.random.<dist>``,
    ``default_rng()`` with no seed) makes runs irreproducible and couples
    results to host speed.  Wall-clock *measurement* (throughput numbers)
    is allowed only with an inline suppression justifying it.
    """

    id = "R01"
    summary = "no wall-clock time or nondeterministic RNG in engine/core"

    _TIME_FUNCS = {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
        "ctime",
    }
    _DATETIME_FUNCS = {"now", "utcnow", "today"}
    _NUMPY_RANDOM_OK = {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "MT19937",
    }

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        if not source.engine_scoped:
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Attribute):
                if (
                    isinstance(node, ast.Call)
                    and _dotted(node.func).endswith("default_rng")
                    and not node.args
                    and not node.keywords
                ):
                    yield self._finding(
                        source,
                        node,
                        "unseeded default_rng() — pass a seed or thread a "
                        "Generator from the caller",
                    )
                continue
            dotted = _dotted(node)
            root, _, leaf = dotted.partition(".")
            if root == "time" and node.attr in self._TIME_FUNCS:
                yield self._finding(
                    source,
                    node,
                    f"wall-clock read {dotted}() in simulated-time code — "
                    "derive time from element arrival timestamps",
                )
            elif dotted.split(".")[-2:-1] == ["datetime"] or root == "datetime":
                if node.attr in self._DATETIME_FUNCS:
                    yield self._finding(
                        source,
                        node,
                        f"wall-clock read {dotted}() in simulated-time code",
                    )
            elif root == "random":
                yield self._finding(
                    source,
                    node,
                    f"global random.{node.attr} — thread a seeded "
                    "numpy.random.Generator through the call path instead",
                )
            elif root in {"np", "numpy"} and leaf.startswith("random."):
                member = dotted.split(".")[-1]
                if member not in self._NUMPY_RANDOM_OK:
                    yield self._finding(
                        source,
                        node,
                        f"global numpy RNG {dotted} — use an explicit "
                        "seeded Generator",
                    )
            elif dotted in {"os.urandom", "uuid.uuid4", "uuid.uuid1"} or root == "secrets":
                yield self._finding(
                    source, node, f"nondeterministic source {dotted} in engine code"
                )


class BatchParityRule(Rule):
    """R02 — scalar and batched entry points must evolve together.

    ``Operator.process_many`` / ``DisorderHandler.offer_many`` /
    ``AggregateFunction.add_many`` are required to be *exactly* equivalent
    to looping the scalar method.  Two shapes of drift are flagged:

    * a class overrides the batched method without overriding the scalar
      one in the same class — the inherited scalar path and the new batched
      path can silently diverge;
    * a class overrides the scalar method but inherits a **specialized**
      batched implementation from a concrete ancestor — that inherited bulk
      path replays the *ancestor's* scalar semantics, not the override's.
      (Inheriting the abstract base's generic loop is always safe: it calls
      the override.)
    """

    id = "R02"
    summary = (
        "scalar/batched method parity on Operator, DisorderHandler, "
        "and AggregateFunction"
    )

    _PAIRS = (
        ("offer", "offer_many"),
        ("process", "process_many"),
        ("add", "add_many"),
    )
    _ABSTRACT_BASES = {
        "Operator",
        "DisorderHandler",
        "AggregateFunction",
        "ABC",
        "object",
        "Protocol",
    }
    _LINEAGE_ROOTS = {"Operator", "DisorderHandler", "AggregateFunction"}

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = project.classes.get(node.name)
            if info is None or info.display_path != source.display_path:
                continue
            if node.name in self._ABSTRACT_BASES:
                continue
            ancestors = project.ancestors(node.name)
            lineage = {node.name} | {a.name for a in ancestors}
            if not lineage & self._LINEAGE_ROOTS and not any(
                base in self._LINEAGE_ROOTS for base in info.base_names
            ):
                continue
            for scalar, batched in self._PAIRS:
                if batched in info.methods and scalar not in info.methods:
                    yield self._finding(
                        source,
                        node,
                        f"{node.name} overrides {batched} without overriding "
                        f"{scalar}: the inherited scalar path can diverge "
                        "from the new batched path",
                    )
                if scalar in info.methods and batched not in info.methods:
                    culprit = self._specialized_ancestor(ancestors, batched)
                    if culprit is not None:
                        yield self._finding(
                            source,
                            node,
                            f"{node.name} overrides {scalar} but inherits the "
                            f"specialized {batched} of {culprit.name}, which "
                            "replays the ancestor's scalar semantics — "
                            f"override {batched} too",
                        )

    def _specialized_ancestor(
        self, ancestors: list[ClassInfo], batched: str
    ) -> ClassInfo | None:
        for ancestor in ancestors:
            if ancestor.name in self._ABSTRACT_BASES:
                return None
            if batched in ancestor.methods:
                return ancestor
        return None


class NoFloatTimeEqualityRule(Rule):
    """R03 — never compare float timestamps with ``==`` / ``!=``.

    Event/arrival times, frontiers and window bounds are floats computed
    through different arithmetic paths; exact equality is a rounding
    accident.  Use ordering predicates, or
    :func:`repro.streams.timebase.times_equal` when equality semantics are
    genuinely needed.  Comparisons against the ``float("inf")`` /
    ``float("-inf")`` sentinels and ``None`` are exempt — those values are
    exact.
    """

    id = "R03"
    summary = "no ==/!= on float timestamps (use tolerance helpers)"

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                for this, other in ((left, right), (right, left)):
                    if self._is_time_expr(this) and not self._is_exempt(other):
                        label = _dotted(this) or "timestamp"
                        yield self._finding(
                            source,
                            node,
                            f"exact float comparison on {label} — use an "
                            "ordering predicate or times_equal()",
                        )
                        break

    @staticmethod
    def _is_time_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        else:
            return False
        return name in TIME_ATTRIBUTES or name.endswith(_TIME_SUFFIXES)

    @staticmethod
    def _is_exempt(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and node.value is None:
            return True
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return NoFloatTimeEqualityRule._is_exempt(node.operand)
        if isinstance(node, ast.Call) and _dotted(node.func) == "float":
            if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
                return str(node.args[0].value).lstrip("+-") in {"inf", "Infinity"}
        dotted = _dotted(node)
        return dotted in {"math.inf", "np.inf", "numpy.inf", "math.nan"}


class FrozenElementRule(Rule):
    """R04 — stream elements are immutable after construction.

    :class:`repro.streams.element.StreamElement` is a frozen dataclass;
    derived elements must be produced with ``with_arrival``/``replace``.
    Assigning (or deleting) the identifying fields ``event_time``,
    ``arrival_time`` or ``seq`` through *any* attribute reference is
    flagged — even on objects the analyser cannot prove to be elements —
    because sharing those field names with a mutable object invites
    exactly the aliasing bugs the freeze exists to prevent.
    """

    id = "R04"
    summary = "no mutation of StreamElement timestamp/seq fields"

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        element_spans = [
            (node.lineno, max(node.lineno, getattr(node, "end_lineno", node.lineno)))
            for node in ast.walk(source.tree)
            if isinstance(node, ast.ClassDef) and node.name == "StreamElement"
        ]
        for node in ast.walk(source.tree):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            else:
                continue
            if any(lo <= node.lineno <= hi for lo, hi in element_spans):
                continue
            for target in targets:
                for leaf in self._flatten(target):
                    if (
                        isinstance(leaf, ast.Attribute)
                        and leaf.attr in ELEMENT_FIELDS
                    ):
                        yield self._finding(
                            source,
                            node,
                            f"assignment to .{leaf.attr} — stream elements "
                            "are frozen; build a new element with "
                            "with_arrival()/dataclasses.replace()",
                        )

    @staticmethod
    def _flatten(node: ast.expr) -> Iterator[ast.expr]:
        if isinstance(node, (ast.Tuple, ast.List)):
            for item in node.elts:
                yield from FrozenElementRule._flatten(item)
        else:
            yield node


class MetricsRegistryRule(Rule):
    """R05 — RunMetrics fields must be declared before use.

    :class:`repro.engine.metrics.RunMetrics` is a plain (non-slotted)
    class, so assigning a misspelled field silently creates a new
    attribute and the intended metric stays at its default — a wrong
    number in an experiment table, not an error.  The rule tracks local
    names bound to ``RunMetrics(...)`` (or annotated as ``RunMetrics``)
    and checks every attribute read/write against the registry of declared
    fields, properties and methods.
    """

    id = "R05"
    summary = "RunMetrics attributes must be registered fields"

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        registry = self._registry(project)
        if not registry:
            return
        # Scopes nest (the module walk also reaches function bodies), so
        # findings are deduplicated by source position.
        reported: set[tuple[int, int]] = set()
        for scope in self._scopes(source.tree):
            names = self._metrics_names(scope)
            if not names:
                continue
            for node in ast.walk(scope):
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id in names
                    and not node.attr.startswith("__")
                    and node.attr not in registry
                    and (node.lineno, node.col_offset) not in reported
                ):
                    reported.add((node.lineno, node.col_offset))
                    yield self._finding(
                        source,
                        node,
                        f"unknown RunMetrics attribute .{node.attr} — "
                        "register the field on RunMetrics first",
                    )

    @staticmethod
    def _scopes(tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _metrics_names(scope: ast.AST) -> set[str]:
        names: set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.annotation is not None and _dotted(arg.annotation).endswith(
                    "RunMetrics"
                ):
                    names.add(arg.arg)
        for node in ast.walk(scope):
            value = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None:
                continue
            if (
                isinstance(value, ast.Call)
                and _dotted(value.func).split(".")[-1] == "RunMetrics"
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _registry(project: Project) -> set[str]:
        info = project.classes.get("RunMetrics")
        declared: set[str] = set()
        if info is not None and info.methods is not None:
            declared |= info.methods
        for source in project.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.ClassDef) and node.name == "RunMetrics":
                    for item in node.body:
                        if isinstance(item, ast.AnnAssign) and isinstance(
                            item.target, ast.Name
                        ):
                            declared.add(item.target.id)
                        elif isinstance(item, ast.Assign):
                            for target in item.targets:
                                if isinstance(target, ast.Name):
                                    declared.add(target.id)
        if not declared:
            # Linting a fileset that does not contain metrics.py (e.g. the
            # test fixtures): fall back to the installed class.  RunMetrics
            # is a plain class (a registry view), so dir() — which sees its
            # properties, methods and class-body annotations — is the
            # registry of record.
            try:
                from repro.engine.metrics import RunMetrics

                declared = {
                    name for name in dir(RunMetrics) if not name.startswith("__")
                }
                declared |= set(getattr(RunMetrics, "__annotations__", ()))
            except Exception:  # pragma: no cover - repro always importable here
                return set()
        return declared


#: The per-file syntactic rules (R01-R05).  The whole-program dataflow
#: rules (R06-R10) live in :mod:`repro.analysis.dataflow.rules`; the
#: combined catalog is composed in :mod:`repro.analysis.lint`.
CORE_RULES: tuple[Rule, ...] = (
    NoWallClockRule(),
    BatchParityRule(),
    NoFloatTimeEqualityRule(),
    FrozenElementRule(),
    MetricsRegistryRule(),
)

#: Backwards-compatible alias (pre-dataflow name for the catalog).
ALL_RULES = CORE_RULES
