"""NumSan: shadow-execution numeric sanitizer for window aggregates.

NumSan wraps an operator's :class:`~repro.engine.aggregates.AggregateFunction`
in a shadow that mirrors every fold into a retained value list.  Each time
the operator extracts a result, the shadow recomputes the answer from the
raw values through a *reference* path — :func:`math.fsum` (correctly
rounded) for sums, a two-pass algorithm for moments, and, sampled every
``exact_every``-th checked window, an exact :class:`fractions.Fraction`
evaluation — and measures the production result's drift:

* **relative drift** via :func:`repro.core.numeric.relative_drift`;
* **ULP distance** via :func:`repro.core.numeric.ulp_distance`.

The drift budget is *the class's own declared contract*: the
``__numeric__`` annotation that lint rule R19 enforces statically is what
NumSan verifies dynamically —

========================  =============================================
``"exact"``               the result must equal the reference bit for
                          bit (zero ULP)
``"compensated"``         relative drift <= 1e-12
``"reassoc-tolerant"``    relative drift <= 1e-9
========================  =============================================

A violation raises :class:`~repro.errors.SanitizerError` at the result
call site.  Aggregates with no reference implementation (sketches whose
names start with ``~``, top-k) are recorded as *unchecked* rather than
silently passed.  Like RaceSan, the sanitizer never changes emitted
results: the production accumulator runs untouched next to the mirror,
and ``result`` returns the production value verbatim.

Enable per run with ``run_pipeline(..., sanitize="numeric")``; overhead
is budgeted with RaceSan's (off < 2%, on < 25%, measured in
``benchmarks/test_numsan_overhead.py``).
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any

from repro.core.numeric import relative_drift, ulp_distance
from repro.engine.aggregates import AggregateFunction
from repro.errors import ConfigurationError, SanitizerError
from repro.obs.trace import NULL_TRACER, Tracer

#: Drift budget (relative) per declared discipline; ``"exact"`` is
#: special-cased to bit-equality rather than a tolerance.
DRIFT_BOUNDS: dict[str, float] = {
    "exact": 0.0,
    "compensated": 1e-12,
    "reassoc-tolerant": 1e-9,
}

_QUANTILE_NAME = re.compile(r"^p\d+$")


@dataclass
class AggregateDriftStats:
    """Observed drift of one aggregate over a sanitized run."""

    aggregate: str
    discipline: str
    bound: float
    windows_checked: int = 0
    #: Checked windows whose reference was the exact ``Fraction`` path.
    windows_exact: int = 0
    #: Windows skipped: empty, containing non-finite values, or produced
    #: by an aggregate with no reference implementation.
    windows_skipped: int = 0
    max_rel_drift: float = 0.0
    max_ulp: float = 0.0


@dataclass
class NumSanReport:
    """Drift statistics of one sanitized run, keyed by aggregate name."""

    stats: dict[str, AggregateDriftStats] = field(default_factory=dict)

    def max_rel_drift(self) -> float:
        """Largest relative drift observed across all aggregates."""
        return max(
            (entry.max_rel_drift for entry in self.stats.values()), default=0.0
        )

    def windows_checked(self) -> int:
        """Total reference comparisons performed."""
        return sum(entry.windows_checked for entry in self.stats.values())

    def windows_skipped(self) -> int:
        """Total windows that could not be checked."""
        return sum(entry.windows_skipped for entry in self.stats.values())


class NumSan:
    """Shadow-execution coordinator: wraps aggregates, collects the report.

    Args:
        tracer: Receives one ``numeric.drift`` record per checked window
            (detail-mode recorders only) and a ``sanitizer.finding``
            record just before a violation raises.
        exact_every: Every N-th checked window of a sum/mean/moment
            aggregate is verified against the exact ``Fraction``
            reference instead of the ``fsum`` fast path (1 disables
            sampling and makes every check exact; the fast path is still
            correctly rounded for plain sums).
    """

    def __init__(self, tracer: Tracer = NULL_TRACER, exact_every: int = 16) -> None:
        if exact_every < 1:
            raise ConfigurationError(
                f"exact_every must be >= 1, got {exact_every}"
            )
        self.tracer = tracer
        self.exact_every = exact_every
        self.report = NumSanReport()
        #: Simulated-time stamp of the element in flight, maintained by
        #: the operator proxy so shadow findings carry the run clock.
        self.sim_time = float("-inf")

    def shadow_aggregate(self, aggregate: AggregateFunction) -> "_ShadowAggregate":
        """Wrap one aggregate; resolves and validates its declared budget."""
        declared = getattr(type(aggregate), "__numeric__", None)
        if declared is None:
            raise ConfigurationError(
                f"cannot sanitize {type(aggregate).__name__}: the class "
                f"declares no __numeric__ annotation (lint rule R19), so "
                f"NumSan has no drift budget to hold it to"
            )
        if declared not in DRIFT_BOUNDS:
            valid = ", ".join(f'"{value}"' for value in DRIFT_BOUNDS)
            raise ConfigurationError(
                f"cannot sanitize {type(aggregate).__name__}: unknown "
                f"__numeric__ value {declared!r}; expected one of {valid}"
            )
        return _ShadowAggregate(aggregate, self, declared)

    def guard_operator(self, operator: Any) -> "NumSanOperator":
        """Wrap ``operator`` so its aggregate folds run shadow-checked."""
        return NumSanOperator(operator, self)

    def fail(self, message: str) -> None:
        """Trace and raise one drift violation."""
        if self.tracer.enabled:
            self.tracer.sanitizer_finding(self.sim_time, "drift", message)
        raise SanitizerError(f"NumSan[drift] {message}")


class _ShadowAggregate(AggregateFunction):
    """Checked mirror of one aggregate.

    The shadow accumulator is ``[inner_accumulator, values, n_folded]``:
    the mirror list retains the raw window values for the reference
    recomputation at ``result`` time, and the production fold replays
    *lazily* from the mirror.  Scalar ``add`` only appends; the pending
    suffix is folded into the inner accumulator — in arrival order, via
    the exact same ``inner.add`` calls an unsanitized run would make — at
    the next ``add_many``/``merge``/``result`` boundary.  Results stay
    bit-identical to the unsanitized run while the per-element hot path
    (one call per element per *open* window) shrinks to a single list
    append, which is what keeps the sanitizer inside its overhead budget.
    """

    def __init__(
        self, inner: AggregateFunction, san: NumSan, discipline: str
    ) -> None:
        self.inner = inner
        self.san = san
        self.discipline = discipline
        self.bound = DRIFT_BOUNDS[discipline]
        self.name = inner.name
        self.error_model_kind = inner.error_model_kind
        self._stats = san.report.stats.setdefault(
            inner.name,
            AggregateDriftStats(
                aggregate=inner.name, discipline=discipline, bound=self.bound
            ),
        )
        # Bound once: the lazy replay runs per element, so a saved
        # attribute hop per fold is measurable on the overhead budget.
        self._inner_add = inner.add
        self._inner_add_many = inner.add_many
        self._inner_merge = inner.merge
        self._inner_result = inner.result
        self._checked = 0
        self._quantile = getattr(inner, "q", None) if (
            inner.name in ("median", "quantile")
            or _QUANTILE_NAME.match(inner.name)
        ) else None

    def create(self) -> list:
        """Production accumulator, mirror value list, replay cursor."""
        return [self.inner.create(), [], 0]

    def add(self, accumulator: list, value: float) -> None:
        """Mirror the value; the production fold replays lazily."""
        accumulator[1].append(value)

    def add_many(self, accumulator: list, values: list[float]) -> None:
        """Bulk fold through the inner ``add_many`` (order preserved).

        The pending scalar suffix folds first so the inner accumulator
        sees the identical ``add``/``add_many`` call sequence an
        unsanitized run would — bulk paths may legitimately reassociate
        (stddev's Chan combine), so the shadow must not turn scalar adds
        into bulk ones or vice versa.
        """
        self._replay(accumulator)
        self._inner_add_many(accumulator[0], values)
        accumulator[1].extend(values)
        accumulator[2] = len(accumulator[1])

    def merge(self, accumulator: list, other: list) -> list:
        """Merge production accumulators and concatenate the mirrors."""
        self._replay(accumulator)
        self._replay(other)
        self._inner_merge(accumulator[0], other[0])
        accumulator[1].extend(other[1])
        accumulator[2] = len(accumulator[1])
        return accumulator

    def result(self, accumulator: list) -> float:
        """Extract the production result, then hold it to the reference."""
        self._replay(accumulator)
        value = self._inner_result(accumulator[0])
        self._check(value, accumulator[1])
        return value

    def _replay(self, accumulator: list) -> None:
        """Fold the un-replayed mirror suffix into the inner accumulator."""
        values = accumulator[1]
        folded = accumulator[2]
        if folded < len(values):
            inner_add = self._inner_add
            inner_accumulator = accumulator[0]
            for value in values[folded:]:
                inner_add(inner_accumulator, value)
            accumulator[2] = len(values)

    def describe(self) -> str:
        """Label the wrapped aggregate as sanitized."""
        return f"numsan({self.inner.describe()})"

    # ------------------------------------------------------------------ #
    # reference computation

    def _check(self, value: float, values: list[float]) -> None:
        stats = self._stats
        if not values or not all(map(math.isfinite, values)):
            stats.windows_skipped += 1
            return
        use_exact = (self._checked + 1) % self.san.exact_every == 0
        reference = self._reference(values, use_exact)
        if reference is None:
            stats.windows_skipped += 1
            return
        self._checked += 1
        rel = relative_drift(value, reference)
        ulp = ulp_distance(value, reference)
        stats.windows_checked += 1
        if use_exact:
            stats.windows_exact += 1
        if rel > stats.max_rel_drift:
            stats.max_rel_drift = rel
        if ulp > stats.max_ulp:
            stats.max_ulp = ulp
        san = self.san
        if san.tracer.enabled:
            san.tracer.numeric_drift(
                san.sim_time,
                self.name,
                self.discipline,
                value,
                reference,
                rel,
                ulp,
                use_exact,
            )
        if self.discipline == "exact":
            # Exact disciplines promise correctly-rounded results: the
            # comparison is deliberately bitwise (R03 covers timestamps;
            # this is the sanitizer enforcing a bit-level contract).
            if value != reference and not (  # repro-lint: disable=R03
                math.isnan(value) and math.isnan(reference)
            ):
                san.fail(
                    f"aggregate '{self.name}' declares __numeric__ = "
                    f'"exact" but result {value!r} differs from the exact '
                    f"reference {reference!r} ({ulp:g} ulp) over "
                    f"{len(values)} value(s)"
                )
        elif rel > self.bound:
            san.fail(
                f"aggregate '{self.name}' (__numeric__ = "
                f'"{self.discipline}") drifted {rel:.3e} relative '
                f"({ulp:g} ulp) from the reference {reference!r}, "
                f"exceeding the declared bound {self.bound:g} over "
                f"{len(values)} value(s)"
            )

    def _reference(self, values: list[float], exact: bool) -> float | None:
        name = self.name
        n = len(values)
        if name == "count":
            return float(n)
        if name == "distinct":
            return float(len(set(values)))
        if name == "min":
            return min(values)
        if name == "max":
            return max(values)
        if name == "range":
            return max(values) - min(values)
        if name == "sum":
            if exact:
                return float(sum(map(Fraction, values), Fraction(0)))
            return math.fsum(values)
        if name in ("mean", "avg"):
            if exact:
                return float(sum(map(Fraction, values), Fraction(0)) / n)
            return math.fsum(values) / n
        if name in ("stddev", "variance", "var"):
            variance = self._variance_reference(values, exact)
            if name == "stddev":
                return math.sqrt(variance)
            return variance
        if self._quantile is not None:
            return self._quantile_reference(values, self._quantile)
        return None

    @staticmethod
    def _variance_reference(values: list[float], exact: bool) -> float:
        n = len(values)
        if exact:
            exact_values = [Fraction(value) for value in values]
            mean = sum(exact_values, Fraction(0)) / n
            m2 = sum(((value - mean) ** 2 for value in exact_values), Fraction(0))
            return float(m2 / n)
        mean = math.fsum(values) / n
        m2 = math.fsum((value - mean) ** 2 for value in values)
        return m2 / n

    @staticmethod
    def _quantile_reference(values: list[float], q: float) -> float:
        ordered = sorted(values)
        position = q * (len(ordered) - 1)
        lower = int(math.floor(position))
        upper = int(math.ceil(position))
        if lower == upper:
            return ordered[lower]
        fraction = position - lower
        return ordered[lower] * (1 - fraction) + ordered[upper] * fraction


class NumSanOperator:
    """Operator proxy that runs the aggregate shadow-checked.

    Swaps the wrapped operator's ``aggregate`` attribute (and the
    partial-aggregate tree's captured reference, when present) for the
    shadow, forwards the operator protocol, and keeps the sanitizer's
    simulated clock current so findings and trace records carry the run's
    time base.  Any other attribute falls through to the wrapped operator.
    """

    def __init__(self, inner: Any, san: NumSan) -> None:
        self.inner = inner
        self.san = san
        aggregate = getattr(inner, "aggregate", None)
        if aggregate is None:
            raise ConfigurationError(
                f"cannot sanitize {type(inner).__name__}: the operator "
                f"exposes no 'aggregate' attribute for NumSan to shadow"
            )
        shadow = san.shadow_aggregate(aggregate)
        self.shadow = shadow
        inner.aggregate = shadow
        # The partial-aggregate tree captures the aggregate at
        # construction; swap its reference too or tree-mode folds would
        # run unmirrored.
        tree = getattr(inner, "_tree", None)
        if tree is not None and getattr(tree, "aggregate", None) is aggregate:
            tree.aggregate = shadow

    @property
    def report(self) -> NumSanReport:
        """The sanitizer's drift report (shared with the NumSan instance)."""
        return self.san.report

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to the sanitizer and the wrapped operator."""
        self.san.tracer = tracer
        set_inner_tracer = getattr(self.inner, "set_tracer", None)
        if set_inner_tracer is not None:
            set_inner_tracer(tracer)

    def _advance_clock(self, element: Any) -> None:
        arrival = getattr(element, "arrival_time", None)
        if arrival is not None and arrival > self.san.sim_time:
            self.san.sim_time = arrival

    def process(self, element: Any) -> list:
        """Forward one element, keeping the sanitizer clock current."""
        self._advance_clock(element)
        return self.inner.process(element)

    def process_many(self, elements: list) -> list:
        """Forward a chunk, keeping the sanitizer clock current."""
        if elements:
            self._advance_clock(elements[-1])
        return self.inner.process_many(elements)

    def finish(self) -> list:
        """Finish the wrapped operator (flushed windows are checked too)."""
        return self.inner.finish()

    def __getattr__(self, name: str) -> Any:
        """Fall through to the wrapped operator (public attributes only)."""
        if name.startswith("_"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def __repr__(self) -> str:
        return f"NumSanOperator({self.inner!r})"


def sanitize_operator(
    operator: Any, tracer: Tracer = NULL_TRACER, exact_every: int = 16
) -> NumSanOperator:
    """Wrap ``operator``'s aggregate in the NumSan shadow.

    Convenience for driving an operator by hand; ``run_pipeline`` applies
    the same wrapping when called with ``sanitize="numeric"``.
    """
    return NumSan(tracer=tracer, exact_every=exact_every).guard_operator(operator)
