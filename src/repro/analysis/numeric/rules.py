"""Float-soundness lint rules R16-R20 over the numeric inventory.

========  ============================================================
R16       no bare ``+=`` float accumulation inside an inventoried
          aggregate's ``add``/``add_many``/``merge``; folds route
          through a compensated primitive (:mod:`repro.core.numeric`)
          or carry an explicit ``# repro: numeric=reassoc`` waiver
R17       no subtraction-based sliding-window retraction: ``-=`` on
          retained state drifts without bound; use
          :class:`~repro.core.numeric.RetractableSum` (declared drift
          bound + periodic re-summation) or waive integer state with
          ``# repro: numeric=exact``
R18       no ``==``/``!=`` on accumulated floats (extends R03 beyond
          timestamps); compare through
          :func:`~repro.core.numeric.floats_close`
R19       every inventoried numeric class declares (or inherits)
          ``__numeric__ = "compensated" | "reassoc-tolerant" | "exact"``
R20       scalar/batched twins of one fold must not mix summation
          orders: numpy reductions in ``add_many`` while ``add`` folds
          in Python order break bit-identical parity
========  ============================================================

Waivers are source comments of the form::

    x += v  # repro: numeric=reassoc - why reassociation is acceptable
    n -= k  # repro: numeric=exact - integer state, no rounding

``reassoc`` concedes the reassociation (drift must still fit the class's
declared budget — NumSan checks); ``exact`` asserts the flagged
statement performs exact arithmetic (integers, set sizes, cursors).
Unknown waiver values are a hard configuration error (CLI exit 2), like
unknown rule ids in ``# repro-lint:`` suppressions: a typo'd waiver
must not silently keep a finding alive *or* silently discharge it.

An unknown ``__numeric__`` *value* is likewise a configuration error —
raised by the inventory itself (see
:mod:`repro.analysis.numeric.sites`); R19 only reports classes that
declare nothing at all.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

# Bound at call time (``sites.inventory_for`` etc.): this module is
# imported from inside ``repro.analysis.lint.__init__`` while the
# numeric package may still be mid-initialization, so import-time name
# binding would fail depending on which package entered the cycle first.
from repro.analysis.numeric import sites as _sites
from repro.analysis.lint.model import Finding, Project, SourceFile, _comments
from repro.analysis.lint.rules import Rule, _dotted
from repro.errors import ConfigurationError

#: Legal values of a numeric waiver comment (see the module docstring).
WAIVER_VALUES: tuple[str, ...] = ("reassoc", "exact")

_WAIVER = re.compile(r"#\s*repro:\s*numeric=(\S+)")

#: Attribute names recognized as numpy (or numpy-style) reductions.
_NUMPY_REDUCTIONS: frozenset[str] = frozenset(
    {"sum", "mean", "std", "var", "prod", "dot"}
)

#: Terminal name segments that mark an expression as accumulated float
#: state for R18 (``self._sum``, ``total``, ``m2`` ...).
_ACCUMULATOR_SEGMENTS: frozenset[str] = frozenset(
    {"total", "compensation", "m2"}
)
_ACCUMULATOR_SUFFIXES: tuple[str, ...] = (
    "_sum",
    "_total",
    "_m2",
    "_mean",
    "_var",
    "_ewma",
    "_compensation",
)


def waivers(source: SourceFile) -> dict[int, str]:
    """``# repro: numeric=<value>`` waivers by line, cached per file.

    Parsed off real COMMENT tokens (a docstring *describing* the waiver
    syntax neither waives anything nor errors).  Unknown values raise
    :class:`~repro.errors.ConfigurationError` — the hard-error policy
    shared with unknown suppression ids.
    """
    cached = getattr(source, "_numeric_waivers", None)
    if cached is None:
        cached = {}
        for number, comment in _comments(source.text):
            if "repro:" not in comment:
                continue
            match = _WAIVER.search(comment)
            if match is None:
                continue
            value = match.group(1)
            if value not in WAIVER_VALUES:
                valid = ", ".join(f'"{v}"' for v in WAIVER_VALUES)
                raise ConfigurationError(
                    f"{source.display_path}:{number}: unknown numeric waiver "
                    f"value {value!r}; expected one of {valid} "
                    f"(# repro: numeric=<value> - <justification>)"
                )
            cached[number] = value
        source._numeric_waivers = cached  # type: ignore[attr-defined]
    return cached


def _exempt_operand(node: ast.expr) -> bool:
    """Operands whose accumulation cannot lose precision: integers,
    integral float literals (counts like ``1.0``), ``len(...)`` and
    ``float()`` of those, and their negations."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, int):
            return True
        return isinstance(value, float) and value.is_integer()
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _exempt_operand(node.operand)
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        if name == "len":
            return True
        if name == "float" and node.args:
            return all(_exempt_operand(arg) for arg in node.args)
    return False


def _state_target(node: ast.expr) -> bool:
    """Attribute/subscript targets hold retained state; bare locals do
    not survive the statement and cannot accumulate drift across calls."""
    return isinstance(node, (ast.Attribute, ast.Subscript))


def _inventoried_classes(
    source: SourceFile, project: Project
) -> Iterator[tuple[ast.ClassDef, "_sites.NumericClass"]]:
    inventory = _sites.inventory_for(project)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        record = inventory.class_in(node.name, source.display_path)
        if record is not None:
            yield node, record


def _fold_methods(node: ast.ClassDef) -> Iterator[ast.FunctionDef]:
    for item in node.body:
        if (
            isinstance(item, ast.FunctionDef)
            and item.name in _sites.FOLD_METHODS
        ):
            yield item


class BareAccumulationRule(Rule):
    """R16 — no bare ``+=`` float folds in aggregate entry points.

    ``total += value`` evaluated left-to-right is the textbook
    catastrophic-cancellation trap: summing ``[1e16, 1.0, -1e16]`` loses
    the ``1.0`` entirely.  Inside an inventoried class's
    ``add``/``add_many``/``merge``, accumulation must go through the
    compensated primitives (``neumaier_add`` and friends carry the
    rounding error forward) — or carry a waiver conceding the
    reassociation, which NumSan then holds to the class's declared
    drift budget.  Classes declaring ``__numeric__ = "exact"`` are
    exempt: they promise no float accumulation at all, and NumSan
    verifies that promise dynamically at zero ULP.
    """

    id = "R16"
    summary = (
        "no bare += float accumulation in aggregate add/add_many/merge; "
        "use repro.core.numeric or waive with # repro: numeric=reassoc"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        waived = waivers(source)
        for class_node, record in _inventoried_classes(source, project):
            if record.effective == "exact":
                continue
            for method in _fold_methods(class_node):
                yield from self._check_method(source, class_node, method, waived)

    def _check_method(
        self,
        source: SourceFile,
        class_node: ast.ClassDef,
        method: ast.FunctionDef,
        waived: dict[int, str],
    ) -> Iterator[Finding]:
        for node in ast.walk(method):
            target: ast.expr | None = None
            operand: ast.expr | None = None
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target, operand = node.target, node.value
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.value, ast.BinOp)
                and isinstance(node.value.op, (ast.Add, ast.Sub))
            ):
                # ``x[i] = x[i] + v`` is the same fold spelled long-hand.
                # Compare unparsed text: ast.dump would disagree on the
                # Store-vs-Load expression context.
                spelled = ast.unparse(node.targets[0])
                for side in (node.value.left, node.value.right):
                    if ast.unparse(side) == spelled:
                        target = node.targets[0]
                        operand = (
                            node.value.right
                            if side is node.value.left
                            else node.value.left
                        )
                        break
            if target is None or operand is None:
                continue
            if not _state_target(target):
                continue
            if _exempt_operand(operand):
                continue
            if node.lineno in waived:
                continue
            yield self._finding(
                source,
                node,
                f"{class_node.name}.{method.name} accumulates floats with a "
                f"bare fold; route through repro.core.numeric "
                f"(neumaier_add/neumaier_add_many/neumaier_merge or "
                f"CompensatedSum), or concede reassociation with "
                f"'# repro: numeric=reassoc - <why>'",
            )


class SubtractiveRetractionRule(Rule):
    """R17 — no subtraction-based retraction from retained float state.

    Evicting a window by subtracting its elements back out
    (``total -= old``) leaves residual rounding error that *grows without
    bound* as windows slide — the classic subtract-to-evict drift bug.
    Retraction must go through
    :class:`~repro.core.numeric.RetractableSum`, which carries a declared
    drift bound and re-sums from source every N retractions, or be waived
    as exact integer bookkeeping (``# repro: numeric=exact``).  Applies
    to all engine/core files and to inventoried classes anywhere.
    """

    id = "R17"
    summary = (
        "no subtraction-based retraction from retained state; use "
        "RetractableSum (drift bound + periodic re-summation) or waive "
        "integer state with # repro: numeric=exact"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        # The sanctioned implementation itself is exempt: RetractableSum's
        # internals are exactly the code this rule points everyone at.
        if source.path.as_posix().endswith("repro/core/numeric.py"):
            return
        waived = waivers(source)
        if source.engine_scoped:
            yield from self._scan(source, source.tree, waived)
        else:
            for class_node, _record in _inventoried_classes(source, project):
                yield from self._scan(source, class_node, waived)

    def _scan(
        self, source: SourceFile, root: ast.AST, waived: dict[int, str]
    ) -> Iterator[Finding]:
        for node in ast.walk(root):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, ast.Sub):
                continue
            if not _state_target(node.target):
                continue
            if _exempt_operand(node.value):
                continue
            if node.lineno in waived:
                continue
            yield self._finding(
                source,
                node,
                "subtraction-based retraction from retained state drifts "
                "without bound; use repro.core.numeric.RetractableSum "
                "(declared drift bound, periodic re-summation) or waive "
                "exact integer bookkeeping with "
                "'# repro: numeric=exact - <why>'",
            )


class AccumulatedFloatEqualityRule(Rule):
    """R18 — no ``==``/``!=`` on accumulated floats.

    R03 bans float equality on *timestamps*; this extends the ban to
    accumulated values: two folds of the same data along different
    orders differ in the last ULPs, so equality on ``self._sum``,
    ``accumulator[...]`` or ``aggregate.result(...)`` is
    order-dependent.  Compare through
    :func:`repro.core.numeric.floats_close`.  Comparisons against
    integer literals, ``None`` and ``math.inf``/``math.nan`` sentinels
    are exempt — those test *state*, not float identity.
    """

    id = "R18"
    summary = (
        "no ==/!= on accumulated floats; compare through "
        "repro.core.numeric.floats_close"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if not any(self._accumulated(expr) for expr in operands):
                continue
            if any(self._exempt_comparand(expr) for expr in operands):
                continue
            yield self._finding(
                source,
                node,
                "==/!= on an accumulated float is summation-order "
                "dependent; compare through "
                "repro.core.numeric.floats_close(a, b) (or against an "
                "integer/sentinel, which is exempt)",
            )

    @staticmethod
    def _accumulated(node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
            return "acc" in node.value.id
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            return node.func.attr == "result"
        terminal = ""
        if isinstance(node, ast.Name):
            terminal = node.id
        elif isinstance(node, ast.Attribute):
            terminal = node.attr
        if not terminal:
            return False
        if terminal in _ACCUMULATOR_SEGMENTS:
            return True
        return terminal.endswith(_ACCUMULATOR_SUFFIXES)

    @staticmethod
    def _exempt_comparand(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            value = node.value
            # Integer literals test counts; float literals (even 0.0)
            # compare magnitudes and stay flagged.
            return value is None or isinstance(value, int)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return AccumulatedFloatEqualityRule._exempt_comparand(node.operand)
        return _dotted(node) in ("math.inf", "math.nan")


class NumericAnnotationRule(Rule):
    """R19 — every inventoried numeric class declares its discipline.

    The ``__numeric__`` class attribute is a machine-checked contract
    (mirroring ``__concurrency__``): ``"compensated"`` (folds through
    the compensated primitives; NumSan budget 1e-12 relative),
    ``"reassoc-tolerant"`` (deliberate reassociation; budget 1e-9) or
    ``"exact"`` (no float accumulation; zero-ULP budget).  Inheriting
    the annotation from a base class is accepted — protocol-wide
    defaults like ``ErrorModel.__numeric__ = "exact"`` cover stateless
    subclasses.  Unknown values never reach this rule: the inventory
    hard-errors on them (CLI exit 2).
    """

    id = "R19"
    summary = (
        'inventoried numeric classes declare or inherit __numeric__ = '
        '"compensated" | "reassoc-tolerant" | "exact"'
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        valid = ", ".join(f'"{value}"' for value in _sites.NUMERIC_VALUES)
        for class_node, record in _inventoried_classes(source, project):
            if record.effective is not None:
                continue
            origin = f"numeric lineage via {record.via}"
            yield self._finding(
                source,
                class_node,
                f"class {class_node.name} accumulates numeric state "
                f"({origin}) but neither declares nor inherits a "
                f"__numeric__ annotation; add __numeric__ = one of {valid}",
            )


class MixedSummationOrderRule(Rule):
    """R20 — scalar and batched twins of one fold share a summation order.

    ``add_many`` reducing with numpy (pairwise summation) while ``add``
    folds element-by-element in Python produces *different* floats for
    the same data — the equivalence suites then chase phantom diffs.
    Either both paths go through the shared compensated primitive
    (bit-identical by construction) or the batched shortcut carries a
    ``# repro: numeric=reassoc`` waiver and the class declares
    ``reassoc-tolerant``.
    """

    id = "R20"
    summary = (
        "scalar add and batched add_many must not mix python/numpy "
        "summation orders; share the compensated primitive or waive"
    )

    def check(self, source: SourceFile, project: Project) -> Iterator[Finding]:
        waived = waivers(source)
        for class_node, record in _inventoried_classes(source, project):
            methods = {
                item.name: item
                for item in class_node.body
                if isinstance(item, ast.FunctionDef)
            }
            if "add" not in methods or "add_many" not in methods:
                continue
            if self._uses_numpy(methods["add"]):
                continue  # both sides batched: no order split
            for node in ast.walk(methods["add_many"]):
                reduction = self._numpy_reduction(node)
                if reduction is None:
                    continue
                if node.lineno in waived:
                    continue
                yield self._finding(
                    source,
                    node,
                    f"{class_node.name}.add_many reduces with "
                    f"{reduction}() while {class_node.name}.add folds in "
                    f"Python order; the twins diverge bit-for-bit — share "
                    f"the compensated primitive "
                    f"(repro.core.numeric.neumaier_add_many) or concede "
                    f"with '# repro: numeric=reassoc - <why>'",
                )

    @staticmethod
    def _uses_numpy(method: ast.FunctionDef) -> bool:
        for node in ast.walk(method):
            root = _dotted(node) if isinstance(node, ast.Attribute) else ""
            if root.split(".", 1)[0] in ("np", "numpy"):
                return True
        return False

    @staticmethod
    def _numpy_reduction(node: ast.AST) -> str | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr not in _NUMPY_REDUCTIONS:
            return None
        dotted = _dotted(func)
        root = dotted.split(".", 1)[0]
        if root in ("np", "numpy"):
            return dotted
        # Method-call form: ``batch.sum()``, ``((b - m) ** 2).sum()``.
        return func.attr


NUMERIC_RULES: tuple[Rule, ...] = (
    BareAccumulationRule(),
    SubtractiveRetractionRule(),
    AccumulatedFloatEqualityRule(),
    NumericAnnotationRule(),
    MixedSummationOrderRule(),
)
