"""CLI for the numeric analysis: inventory/site dumps and a NumSan smoke run.

``python -m repro.analysis.numeric inventory`` prints the numeric
inventory the R16-R20 lint rules govern: every lineage class, its
declared (or inherited) ``__numeric__`` discipline and how it entered
the inventory.  Exit status 2 on invalid annotations.

``python -m repro.analysis.numeric sites`` prints the classified
accumulation sites (fold / merge / retract / compare) per inventoried
class — where a numeric reviewer should look first.

``python -m repro.analysis.numeric smoke`` runs a deterministic
out-of-order workload under ``sanitize="numeric"`` for each core
aggregate and prints the observed drift report.  Exit status 1 when any
aggregate exceeds its declared budget (NumSan raises) or nothing was
checked.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError


def _load_project(path: str):
    from repro.analysis.lint.model import Project, SourceFile, discover_files

    root = Path(path)
    files = [
        SourceFile.load(file, root=root if root.is_dir() else None)
        for file in discover_files([root])
    ]
    return Project(files)


def _cmd_inventory(args: argparse.Namespace) -> int:
    from repro.analysis.numeric.sites import build_inventory

    inventory = build_inventory(_load_project(args.path))
    width = max((len(name) for name in inventory.classes), default=10)
    for name in sorted(inventory.classes):
        record = inventory.classes[name]
        discipline = record.effective or "?"
        origin = (
            f"inherited from {record.effective_origin}"
            if record.effective_origin
            else ("declared" if record.declared is not None else "missing")
        )
        print(
            f"{name:<{width}}  {discipline:<17} ({origin:<28}) "
            f"via {record.via}  [{record.module}:{record.line}]"
        )
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    from repro.analysis.numeric.sites import build_inventory

    inventory = build_inventory(_load_project(args.path))
    total = 0
    for name in sorted(inventory.classes):
        record = inventory.classes[name]
        if not record.sites:
            continue
        print(f"{name}  [{record.module}:{record.line}]")
        for site in record.sites:
            total += 1
            print(f"  {site.kind:<8} {site.method}():{site.line}")
    print(f"{total} site(s) across {len(inventory.classes)} inventoried class(es)")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.engine.aggregates import make_aggregate
    from repro.engine.aggregate_op import WindowAggregateOperator
    from repro.engine.handlers import KSlackHandler
    from repro.engine.pipeline import run_pipeline
    from repro.engine.windows import SlidingWindowAssigner
    from repro.streams.delay import ExponentialDelay
    from repro.streams.disorder import inject_disorder
    from repro.streams.generators import generate_stream

    rng = np.random.default_rng(args.seed)
    elements = generate_stream(
        duration=args.elements / 200.0, rate=200.0, rng=rng
    )
    disordered = inject_disorder(elements, ExponentialDelay(0.3), rng)
    from repro.analysis.numeric.numsan import sanitize_operator

    failures = 0
    for name in args.aggregates.split(","):
        name = name.strip()
        operator = sanitize_operator(
            WindowAggregateOperator(
                SlidingWindowAssigner(size=20.0, slide=1.0),
                make_aggregate(name),
                KSlackHandler(1.0),
            )
        )
        output = run_pipeline(list(disordered), operator)
        report = operator.report
        entry = report.stats.get(name)
        if entry is None or entry.windows_checked == 0:
            print(f"{name:<10} NOT CHECKED ({len(output.results)} results)")
            failures += 1
            continue
        print(
            f"{name:<10} checked={entry.windows_checked:<6} "
            f"exact={entry.windows_exact:<5} skipped={entry.windows_skipped:<5} "
            f"max_rel_drift={entry.max_rel_drift:.3e} "
            f"max_ulp={entry.max_ulp:g} (bound {entry.discipline})"
        )
    if failures:
        print(f"numsan-smoke: {failures} unchecked aggregate(s)", file=sys.stderr)
        return 1
    print("numsan-smoke: all aggregates within declared budgets")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.numeric",
        description="Numeric analysis tools (inventory, sites, NumSan smoke).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inventory = sub.add_parser("inventory", help="print the numeric inventory")
    inventory.add_argument(
        "path", nargs="?", default="src", help="source root to analyze"
    )
    inventory.set_defaults(func=_cmd_inventory)

    sites = sub.add_parser(
        "sites", help="print classified accumulation sites per class"
    )
    sites.add_argument(
        "path", nargs="?", default="src", help="source root to analyze"
    )
    sites.set_defaults(func=_cmd_sites)

    smoke = sub.add_parser(
        "smoke", help="run a NumSan-sanitized workload and print drift"
    )
    smoke.add_argument("--seed", type=int, default=18)
    smoke.add_argument("--elements", type=int, default=4000)
    smoke.add_argument(
        "--aggregates",
        default="sum,mean,count,variance,stddev",
        help="comma-separated aggregate names",
    )
    smoke.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"numeric: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
