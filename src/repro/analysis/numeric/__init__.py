"""Numeric-safety analysis: float-soundness lint and the NumSan sanitizer.

Out-of-order execution makes floating point *order-sensitive* code a
correctness hazard: the same window folded along a different arrival
order produces a different float, late corrections subtract drift into
retained state, and equality tests on accumulated values flap.  This
package proves — statically and dynamically — that the engine's numeric
discipline holds:

* :mod:`repro.analysis.numeric.sites` infers the **numeric inventory**:
  every class descending from the accumulator protocols
  (``AggregateFunction``, ``ErrorModel``, ``SlackController``,
  ``DelaySample`` plus the explicit accumulator classes), its classified
  accumulation sites, and its declared ``__numeric__`` rounding
  discipline.  Unknown annotation values are a hard configuration error
  (CLI exit 2).
* :mod:`repro.analysis.numeric.rules` turns the inventory into lint
  rules **R16-R20** (no bare ``+=`` float folds, no subtraction-based
  retraction, no ``==`` on accumulated floats, mandatory ``__numeric__``
  annotations, no mixed scalar/numpy summation orders), reported through
  the standard repro-lint reporters, suppressions and baseline.
* :mod:`repro.analysis.numeric.numsan` is **NumSan**, a shadow-execution
  sanitizer enabled via ``run_pipeline(sanitize="numeric")``: every
  window fold is re-evaluated against an exact reference
  (:func:`math.fsum` / :class:`fractions.Fraction`) and the observed
  drift must stay within the discipline the class declared.

The arithmetic the rules point at lives in :mod:`repro.core.numeric`
(Neumaier compensated summation, ``floats_close``, the drift-bounded
``RetractableSum``); see ``docs/NUMERICS.md`` for the error models.
"""

from __future__ import annotations

# ``sites`` must be imported first: it pulls in the dataflow/lint import
# cycle, during which ``repro.analysis.lint`` imports ``numeric.rules`` —
# importing rules here first would leave it partially initialized when the
# lint package asks for NUMERIC_RULES (same ordering contract as
# ``repro.analysis.concur``).
from repro.analysis.numeric.sites import (
    EXTRA_ROOTS,
    LINEAGE_ROOTS,
    NUMERIC_VALUES,
    NumericInventory,
    inventory_for,
)
from repro.analysis.numeric.rules import NUMERIC_RULES, WAIVER_VALUES
from repro.analysis.numeric.numsan import (
    AggregateDriftStats,
    NumSan,
    NumSanOperator,
    NumSanReport,
    sanitize_operator,
)

__all__ = [
    "AggregateDriftStats",
    "EXTRA_ROOTS",
    "LINEAGE_ROOTS",
    "NUMERIC_RULES",
    "NUMERIC_VALUES",
    "NumSan",
    "NumSanOperator",
    "NumSanReport",
    "NumericInventory",
    "WAIVER_VALUES",
    "inventory_for",
    "sanitize_operator",
]
