"""Numeric inventory: which classes the float-soundness rules govern.

The inventory answers one question: *which classes accumulate floating
point state?*  Rather than walking reachability (the concurrency
inventory's question — who can touch this), numeric lineage follows
**inheritance**: every class descending from one of the accumulator
protocols is a numeric class, because the protocol is what promises a
``create``/``add``/``merge``/``result`` fold whose rounding behaviour
matters.

Lineage roots (matched by name, transitively over project-defined
classes, so a subclass of a subclass is still covered — and so is a
test fixture subclassing a re-imported ``AggregateFunction`` that the
fixture project does not itself define):

* ``AggregateFunction`` — the window-fold protocol (sum, mean, ...);
* ``ErrorModel`` — quality estimators feeding the slack controller;
* ``SlackController`` — feedback controllers with EWMA state;
* ``DelaySample`` — delay-distribution trackers.

Plus a handful of explicitly named accumulator classes that do not sit
under any protocol (:data:`EXTRA_ROOTS`).  Exception types are excluded
— raising is not accumulating.

Every inventoried class must declare (or inherit) a ``__numeric__``
annotation (rule R19) naming its rounding discipline:

``"exact"``
    Results are exact or correctly rounded: integer arithmetic,
    comparisons, single float operations.  NumSan holds such a class to
    a zero-ULP budget against the exact reference.
``"compensated"``
    Folds run through a compensated-summation primitive
    (:mod:`repro.core.numeric`); drift against the exact reference stays
    below ``1e-12`` relative.
``"reassoc-tolerant"``
    The class reassociates floating point on purpose (Welford/Chan
    combines, EWMAs, interpolated quantiles) and accepts drift up to
    ``1e-9`` relative.

Unlike the concurrency inventory — where an *invalid* ``__concurrency__``
value is an ordinary R14 finding — an unknown ``__numeric__`` value is a
**configuration error** (CLI exit 2): the value selects NumSan's drift
budget, so a typo would silently verify the wrong contract.  This
mirrors the linter's own unknown-rule-id policy for suppressions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# Bound at call time (``propagation.analysis_for``): the analysis
# packages form an import cycle and this module can be reached while
# ``propagation`` is still mid-initialization.
from repro.analysis.dataflow import propagation
from repro.analysis.dataflow.symbols import ClassSymbol, SymbolTable
from repro.analysis.lint.model import Project
from repro.errors import ConfigurationError

#: Protocol base classes whose descendants form the numeric inventory.
LINEAGE_ROOTS: tuple[str, ...] = (
    "AggregateFunction",
    "ErrorModel",
    "SlackController",
    "DelaySample",
)

#: Accumulator classes inventoried by name (no shared protocol base).
EXTRA_ROOTS: tuple[str, ...] = (
    "ValueStatsTracker",
    "RateTracker",
    "CompensatedSum",
    "RetractableSum",
)

#: Legal values of the ``__numeric__`` rounding-discipline annotation.
NUMERIC_VALUES: tuple[str, ...] = ("compensated", "reassoc-tolerant", "exact")

#: Fold entry points of the aggregate protocol: the methods rule R16
#: holds to the no-bare-accumulation contract.
FOLD_METHODS: frozenset[str] = frozenset({"add", "add_many", "merge"})

#: Method names treated as retraction sites for the site classifier.
_RETRACT_METHODS: frozenset[str] = frozenset(
    {"retract", "remove", "subtract", "evict"}
)

#: Base-class names marking exception types (excluded from the inventory).
_EXCEPTION_BASES: frozenset[str] = frozenset(
    {"Exception", "BaseException", "ValueError", "RuntimeError", "TypeError"}
)


@dataclass(frozen=True)
class NumericSite:
    """One accumulation site inside an inventoried class.

    ``kind`` is the site's role in the fold lifecycle:

    * ``"fold"`` — in-place accumulation inside ``add``/``add_many``;
    * ``"merge"`` — in-place accumulation inside ``merge``;
    * ``"retract"`` — in-place subtraction from retained state;
    * ``"compare"`` — ``==``/``!=`` on accumulated floats.
    """

    kind: str
    method: str
    line: int


@dataclass
class NumericClass:
    """One class of the numeric inventory."""

    name: str
    module: str  # display path of the defining file
    line: int
    #: The lineage root (or extra-root name) that pulled the class in.
    via: str
    #: Declared ``__numeric__`` value on *this* class (None when absent).
    declared: str | None = None
    declared_line: int = 0
    #: Resolved annotation after inheritance: the nearest declared value
    #: walking the ancestry, or None when no ancestor declares one.
    effective: str | None = None
    #: Name of the class the effective value was inherited from ("" when
    #: declared locally or unresolved).
    effective_origin: str = ""
    #: Classified accumulation sites, in source order.
    sites: tuple[NumericSite, ...] = ()


@dataclass
class NumericInventory:
    """Every class the numeric rules govern, keyed by simple name."""

    classes: dict[str, NumericClass] = field(default_factory=dict)

    def class_in(self, name: str, module: str) -> NumericClass | None:
        """The inventory record for ``name`` if it is defined in ``module``."""
        record = self.classes.get(name)
        if record is not None and record.module == module:
            return record
        return None


def _is_exception(table: SymbolTable, name: str) -> bool:
    if name.endswith("Error") or name.endswith("Exception"):
        return True
    for symbol in table.ancestry(name):
        if _EXCEPTION_BASES & set(symbol.base_names):
            return True
    return False


def _lineage_origin(table: SymbolTable, name: str) -> str | None:
    """The root that makes ``name`` a numeric class, or None.

    Matches raw base-name strings over the whole ancestry, so lineage
    survives both project-internal subclassing and bases imported from
    outside the scanned roots (a fixture subclassing ``AggregateFunction``
    without defining it).
    """
    if name in LINEAGE_ROOTS or name in EXTRA_ROOTS:
        return name
    for symbol in table.ancestry(name):
        if symbol.name != name and symbol.name in EXTRA_ROOTS:
            return symbol.name
        hit = set(symbol.base_names) & set(LINEAGE_ROOTS)
        if hit:
            return sorted(hit)[0]
    return None


def _declared_numeric(symbol: ClassSymbol) -> tuple[str | None, int]:
    """The literal ``__numeric__`` value and its line; ``("", line)`` for a
    non-literal assignment, ``(None, 0)`` when the class does not declare
    one."""
    for item in symbol.node.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            targets, value = item.targets, item.value
        elif isinstance(item, ast.AnnAssign) and item.value is not None:
            targets, value = [item.target], item.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__numeric__":
                if isinstance(value, ast.Constant) and isinstance(value.value, str):
                    return value.value, item.lineno
                return "", item.lineno  # non-literal: invalid
    return None, 0


def _self_state_target(node: ast.expr) -> bool:
    """True for ``self.x`` / ``x[i]`` / ``self.x[i]`` style state targets."""
    if isinstance(node, ast.Attribute):
        return True
    if isinstance(node, ast.Subscript):
        return True
    return False


def _classify_sites(symbol: ClassSymbol) -> tuple[NumericSite, ...]:
    """Accumulation sites of one class, for the inventory dump and docs.

    This is a *survey*, not the rule logic: the rules in
    :mod:`repro.analysis.numeric.rules` re-walk the AST with their own
    exemption machinery.  The survey deliberately over-approximates
    (every in-place ``+=``/``-=`` on attribute or subscript state counts)
    so ``python -m repro.analysis.numeric sites`` shows reviewers where
    to look.
    """
    sites: list[NumericSite] = []
    for method_name, method in symbol.methods.items():
        if method_name in FOLD_METHODS:
            kind = "merge" if method_name == "merge" else "fold"
        elif method_name in _RETRACT_METHODS:
            kind = "retract"
        else:
            kind = ""
        for node in ast.walk(method.node):
            if isinstance(node, ast.AugAssign) and _self_state_target(node.target):
                if isinstance(node.op, ast.Sub):
                    sites.append(NumericSite("retract", method_name, node.lineno))
                elif isinstance(node.op, ast.Add) and kind:
                    sites.append(NumericSite(kind, method_name, node.lineno))
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                sites.append(NumericSite("compare", method_name, node.lineno))
    sites.sort(key=lambda site: site.line)
    return tuple(sites)


def _validate(name: str, module: str, declared: str | None, line: int) -> None:
    if declared is None or declared in NUMERIC_VALUES:
        return
    valid = ", ".join(f'"{value}"' for value in NUMERIC_VALUES)
    if declared == "":
        raise ConfigurationError(
            f"{module}:{line}: class {name} assigns a non-literal "
            f"__numeric__; the annotation must be a string literal, one of "
            f"{valid}"
        )
    raise ConfigurationError(
        f"{module}:{line}: class {name} declares __numeric__ = "
        f"{declared!r}; unknown value (the annotation selects NumSan's "
        f"drift budget), expected one of {valid}"
    )


def _effective(
    table: SymbolTable, name: str, declared: str | None
) -> tuple[str | None, str]:
    """Resolve the annotation through the ancestry (nearest wins)."""
    if declared is not None:
        return declared, ""
    for symbol in table.ancestry(name):
        if symbol.name == name:
            continue
        inherited, line = _declared_numeric(symbol)
        if inherited is not None:
            # Ancestors outside the inventory (mixins) still get their
            # values validated: an invalid inherited value is as wrong as
            # an invalid local one.
            _validate(symbol.name, symbol.module, inherited, line)
            return inherited, symbol.name
    return None, ""


def build_inventory(project: Project) -> NumericInventory:
    """Collect every lineage descendant from the project's symbol table.

    Raises :class:`~repro.errors.ConfigurationError` on unknown or
    non-literal ``__numeric__`` values (satisfying the hard-error policy
    that maps to CLI exit 2).
    """
    table = propagation.analysis_for(project).table
    inventory = NumericInventory()
    for name in sorted(table.classes):
        origin = _lineage_origin(table, name)
        if origin is None or _is_exception(table, name):
            continue
        symbol = table.classes[name]
        declared, declared_line = _declared_numeric(symbol)
        _validate(name, symbol.module, declared, declared_line)
        effective, effective_origin = _effective(table, name, declared)
        inventory.classes[name] = NumericClass(
            name=name,
            module=symbol.module,
            line=symbol.node.lineno,
            via=origin,
            declared=declared,
            declared_line=declared_line,
            effective=effective,
            effective_origin=effective_origin,
            sites=_classify_sites(symbol),
        )
    return inventory


def inventory_for(project: Project) -> NumericInventory:
    """Per-project cached :func:`build_inventory` (rules share one walk)."""
    cached = getattr(project, "_numeric_inventory", None)
    if cached is None:
        cached = build_inventory(project)
        project._numeric_inventory = cached  # type: ignore[attr-defined]
    return cached
