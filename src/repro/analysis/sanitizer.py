"""StreamSan: ASan-style runtime checkers for the disorder-handling engine.

The sanitizer wraps a pipeline's :class:`~repro.engine.handlers.DisorderHandler`
and :class:`~repro.engine.operator.Operator` in proxies that assert the
engine's core invariants *while real workloads execute*:

**Handler checkers** (:class:`SanitizingHandler`)

* ``frontier`` — the event-time frontier never decreases and is never NaN;
* ``release`` — no element lingers in the buffer at or below the frontier:
  the moment the frontier passes an element's event time it must have been
  released (late arrivals must be forwarded immediately), and by the end of
  ``flush`` every offered element must have been released;
* ``checkpoints`` — ``offer_many`` checkpoints are structurally consistent
  (one per offered element, end offsets and frontiers nondecreasing, final
  offset covering the released batch, final frontier matching the handler);
* ``accounting`` — ``released_count()`` equals the number of elements the
  handler actually returned, ``buffered_count()`` equals offered − released
  and never exceeds ``max_buffered_count()``;
* ``input order`` — offered elements arrive in nondecreasing
  ``(arrival_time, seq)`` order.

**Operator checkers** (:class:`SanitizingOperator`)

* ``retirement ordering`` — a window result is emitted at most once per
  revision, only after the frontier passed the window end (unless flushed),
  with nondecreasing emit times and a latency consistent with
  ``emit_time − window.end``;
* ``divergence probe`` (opt-in) — every N-th ``process_many`` chunk is
  shadow-executed element-by-element through the scalar path on a deep copy
  of the operator and the emissions are diffed, catching batched/scalar
  drift on live data.

Every violation raises :class:`~repro.errors.SanitizerError` at the call
site.  The sanitizer is enabled per run with
``run_pipeline(..., sanitize=True)``; when off, nothing is wrapped and the
overhead is zero.  Checker overhead when on is measured in
``benchmarks/test_micro_components.py`` (see ``docs/ANALYSIS.md``).

The accounting checkers assume the handler releases only elements it was
offered (true for every handler in this package; the shared-buffer query
cursors of :mod:`repro.core.shared` are driven outside ``run_pipeline`` and
are not wrapped).
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Iterable

from repro.engine.handlers import Checkpoints, DisorderHandler
from repro.engine.operator import Operator, WindowResult
from repro.errors import ConfigurationError, SanitizerError
from repro.obs.trace import NULL_TRACER, Tracer
from repro.streams.element import StreamElement

#: Tolerance of the latency-consistency check: latencies are computed as
#: ``emit_time - window.end`` by every operator, so only representation
#: noise is allowed.
_LATENCY_TOL = 1e-9


@dataclass(frozen=True)
class SanitizerConfig:
    """Which StreamSan checkers run, and how often the probe fires.

    Attributes:
        check_frontier: Frontier monotonicity / NaN checks.
        check_release: No element lingers at or below the frontier.
        check_checkpoints: ``offer_many`` checkpoint structure checks.
        check_accounting: ``released_count``/``buffered_count`` bookkeeping.
        check_emissions: Window lifecycle checks on operator results.
        accounting_period: Audit the accounting counters on the first and
            then every N-th ``offer`` (``offer_many`` and ``flush`` always
            audit).  Counter drift is permanent, so a periodic audit still
            catches every accounting bug — at most N calls late — while
            keeping three proxied count calls off the per-element hot path.
            ``1`` audits every offer.
        divergence_probe_every: When > 0, shadow-execute every N-th
            ``process_many`` chunk scalar-wise on a deep copy and diff the
            emissions.  Expensive (a deep copy per probed chunk); off by
            default.
    """

    check_frontier: bool = True
    check_release: bool = True
    check_checkpoints: bool = True
    check_accounting: bool = True
    check_emissions: bool = True
    accounting_period: int = 32
    divergence_probe_every: int = 0

    def __post_init__(self) -> None:
        if self.accounting_period < 1:
            raise ConfigurationError(
                f"accounting_period must be >= 1, got {self.accounting_period}"
            )
        if self.divergence_probe_every < 0:
            raise ConfigurationError(
                "divergence_probe_every must be non-negative, got "
                f"{self.divergence_probe_every}"
            )


class SanitizingHandler(DisorderHandler):
    """Checked proxy around a :class:`DisorderHandler`.

    All protocol methods forward to the wrapped handler; unknown attributes
    (``k``, ``adaptations``, ...) fall through, so instrumented code that
    introspects concrete handlers keeps working.
    """

    def __init__(
        self, inner: DisorderHandler, config: SanitizerConfig | None = None
    ) -> None:
        self.inner = inner
        self.config = config or SanitizerConfig()
        self.name = getattr(inner, "name", "handler")
        # The per-element hot path reads these instead of chasing the
        # config dataclass's attributes on every offer.
        self._chk_frontier = self.config.check_frontier
        self._chk_release = self.config.check_release
        self._chk_accounting = self.config.check_accounting
        self._audit_period = self.config.accounting_period
        # Countdown to the next accounting audit; starts at 1 so the very
        # first offer is audited (miswired handlers surface immediately).
        self._audit_in = 1
        self._offered_total = 0
        self._returned_total = 0
        self._last_frontier = inner.frontier
        self._inner_offer = inner.offer
        # Arrival order is tracked as two scalars instead of a
        # ``(arrival_time, seq)`` tuple so the hot path allocates nothing.
        self._last_arrival_time = float("-inf")
        self._last_arrival_seq = -1
        # Elements offered but not yet released, keyed by identity (the
        # engine forwards the same objects it is offered).  The heap allows
        # an O(log n) "smallest buffered event time" probe with lazy
        # deletion of already-released entries.
        self._inflight: dict[int, StreamElement] = {}
        self._inflight_heap: list[tuple[float, int, int]] = []
        self._tracks_released = (
            type(inner).released_count is not DisorderHandler.released_count
        )
        self._tracks_buffered = (
            type(inner).buffered_count is not DisorderHandler.buffered_count
        )

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to the proxy and the wrapped handler."""
        self.tracer = tracer
        self.inner.set_tracer(tracer)

    # ------------------------------------------------------------------ #
    # checks

    def _fail(self, check: str, message: str) -> None:
        if self.tracer.enabled:
            self.tracer.sanitizer_finding(self._last_arrival_time, check, message)
        raise SanitizerError(
            f"StreamSan[{check}] on {self.inner.describe()}: {message}"
        )

    def _note_offered(self, element: StreamElement) -> None:
        arrival = element.arrival_time
        if arrival is not None:
            self._check_arrival_order(arrival, element.seq)
        self._offered_total += 1
        marker = id(element)
        self._inflight[marker] = element
        heappush(
            self._inflight_heap, (element.event_time, element.seq, marker)
        )

    def _check_arrival_order(self, arrival: float, seq: int) -> None:
        last_arrival = self._last_arrival_time
        if arrival > last_arrival:
            self._last_arrival_time = arrival
            self._last_arrival_seq = seq
        elif arrival < last_arrival:
            self._fail(
                "input-order",
                f"element offered out of arrival order: ({arrival}, {seq}) "
                f"after ({last_arrival}, {self._last_arrival_seq})",
            )
        else:
            if seq < self._last_arrival_seq:
                self._fail(
                    "input-order",
                    f"element offered out of arrival order: ({arrival}, "
                    f"{seq}) after ({last_arrival}, {self._last_arrival_seq})",
                )
            self._last_arrival_seq = seq

    def _note_released(self, released: Iterable[StreamElement]) -> None:
        inflight = self._inflight
        for element in released:
            self._returned_total += 1
            inflight.pop(id(element), None)

    def _check_frontier_step(self, where: str) -> float:
        frontier = self.inner.frontier
        if self.config.check_frontier:
            if isinstance(frontier, float) and math.isnan(frontier):
                self._fail("frontier", f"frontier is NaN after {where}")
            if frontier < self._last_frontier:
                self._fail(
                    "frontier",
                    f"frontier moved backwards after {where}: "
                    f"{self._last_frontier} -> {frontier}",
                )
        self._last_frontier = max(self._last_frontier, frontier)
        return frontier

    def _check_release_invariant(self, frontier: float, where: str) -> None:
        if not self.config.check_release:
            return
        heap = self._inflight_heap
        inflight = self._inflight
        while heap and heap[0][2] not in inflight:
            heappop(heap)
        if heap and heap[0][0] <= frontier:
            self._fail(
                "release",
                f"element with event_time={heap[0][0]:g} still buffered at "
                f"or below the frontier {frontier:g} after {where} — it "
                "must be released the moment the frontier passes it",
            )

    def _check_accounting(self, where: str) -> None:
        if not self.config.check_accounting:
            return
        if self._tracks_released:
            reported = self.inner.released_count()
            # Both sides are integer element counters, not float folds.
            if reported != self._returned_total:  # repro-lint: disable=R18
                self._fail(
                    "accounting",
                    f"released_count()={reported} but {self._returned_total} "
                    f"element(s) were actually returned (after {where})",
                )
        buffered = self.inner.buffered_count()
        if self._tracks_buffered:
            held = self._offered_total - self._returned_total
            if buffered != held:
                self._fail(
                    "accounting",
                    f"buffered_count()={buffered} but offered - released = "
                    f"{held} (after {where})",
                )
        if buffered > self.inner.max_buffered_count():
            self._fail(
                "accounting",
                f"buffered_count()={buffered} exceeds max_buffered_count()="
                f"{self.inner.max_buffered_count()} (after {where})",
            )

    def _check_checkpoints(
        self,
        elements: list[StreamElement],
        released: list[StreamElement],
        checkpoints: Checkpoints,
        frontier_before: float,
    ) -> None:
        if not self.config.check_checkpoints:
            return
        if len(checkpoints) != len(elements):
            self._fail(
                "checkpoints",
                f"offer_many returned {len(checkpoints)} checkpoint(s) for "
                f"{len(elements)} element(s)",
            )
        previous_offset = 0
        previous_frontier = frontier_before
        for position, (offset, frontier) in enumerate(checkpoints):
            if offset < previous_offset or offset > len(released):
                self._fail(
                    "checkpoints",
                    f"checkpoint {position}: end offset {offset} out of "
                    f"order (previous {previous_offset}, released "
                    f"{len(released)})",
                )
            if frontier < previous_frontier:
                self._fail(
                    "checkpoints",
                    f"checkpoint {position}: frontier {frontier} below "
                    f"previous {previous_frontier}",
                )
            previous_offset = offset
            previous_frontier = frontier
        if checkpoints:
            if previous_offset != len(released):
                self._fail(
                    "checkpoints",
                    f"final checkpoint covers {previous_offset} of "
                    f"{len(released)} released element(s)",
                )
            # Exact comparison is the contract (R03): the final checkpoint
            # must carry the bit-identical frontier the handler reports.
            if previous_frontier != self.inner.frontier:  # repro-lint: disable=R03
                self._fail(
                    "checkpoints",
                    f"final checkpoint frontier {previous_frontier} != "
                    f"handler frontier {self.inner.frontier}",
                )

    # ------------------------------------------------------------------ #
    # DisorderHandler protocol (checked forwarding)

    def offer(self, element: StreamElement) -> list[StreamElement]:
        """Forward one element to the wrapped handler and run the checkers.

        This is the per-element hot path: the checks are inlined (instead
        of calling the helper methods) and elements released by their own
        offer skip the in-flight bookkeeping entirely, keeping the checker
        overhead on real workloads within the documented budget.
        """
        arrival = element.arrival_time
        if arrival is not None:
            if arrival > self._last_arrival_time:
                self._last_arrival_time = arrival
                self._last_arrival_seq = element.seq
            else:
                self._check_arrival_order(arrival, element.seq)
        released = self._inner_offer(element)
        n_released = len(released)
        self._offered_total += 1
        self._returned_total += n_released
        inflight = self._inflight
        if not (n_released == 1 and released[0] is element):
            marker = id(element)
            passed_through = False
            for item in released:
                item_id = id(item)
                if item_id == marker:
                    passed_through = True
                else:
                    inflight.pop(item_id, None)
            if not passed_through:
                inflight[marker] = element
                heappush(
                    self._inflight_heap, (element.event_time, element.seq, marker)
                )
        frontier = self.inner.frontier
        last = self._last_frontier
        if frontier > last:
            self._last_frontier = frontier
        # Exact comparisons are deliberate (R03): a stalled frontier repeats
        # the identical float, so anything not >, == or NaN moved backwards.
        elif frontier != last and self._chk_frontier:  # repro-lint: disable=R03
            if frontier != frontier:  # repro-lint: disable=R03 - NaN probe
                self._fail("frontier", "frontier is NaN after offer")
            self._fail(
                "frontier",
                f"frontier moved backwards after offer: {last} -> {frontier}",
            )
        if self._chk_release:
            heap = self._inflight_heap
            # Entries above the frontier are fine whether stale or live, so
            # lazy deletion only has to run once the top dips below it.
            if heap and heap[0][0] <= frontier:
                while heap and heap[0][2] not in inflight:
                    heappop(heap)
                if heap and heap[0][0] <= frontier:
                    self._fail(
                        "release",
                        f"element with event_time={heap[0][0]:g} still "
                        f"buffered at or below the frontier {frontier:g} "
                        "after offer — it must be released the moment the "
                        "frontier passes it",
                    )
        countdown = self._audit_in - 1
        if countdown > 0:
            self._audit_in = countdown
        else:
            self._audit_in = self._audit_period
            self._check_accounting("offer")
        return released

    def offer_many(
        self, elements: list[StreamElement]
    ) -> tuple[list[StreamElement], Checkpoints]:
        """Forward a batch to the wrapped handler and run the checkers."""
        frontier_before = self._last_frontier
        for element in elements:
            self._note_offered(element)
        released, checkpoints = self.inner.offer_many(elements)
        self._note_released(released)
        frontier = self._check_frontier_step("offer_many")
        self._check_checkpoints(elements, released, checkpoints, frontier_before)
        self._check_release_invariant(frontier, "offer_many")
        self._check_accounting("offer_many")
        return released, checkpoints

    def flush(self) -> list[StreamElement]:
        """Flush the wrapped handler; assert every element was released."""
        released = self.inner.flush()
        self._note_released(released)
        self._check_frontier_step("flush")
        self._check_accounting("flush")
        if self.config.check_release and self._inflight:
            stuck = min(
                self._inflight.values(), key=StreamElement.event_sort_key
            )
            self._fail(
                "release",
                f"{len(self._inflight)} offered element(s) never released "
                f"(earliest event_time={stuck.event_time:g}) after flush",
            )
        return released

    @property
    def frontier(self) -> float:
        """Checked view of the wrapped handler's frontier.

        Served from the value captured at the last checked protocol call —
        handlers only move their frontier inside ``offer``/``offer_many``/
        ``flush``, and the frontier checker asserts the captured value never
        falls behind the handler's, so this is identical to
        ``inner.frontier`` while sparing instrumented per-element readers a
        second proxy hop.
        """
        return self._last_frontier

    @property
    def current_slack(self) -> float:
        """Forwarded to the wrapped handler."""
        return self.inner.current_slack

    def released_count(self) -> int:
        """Forwarded to the wrapped handler."""
        return self.inner.released_count()

    def buffered_count(self) -> int:
        """Forwarded to the wrapped handler."""
        return self.inner.buffered_count()

    def max_buffered_count(self) -> int:
        """Forwarded to the wrapped handler."""
        return self.inner.max_buffered_count()

    def observe_error(self, error: float) -> None:
        """Forwarded to the wrapped handler."""
        self.inner.observe_error(error)

    def next_adaptation_offset(
        self, elements: list[StreamElement], start: int, stop: int
    ) -> int | None:
        """Forwarded to the wrapped handler."""
        return self.inner.next_adaptation_offset(elements, start, stop)

    def describe(self) -> str:
        """Label the wrapped handler as sanitized."""
        return f"streamsan({self.inner.describe()})"

    def __getattr__(self, name: str) -> Any:
        """Fall through to the wrapped handler for concrete-class attributes.

        Dunder and private names are not forwarded: copy/pickle machinery
        probes them on half-constructed proxies, which must fail with a
        plain ``AttributeError`` instead of recursing into the proxy.
        """
        if name.startswith("_"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


#: Relative tolerance for aggregate *values* in the divergence probe —
#: matches the contract of ``AggregateFunction.add_many``: sum-like bulk
#: folds may differ from the scalar loop by re-association rounding only
#: (the same tolerance the batched equivalence suite uses).  All other
#: result fields must match bit-for-bit.
_VALUE_RTOL = 1e-9


def _values_equal(left: object, right: object) -> bool:
    """NaN-aware, association-tolerant equality for emitted values."""
    if isinstance(left, float) and isinstance(right, float):
        if math.isnan(left) and math.isnan(right):
            return True
        if math.isnan(left) or math.isnan(right):
            return False
        return left == right or abs(left - right) <= _VALUE_RTOL * max(
            1.0, abs(left), abs(right)
        )
    return left == right


def _results_equal(left: WindowResult, right: WindowResult) -> bool:
    """Field-wise window-result comparison with NaN-aware values."""
    # Exact float comparison is the point (R03): the batched path promises
    # *bit-identical* scalar semantics, so any representation drift in emit
    # times or latencies is a real divergence.
    return (
        left.key == right.key
        and left.window == right.window
        and _values_equal(left.value, right.value)
        and left.count == right.count
        and left.emit_time == right.emit_time  # repro-lint: disable=R03
        and left.latency == right.latency  # repro-lint: disable=R03
        and left.revision == right.revision
        and left.flushed == right.flushed
    )


class SanitizingOperator(Operator):
    """Checked proxy around an :class:`Operator`.

    Wrapping also swaps the operator's ``handler`` attribute (when present)
    for a :class:`SanitizingHandler`, so the operator's own calls into the
    handler are checked too.  ``handler``/``stats`` are re-exported for the
    pipeline's instrumentation; any other attribute falls through.
    """

    #: Attached tracer; a class attribute so reads never hit ``__getattr__``.
    tracer: Tracer = NULL_TRACER

    def __init__(
        self, inner: Operator, config: SanitizerConfig | None = None
    ) -> None:
        self.inner = inner
        self.config = config or SanitizerConfig()
        self._inner_process = inner.process
        self._sanitized_handler: SanitizingHandler | None = None
        inner_handler = getattr(inner, "handler", None)
        if inner_handler is not None:
            if isinstance(inner_handler, SanitizingHandler):
                self._sanitized_handler = inner_handler
            else:
                self._sanitized_handler = SanitizingHandler(
                    inner_handler, self.config
                )
                inner.handler = self._sanitized_handler  # type: ignore[attr-defined]
        self._emitted: set[tuple[object, float, float, int]] = set()
        self._last_emit_time = float("-inf")
        self._chunks_processed = 0

    def set_tracer(self, tracer: Tracer) -> None:
        """Attach a tracer to the proxy and the wrapped operator.

        The wrapped operator forwards to its handler attribute — which the
        constructor swapped for the :class:`SanitizingHandler`, so handler
        findings and engine trace records all land in the same trace.
        """
        self.tracer = tracer
        set_inner_tracer = getattr(self.inner, "set_tracer", None)
        if set_inner_tracer is not None:
            set_inner_tracer(tracer)

    # ------------------------------------------------------------------ #
    # checks

    def _fail(self, check: str, message: str) -> None:
        if self.tracer.enabled:
            self.tracer.sanitizer_finding(self._last_emit_time, check, message)
        raise SanitizerError(f"StreamSan[{check}]: {message}")

    def _check_results(
        self, results: list[WindowResult], flushing: bool
    ) -> None:
        if not self.config.check_emissions:
            return
        handler = self._sanitized_handler
        frontier = handler.frontier if handler is not None else None
        for result in results:
            window = getattr(result, "window", None)
            if window is None:
                continue  # join/pattern results have their own lifecycle
            slot = (result.key, window.start, window.end, result.revision)
            if slot in self._emitted:
                self._fail(
                    "retirement",
                    f"window {window} (key={result.key!r}, revision="
                    f"{result.revision}) emitted twice",
                )
            self._emitted.add(slot)
            if not result.flushed and frontier is not None:
                if window.end > frontier:
                    self._fail(
                        "retirement",
                        f"window {window} emitted before the frontier "
                        f"({frontier:g}) passed its end",
                    )
            if result.emit_time < self._last_emit_time:
                self._fail(
                    "retirement",
                    f"emit_time moved backwards: {self._last_emit_time:g} "
                    f"-> {result.emit_time:g}",
                )
            self._last_emit_time = result.emit_time
            if result.revision == 0:
                expected = result.emit_time - window.end
                if not math.isclose(
                    result.latency, expected, rel_tol=1e-9, abs_tol=_LATENCY_TOL
                ):
                    self._fail(
                        "retirement",
                        f"latency {result.latency!r} inconsistent with "
                        f"emit_time - window.end = {expected!r}",
                    )

    def _probe_divergence(
        self, elements: list[StreamElement]
    ) -> list[WindowResult]:
        """Shadow-run the chunk scalar-wise on a deep copy and diff results."""
        shadow = copy.deepcopy(self.inner)
        shadow_handler = getattr(shadow, "handler", None)
        if isinstance(shadow_handler, SanitizingHandler):
            # The shadow must run unchecked: its copied checker state is
            # keyed by the identities of the *copied* elements, while the
            # probe feeds it the originals.
            shadow.handler = shadow_handler.inner  # type: ignore[attr-defined]
        batched = self.inner.process_many(elements)
        scalar: list[WindowResult] = []
        for element in elements:
            scalar.extend(shadow.process(element))
        if len(batched) != len(scalar) or not all(
            _results_equal(b, s) for b, s in zip(batched, scalar)
        ):
            preview = [
                (b, s)
                for b, s in zip(batched, scalar)
                if not _results_equal(b, s)
            ][:3]
            self._fail(
                "divergence",
                f"batched path emitted {len(batched)} result(s), scalar "
                f"shadow emitted {len(scalar)}; first diffs: {preview!r}",
            )
        return batched

    # ------------------------------------------------------------------ #
    # Operator protocol (checked forwarding)

    def process(self, element: StreamElement) -> list[WindowResult]:
        """Forward one element to the wrapped operator and check emissions."""
        results = self._inner_process(element)
        if results:
            self._check_results(results, flushing=False)
        return results

    def process_many(self, elements: list[StreamElement]) -> list[WindowResult]:
        """Forward a chunk, optionally probing batched-vs-scalar divergence."""
        self._chunks_processed += 1
        probe_every = self.config.divergence_probe_every
        if (
            probe_every > 0
            and len(elements) > 1
            and self._chunks_processed % probe_every == 0
        ):
            results = self._probe_divergence(elements)
        else:
            results = self.inner.process_many(elements)
        if results:
            self._check_results(results, flushing=False)
        return results

    def finish(self) -> list[WindowResult]:
        """Finish the wrapped operator and check the flushed emissions."""
        results = self.inner.finish()
        self._check_results(results, flushing=True)
        return results

    @property
    def handler(self) -> DisorderHandler | None:
        """The sanitized handler (pipeline instrumentation reads this)."""
        return self._sanitized_handler

    @property
    def stats(self) -> Any:
        """The wrapped operator's stats object, when it keeps one."""
        return getattr(self.inner, "stats", None)

    def __getattr__(self, name: str) -> Any:
        """Fall through to the wrapped operator (public attributes only)."""
        if name.startswith("_"):
            raise AttributeError(name)
        inner = self.__dict__.get("inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)


def sanitize_operator(
    operator: Operator, config: SanitizerConfig | None = None
) -> SanitizingOperator:
    """Wrap ``operator`` (and its handler) in StreamSan checkers.

    Convenience for driving an operator by hand; ``run_pipeline`` applies
    the same wrapping when called with ``sanitize=True``.
    """
    return SanitizingOperator(operator, config)
