"""CLI for the observability layer: ``python -m repro.obs <command>``.

Commands:

* ``report <trace.jsonl>`` — terminal summary of a recorded trace (top
  frontier stalls, adaptation history, θ-violation windows).
* ``chrome <trace.jsonl> -o <trace.json>`` — convert a JSONL trace to
  Chrome ``trace_event`` JSON, loadable at https://ui.perfetto.dev.
* ``demo -o <dir>`` — run the E4-style burst demo with tracing on and
  write both formats (plus the report) into ``<dir>``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.export import read_jsonl
    from repro.obs.report import summarize

    events = read_jsonl(args.trace)
    print(summarize(events, theta=args.theta, top_stalls=args.stalls))
    return 0


def _cmd_chrome(args: argparse.Namespace) -> int:
    from repro.obs.export import read_jsonl, write_chrome_trace

    events = read_jsonl(args.trace)
    written = write_chrome_trace(events, args.output, run_label=args.label)
    print(f"wrote {written} trace entries to {args.output}")
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.obs.demo import burst_demo_run
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.report import summarize

    output_dir = Path(args.output)
    output_dir.mkdir(parents=True, exist_ok=True)
    run, recorder = burst_demo_run(
        duration=args.duration, theta=args.theta, seed=args.seed
    )
    jsonl_path = output_dir / "burst_trace.jsonl"
    chrome_path = output_dir / "burst_trace.chrome.json"
    write_jsonl(recorder.events, jsonl_path)
    write_chrome_trace(recorder, chrome_path, run_label="repro burst demo")
    print(
        f"burst demo: {run.metrics.n_elements} elements -> "
        f"{run.metrics.n_results} results, {len(recorder)} trace events"
    )
    print(f"wrote {jsonl_path} and {chrome_path}")
    print()
    print(summarize(recorder.events, theta=args.theta))
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.obs``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect and export repro trace recordings.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser("report", help="summarize a JSONL trace")
    report.add_argument("trace", help="path to a trace written by write_jsonl")
    report.add_argument(
        "--theta",
        type=float,
        default=None,
        help="quality target for the violation section (default: recover "
        "from adaptation records)",
    )
    report.add_argument(
        "--stalls", type=int, default=5, help="frontier stalls to show"
    )
    report.set_defaults(handler=_cmd_report)

    chrome = commands.add_parser(
        "chrome", help="convert a JSONL trace to Chrome trace_event JSON"
    )
    chrome.add_argument("trace", help="path to a trace written by write_jsonl")
    chrome.add_argument("-o", "--output", required=True, help="output .json path")
    chrome.add_argument(
        "--label", default="repro-run", help="process label shown in Perfetto"
    )
    chrome.set_defaults(handler=_cmd_chrome)

    demo = commands.add_parser(
        "demo", help="run the traced E4-style burst demo and export it"
    )
    demo.add_argument("-o", "--output", required=True, help="output directory")
    demo.add_argument("--duration", type=float, default=120.0)
    demo.add_argument("--theta", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=7)
    demo.set_defaults(handler=_cmd_demo)

    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except BrokenPipeError:
        # Reports are routinely piped into `head`/`less`; a closed pipe
        # is a normal way for the reader to stop, not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
