"""Trace exporters: JSONL round-trip and Chrome ``trace_event`` (Perfetto).

Two on-disk formats for a :class:`~repro.obs.trace.TraceRecorder`:

* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one
  :class:`~repro.obs.trace.TraceEvent` per line, lossless (non-finite
  floats survive the round trip via an ``{"$float": ...}`` envelope,
  which plain JSON cannot encode).
* **Chrome trace** (:func:`chrome_trace` / :func:`write_chrome_trace`) —
  the ``trace_event`` JSON array format that Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing`` load directly.  The
  simulated clock maps to the trace clock (1 simulated second = 1e6
  trace µs, rebased so the trace starts at 0); tracks:

  - counter tracks for **slack K** (from adaptation rounds), **buffer
    occupancy** and the **event-time frontier**;
  - one lane per row of concurrently open **windows**, each window a
    ``B``/``E`` duration slice from open to close (greedy lane packing
    keeps slices on a lane non-overlapping, so every ``B`` nests);
  - instant events for **adaptations**, **late drops** and **sanitizer
    findings**.

See ``docs/OBSERVABILITY.md`` for a textual walkthrough of the result.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Iterable

from repro.obs.trace import TraceEvent, TraceRecorder

#: pid used for all track groups of one exported run.
_PID = 1

#: tid layout: fixed tracks first, window lanes from ``_TID_LANE0`` up.
_TID_ADAPT = 2
_TID_EVENTS = 3
_TID_LANE0 = 10


def _encode_value(value: Any) -> Any:
    """Make one payload value JSON-safe (non-finite floats enveloped)."""
    if isinstance(value, float) and not math.isfinite(value):
        if math.isnan(value):
            return {"$float": "nan"}
        return {"$float": "inf" if value > 0 else "-inf"}
    if isinstance(value, dict):
        return {key: _encode_value(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item) for item in value]
    return value


def _decode_value(value: Any) -> Any:
    """Reverse :func:`_encode_value`."""
    if isinstance(value, dict):
        if set(value) == {"$float"}:
            return float(value["$float"])
        return {key: _decode_value(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Write events to ``path``, one JSON object per line.

    Returns the number of events written.  Accepts any iterable of
    :class:`~repro.obs.trace.TraceEvent` (``recorder.events`` included).
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(
                json.dumps(
                    {
                        "kind": event.kind,
                        "sim_time": _encode_value(event.sim_time),
                        "wall_time": event.wall_time,
                        "fields": _encode_value(event.fields),
                    },
                    separators=(",", ":"),
                )
            )
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Load events written by :func:`write_jsonl` (lossless round trip)."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(
                TraceEvent(
                    kind=raw["kind"],
                    sim_time=float(_decode_value(raw["sim_time"])),
                    wall_time=float(raw["wall_time"]),
                    fields=_decode_value(raw["fields"]),
                )
            )
    return events


def _window_label(fields: dict[str, Any]) -> str:
    """Display name of one window slice."""
    key = fields.get("key")
    prefix = "window" if key is None else f"window[{key!r}]"
    return f"{prefix} [{fields.get('start'):g}, {fields.get('end'):g})"


def _assign_lanes(
    spans: list[tuple[float, float, dict[str, Any]]]
) -> list[tuple[int, float, float, dict[str, Any]]]:
    """Greedy interval packing: first lane whose last span has ended.

    Spans must be sorted by start time.  Returns ``(lane, start, end,
    fields)`` rows; within one lane spans never overlap, so the emitted
    ``B``/``E`` pairs nest trivially.
    """
    lane_ends: list[float] = []
    placed: list[tuple[int, float, float, dict[str, Any]]] = []
    for start, end, fields in spans:
        for lane, lane_end in enumerate(lane_ends):
            if lane_end <= start:
                lane_ends[lane] = end
                placed.append((lane, start, end, fields))
                break
        else:
            lane_ends.append(end)
            placed.append((len(lane_ends) - 1, start, end, fields))
    return placed


def chrome_trace(
    events: list[TraceEvent], run_label: str = "repro-run"
) -> list[dict[str, Any]]:
    """Convert recorded events into a Chrome ``trace_event`` list.

    The returned list serializes to the JSON array variant of the format
    (what Perfetto's "Open trace file" accepts).  Events with non-finite
    simulated timestamps are skipped — the trace clock must be real.
    """
    finite = [event for event in events if math.isfinite(event.sim_time)]
    if not finite:
        return []
    origin = min(event.sim_time for event in finite)

    def ts(sim_time: float) -> float:
        return (sim_time - origin) * 1e6

    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": run_label},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_ADAPT,
            "args": {"name": "adaptation rounds"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_EVENTS,
            "args": {"name": "late drops + findings"},
        },
    ]

    body: list[dict[str, Any]] = []

    def counter(name: str, sim_time: float, value: float) -> None:
        if math.isfinite(value):
            body.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": ts(sim_time),
                    "pid": _PID,
                    "tid": 0,
                    "args": {name: value},
                }
            )

    def instant(name: str, sim_time: float, tid: int, args: dict[str, Any]) -> None:
        body.append(
            {
                "name": name,
                "ph": "i",
                "ts": ts(sim_time),
                "pid": _PID,
                "tid": tid,
                "s": "t",
                "args": args,
            }
        )

    # Counter tracks + instants.
    for event in finite:
        kind = event.kind
        fields = event.fields
        if kind == "frontier.advance":
            frontier = fields.get("frontier")
            buffered = fields.get("buffered")
            if isinstance(frontier, (int, float)):
                counter("frontier", event.sim_time, float(frontier))
            if isinstance(buffered, (int, float)):
                counter("buffer occupancy", event.sim_time, float(buffered))
        elif kind in ("buffer.push", "buffer.release"):
            buffered = fields.get("buffered")
            if isinstance(buffered, (int, float)):
                counter("buffer occupancy", event.sim_time, float(buffered))
        elif kind == "adaptation":
            k_after = fields.get("k_after")
            if isinstance(k_after, (int, float)):
                counter("slack K", event.sim_time, float(k_after))
            instant("adaptation", event.sim_time, _TID_ADAPT, dict(fields))
        elif kind == "late.drop":
            instant("late drop", event.sim_time, _TID_EVENTS, dict(fields))
        elif kind == "sanitizer.finding":
            instant("sanitizer finding", event.sim_time, _TID_EVENTS, dict(fields))

    # Window lifetime lanes: pair each open with its close/flush.
    opens: dict[tuple[Any, Any, Any], float] = {}
    spans: list[tuple[float, float, dict[str, Any]]] = []
    for event in finite:
        fields = event.fields
        slot = (
            repr(fields.get("key")),
            fields.get("start"),
            fields.get("end"),
        )
        if event.kind == "window.open":
            opens.setdefault(slot, event.sim_time)
        elif event.kind in ("window.close", "window.flush"):
            opened = opens.pop(slot, None)
            if opened is None:
                opened = event.sim_time
            spans.append(
                (opened, max(event.sim_time, opened), dict(fields))
            )
    spans.sort(key=lambda span: (span[0], span[1]))
    lanes_used = 0
    for lane, start, end, fields in _assign_lanes(spans):
        tid = _TID_LANE0 + lane
        lanes_used = max(lanes_used, lane + 1)
        label = _window_label(fields)
        body.append(
            {
                "name": label,
                "ph": "B",
                "ts": ts(start),
                "pid": _PID,
                "tid": tid,
                "args": {},
            }
        )
        body.append(
            {
                "name": label,
                "ph": "E",
                "ts": ts(end),
                "pid": _PID,
                "tid": tid,
                "args": {
                    key: _encode_value(value)
                    for key, value in fields.items()
                    if key in ("value", "count", "latency")
                },
            }
        )
    for lane in range(lanes_used):
        out.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": _TID_LANE0 + lane,
                "args": {"name": f"windows (lane {lane})"},
            }
        )

    # Stable sort: equal-ts events keep build order, so a window's B stays
    # ahead of its E and a lane's E ahead of the next B at the same instant.
    body.sort(key=lambda entry: entry["ts"])
    out.extend(body)
    return out


def write_chrome_trace(
    recorder_or_events: TraceRecorder | list[TraceEvent],
    path: str | Path,
    run_label: str = "repro-run",
) -> int:
    """Write a Chrome ``trace_event`` JSON file loadable in Perfetto.

    Returns the number of trace entries written.
    """
    events = (
        recorder_or_events.events
        if isinstance(recorder_or_events, TraceRecorder)
        else recorder_or_events
    )
    entries = chrome_trace(events, run_label=run_label)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entries, handle, separators=(",", ":"))
    return len(entries)
