"""Pluggable metrics: counters, gauges and histograms behind a registry.

:class:`~repro.engine.metrics.RunMetrics` is a *view* over a
:class:`MetricsRegistry`: the pipeline keeps the registry's instruments
current while the run executes, so a caller holding the registry (a
monitoring thread, a progress callback, an operator hook) can sample
throughput, buffer occupancy or late-drop counts **live** instead of
waiting for the run to finish.

Instruments are created on first use and identified by name; asking for an
existing name returns the same instrument (asking with a different type is
a :class:`~repro.errors.ConfigurationError`).  Everything is stdlib-only
and allocation-light: one attribute bump per update.
"""

from __future__ import annotations

import math
import threading
from typing import Iterator, Union

from repro.errors import ConfigurationError


class Counter:
    """A monotonically increasing count (resettable only via :meth:`set`)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: int = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (negative amounts are rejected)."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def set(self, value: int) -> None:
        """Overwrite the count (end-of-run snapshot reconciliation)."""
        self.value = value

    def describe(self) -> str:
        """Short label for reports."""
        return f"counter {self.name}={self.value}"


class Gauge:
    """A point-in-time value; tracks its own high-water mark."""

    __slots__ = ("name", "value", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.maximum: float = 0.0

    def set(self, value: float) -> None:
        """Set the current value (and bump the high-water mark)."""
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def describe(self) -> str:
        """Short label for reports."""
        return f"gauge {self.name}={self.value:g} (max {self.maximum:g})"


class Histogram:
    """A distribution of observed samples (NaN samples are dropped).

    Samples are retained, so quantiles are exact; memory is bounded by the
    caller observing a bounded number of samples (one per window result in
    the pipeline's case).
    """

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str) -> None:
        self.name = name
        self._samples: list[float] = []
        self._sorted = True

    @property
    def count(self) -> int:
        """Number of retained samples."""
        return len(self._samples)

    def observe(self, value: float) -> None:
        """Fold one sample in (NaN is ignored)."""
        if math.isnan(value):
            return
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)

    def observe_many(self, values: list[float]) -> None:
        """Fold a batch of samples in."""
        for value in values:
            self.observe(value)

    def _ordered(self) -> list[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples; NaN when empty."""
        if not self._samples:
            return math.nan
        return sum(self._samples) / len(self._samples)

    @property
    def minimum(self) -> float:
        """Smallest sample; NaN when empty."""
        return self._ordered()[0] if self._samples else math.nan

    @property
    def maximum(self) -> float:
        """Largest sample; NaN when empty."""
        return self._ordered()[-1] if self._samples else math.nan

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile in [0, 1]; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must lie in [0,1], got {q}")
        ordered = self._ordered()
        if not ordered:
            return math.nan
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        weight = position - lower
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    def summary(self) -> dict[str, float]:
        """Count/mean/p50/p95/max snapshot of the distribution."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.maximum,
        }

    def describe(self) -> str:
        """Short label for reports."""
        return f"histogram {self.name} (n={self.count})"


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name-indexed collection of counters, gauges and histograms.

    Registration (``counter``/``gauge``/``histogram``/``get``) is guarded
    by an internal lock so concurrent pipelines can share one registry;
    instrument *updates* stay lock-free single-attribute bumps (each
    instrument has one writer — the pipeline that created it).
    """

    __concurrency__ = "guarded"

    def __init__(self) -> None:
        self._instruments_lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        """Iterate instruments in name order (deterministic)."""
        return iter(
            self._instruments[name] for name in sorted(self._instruments)
        )

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def _get_or_create(
        self, name: str, kind: type[Counter] | type[Gauge] | type[Histogram]
    ) -> Instrument:
        with self._instruments_lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                created: Instrument = kind(name)
                self._instruments[name] = created
                return created
        if not isinstance(instrument, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """Get or create the counter named ``name``."""
        instrument = self._get_or_create(name, Counter)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge named ``name``."""
        instrument = self._get_or_create(name, Gauge)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram named ``name``."""
        instrument = self._get_or_create(name, Histogram)
        assert isinstance(instrument, Histogram)
        return instrument

    def get(self, name: str) -> Instrument | None:
        """The instrument named ``name``, or ``None``."""
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, object]:
        """Point-in-time values of every instrument, keyed by name.

        Counters and gauges map to their value; histograms to their
        :meth:`~Histogram.summary` dict.  Key order is sorted, so the
        snapshot serializes deterministically.
        """
        out: dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.summary()
            else:
                out[name] = instrument.value
        return out
