"""Structured tracing: typed span/event records of one pipeline run.

The engine and the adaptive core are instrumented with *trace hooks*: at
every interesting state change (element admitted, buffer push/release,
frontier advance, window open/close/flush/retire, adaptation round,
sanitizer finding) they call a method on their attached :class:`Tracer`.
Two implementations exist:

* :class:`NullTracer` — the default.  Every hook is a no-op and
  ``enabled`` is ``False``, so instrumented hot paths pay exactly one
  attribute check (``if tracer.enabled:``) when tracing is off.  The
  measured cost is below 5% on the naive-window benchmark (see
  ``docs/OBSERVABILITY.md``).
* :class:`TraceRecorder` — an in-memory recorder producing a list of
  :class:`TraceEvent` records keyed by **simulated time** (the arrival
  timestamp of the element in flight) *and* **wall time** (seconds since
  the recorder was created).

Records are exported with :mod:`repro.obs.export` (JSONL and Chrome
``trace_event`` for Perfetto) and summarized with :mod:`repro.obs.report`.

The recorder stays out of the engine's simulated-time discipline on
purpose: wall-clock reads happen *here*, never in ``repro.engine`` /
``repro.core`` (repro-lint rule R01), and trace content never feeds back
into results — a traced run emits bit-identical window results to an
untraced one (property-tested in ``tests/property/test_trace_equivalence.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

#: Every record kind a recorder can emit, with the fields it carries.
#: This is the trace schema; ``docs/OBSERVABILITY.md`` documents each kind.
EVENT_KINDS = (
    "run.start",  # handler, n_elements, batch_size, sanitize
    "run.end",  # n_results, wall_time_s
    "chunk",  # count (batched runs: one per processed chunk)
    "element.admitted",  # event_time, key (detail mode only)
    "buffer.push",  # count, buffered
    "buffer.release",  # count, buffered
    "buffer.flush",  # count
    "frontier.advance",  # frontier, buffered
    "window.open",  # key, start, end
    "window.close",  # key, start, end, value, count, latency
    "window.flush",  # key, start, end, value, count, latency
    "window.retire",  # key, start, end, emitted, corrected, error, late_updates
    "late.drop",  # key, event_time, window_end
    "tree.patch",  # slice_index, depth (partial-aggregate path invalidated)
    "tree.assemble",  # key, end, nodes (cached partials combined per window)
    "shard.ingest",  # shard, count (elements routed to one shard)
    "shard.dispatch",  # shard, chunk, count, bytes (one encoded chunk shipped)
    "shard.collect",  # shard, results, events, chunks (one partial run joined)
    "shard.merge",  # key, start, end, shards, value, count (merged window)
    "adaptation",  # k_before, k_after, k_estimate, allowed_late_fraction,
    #               error_ewma, gain, residual, target
    "sanitizer.finding",  # check, message
    "numeric.drift",  # aggregate, discipline, value, reference, rel_drift,
    #                   ulp, exact (NumSan shadow-execution drift per window)
    "meta",  # free-form run metadata
)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One structured trace record.

    Attributes:
        kind: Record kind; one of :data:`EVENT_KINDS`.
        sim_time: Simulated-time stamp in seconds.  For most kinds this is
            the arrival-time processing clock; buffer records are stamped
            with the event-time threshold of the release (the handler
            frontier) because the buffer sits below the arrival clock.
            Non-finite before the first element (``-inf`` frontier).
        wall_time: Wall-clock seconds since the recorder's creation
            (``time.perf_counter`` based); strictly nondecreasing within
            one recorder.
        fields: Kind-specific payload (see :data:`EVENT_KINDS`).
    """

    __concurrency__ = "immutable"

    kind: str
    sim_time: float
    wall_time: float
    fields: dict[str, object]


class Tracer:
    """No-op tracing interface; the base of every recorder.

    Engine call sites guard every hook with ``if tracer.enabled:`` so the
    off state costs one attribute check; the hooks themselves are also
    no-ops, so an unguarded call is merely slow, never wrong.

    Attributes:
        enabled: ``False`` on the null tracer, ``True`` on recorders.
        detail: When ``True``, recorders also keep per-element records
            (``element.admitted``, per-push buffer records); off by
            default because they dominate trace size.
    """

    __concurrency__ = "immutable"

    enabled: bool = False
    detail: bool = False

    def run_start(
        self,
        sim_time: float,
        handler: str,
        n_elements: int,
        batch_size: int,
        sanitize: bool,
    ) -> None:
        """Pipeline began consuming a stream."""

    def run_end(self, sim_time: float, n_results: int, wall_time_s: float) -> None:
        """Pipeline finished (after the final flush)."""

    def chunk(self, sim_time: float, count: int) -> None:
        """Batched pipeline processed one chunk of ``count`` elements."""

    def element_admitted(self, sim_time: float, event_time: float, key: object) -> None:
        """One element entered the operator (detail mode only)."""

    def buffer_push(self, sim_time: float, count: int, buffered: int) -> None:
        """``count`` element(s) pushed into a sorting buffer."""

    def buffer_release(self, sim_time: float, count: int, buffered: int) -> None:
        """``count`` element(s) released from a sorting buffer."""

    def buffer_flush(self, sim_time: float, count: int) -> None:
        """Stream end drained ``count`` element(s) out of a buffer."""

    def frontier_advance(self, sim_time: float, frontier: float, buffered: int) -> None:
        """The handler's event-time frontier moved (or was re-observed)."""

    def window_open(self, sim_time: float, key: object, start: float, end: float) -> None:
        """A window slot got its first on-time element."""

    def window_close(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        value: object,
        count: int,
        latency: float,
        flushed: bool,
    ) -> None:
        """A window was finalized and its result emitted."""

    def window_retire(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        emitted: object,
        corrected: object,
        error: float,
        late_updates: int,
    ) -> None:
        """A closed window left the feedback horizon; its observed error."""

    def late_drop(
        self, sim_time: float, key: object, event_time: float, window_end: float
    ) -> None:
        """An element arrived after its window closed and was dropped."""

    def tree_patch(self, sim_time: float, slice_index: int, depth: int) -> None:
        """A touched slice dirty-marked ``depth`` cached ancestors."""

    def tree_assemble(
        self, sim_time: float, key: object, end: float, nodes: int
    ) -> None:
        """A window was assembled from ``nodes`` cached partials."""

    def shard_ingest(self, sim_time: float, shard: int, count: int) -> None:
        """``count`` elements were routed to ``shard`` for execution."""

    def shard_dispatch(
        self, sim_time: float, shard: int, chunk: int, count: int, n_bytes: int
    ) -> None:
        """One encoded chunk of ``count`` elements was shipped to ``shard``."""

    def shard_collect(
        self, sim_time: float, shard: int, results: int, events: int, chunks: int
    ) -> None:
        """One shard's partial run was collected back from its worker."""

    def absorb(self, events: list["TraceEvent"]) -> None:
        """Merge events recorded by another (worker-side) recorder.

        No-op on the null tracer.  Recorders re-timestamp the absorbed
        events into their own wall clock (see
        :meth:`TraceRecorder.absorb`); simulated-time stamps are shared
        by construction and pass through unchanged.
        """

    def shard_merge(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        shards: int,
        value: float,
        count: int,
    ) -> None:
        """The merge stage combined ``shards`` partial(s) into one window."""

    def adaptation(
        self,
        sim_time: float,
        k_before: float,
        k_after: float,
        k_estimate: float,
        allowed_late_fraction: float,
        error_ewma: float | None,
        gain: float | None,
        residual: float | None,
        target: str,
    ) -> None:
        """One adaptation round of the quality-driven controller."""

    def sanitizer_finding(self, sim_time: float, check: str, message: str) -> None:
        """A StreamSan checker is about to raise ``SanitizerError``."""

    def numeric_drift(
        self,
        sim_time: float,
        aggregate: str,
        discipline: str,
        value: float,
        reference: float,
        rel_drift: float,
        ulp: float,
        exact: bool,
    ) -> None:
        """NumSan compared one window result against its reference."""

    def meta(self, sim_time: float, **fields: object) -> None:
        """Attach free-form metadata to the trace."""


class NullTracer(Tracer):
    """The default tracer: records nothing, costs one attribute check."""


#: Shared default instance; engine classes point at this when no recorder
#: is attached, so ``tracer.enabled`` is always a valid (False) check.
NULL_TRACER = NullTracer()


class TraceRecorder(Tracer):
    """In-memory recorder of :class:`TraceEvent` records.

    Args:
        detail: Also record per-element events (``element.admitted`` and
            per-push buffer records).  Default off: detail records grow
            linearly with the stream and are only needed for fine-grained
            debugging.
        max_events: Hard cap on retained records.  Once reached, further
            records are counted in :attr:`dropped` instead of stored, so a
            runaway trace degrades instead of exhausting memory.

    The recorder deduplicates ``frontier.advance`` records: only actual
    advances are stored (the frontier is re-observed on every offer, which
    would otherwise dominate the trace).
    """

    __concurrency__ = "single-thread"

    enabled = True

    def __init__(self, detail: bool = False, max_events: int = 1_000_000) -> None:
        self.detail = detail
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._last_frontier = float("-inf")
        self._epoch = time.perf_counter()

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, *kinds: str) -> Iterator[TraceEvent]:
        """Iterate recorded events of the given kind(s), in record order."""
        wanted = set(kinds)
        return (event for event in self.events if event.kind in wanted)

    def clear(self) -> None:
        """Drop all recorded events (the wall-time epoch is kept)."""
        self.events.clear()
        self.dropped = 0
        self._last_frontier = float("-inf")

    # ------------------------------------------------------------------ #
    # recording

    def _emit(self, kind: str, sim_time: float, fields: dict[str, object]) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(
                kind=kind,
                sim_time=sim_time,
                wall_time=time.perf_counter() - self._epoch,
                fields=fields,
            )
        )

    def run_start(
        self,
        sim_time: float,
        handler: str,
        n_elements: int,
        batch_size: int,
        sanitize: bool,
    ) -> None:
        """Record the run header."""
        self._emit(
            "run.start",
            sim_time,
            {
                "handler": handler,
                "n_elements": n_elements,
                "batch_size": batch_size,
                "sanitize": sanitize,
            },
        )

    def run_end(self, sim_time: float, n_results: int, wall_time_s: float) -> None:
        """Record the run footer."""
        self._emit(
            "run.end",
            sim_time,
            {"n_results": n_results, "wall_time_s": wall_time_s},
        )

    def chunk(self, sim_time: float, count: int) -> None:
        """Record one processed chunk of a batched run."""
        self._emit("chunk", sim_time, {"count": count})

    def element_admitted(self, sim_time: float, event_time: float, key: object) -> None:
        """Record one admitted element (only in detail mode)."""
        if self.detail:
            self._emit(
                "element.admitted", sim_time, {"event_time": event_time, "key": key}
            )

    def buffer_push(self, sim_time: float, count: int, buffered: int) -> None:
        """Record a buffer push (single pushes only in detail mode)."""
        if count > 1 or self.detail:
            self._emit("buffer.push", sim_time, {"count": count, "buffered": buffered})

    def buffer_release(self, sim_time: float, count: int, buffered: int) -> None:
        """Record a buffer release."""
        self._emit("buffer.release", sim_time, {"count": count, "buffered": buffered})

    def buffer_flush(self, sim_time: float, count: int) -> None:
        """Record the end-of-stream buffer drain."""
        self._emit("buffer.flush", sim_time, {"count": count})

    def frontier_advance(self, sim_time: float, frontier: float, buffered: int) -> None:
        """Record a frontier advance (deduplicated against the last one)."""
        if frontier > self._last_frontier:
            self._last_frontier = frontier
            self._emit(
                "frontier.advance",
                sim_time,
                {"frontier": frontier, "buffered": buffered},
            )

    def window_open(self, sim_time: float, key: object, start: float, end: float) -> None:
        """Record a window opening."""
        self._emit("window.open", sim_time, {"key": key, "start": start, "end": end})

    def window_close(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        value: object,
        count: int,
        latency: float,
        flushed: bool,
    ) -> None:
        """Record a window close (``window.flush`` when force-closed)."""
        self._emit(
            "window.flush" if flushed else "window.close",
            sim_time,
            {
                "key": key,
                "start": start,
                "end": end,
                "value": value,
                "count": count,
                "latency": latency,
            },
        )

    def window_retire(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        emitted: object,
        corrected: object,
        error: float,
        late_updates: int,
    ) -> None:
        """Record a window retirement with its observed error."""
        self._emit(
            "window.retire",
            sim_time,
            {
                "key": key,
                "start": start,
                "end": end,
                "emitted": emitted,
                "corrected": corrected,
                "error": error,
                "late_updates": late_updates,
            },
        )

    def late_drop(
        self, sim_time: float, key: object, event_time: float, window_end: float
    ) -> None:
        """Record a dropped late element."""
        self._emit(
            "late.drop",
            sim_time,
            {"key": key, "event_time": event_time, "window_end": window_end},
        )

    def tree_patch(self, sim_time: float, slice_index: int, depth: int) -> None:
        """Record one dirty-path patch of the partial-aggregate tree."""
        self._emit("tree.patch", sim_time, {"slice_index": slice_index, "depth": depth})

    def tree_assemble(
        self, sim_time: float, key: object, end: float, nodes: int
    ) -> None:
        """Record one window assembly from cached partials (detail mode)."""
        if self.detail:
            self._emit("tree.assemble", sim_time, {"key": key, "end": end, "nodes": nodes})

    def shard_ingest(self, sim_time: float, shard: int, count: int) -> None:
        """Record one shard's routed-element count at stream end."""
        self._emit("shard.ingest", sim_time, {"shard": shard, "count": count})

    def shard_dispatch(
        self, sim_time: float, shard: int, chunk: int, count: int, n_bytes: int
    ) -> None:
        """Record one encoded chunk shipped to a shard worker."""
        self._emit(
            "shard.dispatch",
            sim_time,
            {"shard": shard, "chunk": chunk, "count": count, "bytes": n_bytes},
        )

    def shard_collect(
        self, sim_time: float, shard: int, results: int, events: int, chunks: int
    ) -> None:
        """Record one shard's partial run joining the coordinator."""
        self._emit(
            "shard.collect",
            sim_time,
            {"shard": shard, "results": results, "events": events, "chunks": chunks},
        )

    def absorb(self, events: list[TraceEvent]) -> None:
        """Merge worker-recorded events, re-timestamped into this clock.

        Worker recorders measure wall time against their own process
        epoch, which is meaningless in the coordinator.  Absorbing shifts
        every event by one constant so the *newest* absorbed event lands
        at the coordinator's current wall offset — relative spacing
        within the worker trace is preserved, and absorbed events can
        never appear to come from the future.  Events beyond
        ``max_events`` are counted in :attr:`dropped`, like native ones.
        """
        if not events:
            return
        now = time.perf_counter() - self._epoch
        shift = now - max(event.wall_time for event in events)
        for index, event in enumerate(events):
            if len(self.events) >= self.max_events:
                self.dropped += len(events) - index
                return
            self.events.append(
                TraceEvent(
                    kind=event.kind,
                    sim_time=event.sim_time,
                    wall_time=event.wall_time + shift,
                    fields=dict(event.fields),
                )
            )

    def shard_merge(
        self,
        sim_time: float,
        key: object,
        start: float,
        end: float,
        shards: int,
        value: float,
        count: int,
    ) -> None:
        """Record one merged window and how many shards contributed."""
        self._emit(
            "shard.merge",
            sim_time,
            {
                "key": key,
                "start": start,
                "end": end,
                "shards": shards,
                "value": value,
                "count": count,
            },
        )

    def adaptation(
        self,
        sim_time: float,
        k_before: float,
        k_after: float,
        k_estimate: float,
        allowed_late_fraction: float,
        error_ewma: float | None,
        gain: float | None,
        residual: float | None,
        target: str,
    ) -> None:
        """Record one adaptation round with its feedback terms."""
        self._emit(
            "adaptation",
            sim_time,
            {
                "k_before": k_before,
                "k_after": k_after,
                "k_estimate": k_estimate,
                "allowed_late_fraction": allowed_late_fraction,
                "error_ewma": error_ewma,
                "gain": gain,
                "residual": residual,
                "target": target,
            },
        )

    def sanitizer_finding(self, sim_time: float, check: str, message: str) -> None:
        """Record a StreamSan finding just before it raises."""
        self._emit("sanitizer.finding", sim_time, {"check": check, "message": message})

    def numeric_drift(
        self,
        sim_time: float,
        aggregate: str,
        discipline: str,
        value: float,
        reference: float,
        rel_drift: float,
        ulp: float,
        exact: bool,
    ) -> None:
        """Record one NumSan window comparison (detail mode only).

        Drift records are per checked window and would dominate the trace
        like ``element.admitted`` does; the NumSan report aggregates the
        maxima regardless of the tracer."""
        if self.detail:
            self._emit(
                "numeric.drift",
                sim_time,
                {
                    "aggregate": aggregate,
                    "discipline": discipline,
                    "value": value,
                    "reference": reference,
                    "rel_drift": rel_drift,
                    "ulp": ulp,
                    "exact": exact,
                },
            )

    def meta(self, sim_time: float, **fields: object) -> None:
        """Record free-form metadata."""
        self._emit("meta", sim_time, dict(fields))
