"""Structured observability: tracing, metrics registry, trace export.

The third leg of the production-readiness stool (after the batched
execution layer and the static-analysis suite): a window into *why* a run
behaved as it did — adaptation rounds, frontier stalls, buffer growth,
burst response.  Three pieces:

* :mod:`repro.obs.trace` — :class:`TraceRecorder` collects typed
  span/event records from hooks threaded through the engine and the
  adaptive core; the default :data:`NULL_TRACER` keeps the hot path at
  one attribute check when tracing is off.
* :mod:`repro.obs.registry` — :class:`MetricsRegistry` holds named
  counters/gauges/histograms; :class:`~repro.engine.metrics.RunMetrics`
  is a live view over one.
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — JSONL and Chrome
  ``trace_event`` (Perfetto) exporters plus a terminal summarizer,
  also available as ``python -m repro.obs``.

See ``docs/OBSERVABILITY.md`` for the trace schema, the Perfetto
walkthrough and measured overhead numbers.
"""

from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsRegistry,
)
from repro.obs.report import (
    frontier_stalls,
    infer_theta,
    summarize,
    theta_violations,
)
from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceRecorder,
)

__all__ = [
    "Counter",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "Instrument",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "TraceRecorder",
    "Tracer",
    "chrome_trace",
    "frontier_stalls",
    "infer_theta",
    "read_jsonl",
    "summarize",
    "theta_violations",
    "write_chrome_trace",
    "write_jsonl",
]
