"""Terminal trace summaries: stalls, adaptation history, θ violations.

:func:`summarize` turns a recorded (or reloaded) trace into the report
printed by ``python -m repro.obs report``: the run header, the largest
frontier stalls, the adaptation history of the quality-driven controller
and the retired windows whose observed error exceeded the quality target
θ.  The θ used for the violation section is taken from ``--theta`` when
given, else parsed from the adaptation records' target label.
"""

from __future__ import annotations

import math
import re
from collections import Counter as TallyCounter
from typing import Any

from repro.obs.trace import TraceEvent

#: Adaptation records label quality targets ``error<=0.05`` (see
#: ``repro.core.spec``); the report recovers θ from that label.
_THETA_PATTERN = re.compile(r"error<=([0-9.eE+-]+)")


def _fmt(value: Any, precision: int = 4) -> str:
    """Compact numeric formatting with non-numeric fallthrough."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "nan"
    return f"{value:.{precision}g}"


def infer_theta(events: list[TraceEvent]) -> float | None:
    """Quality target θ recovered from adaptation target labels, if any."""
    for event in events:
        if event.kind != "adaptation":
            continue
        target = event.fields.get("target")
        if isinstance(target, str):
            match = _THETA_PATTERN.search(target)
            if match:
                try:
                    return float(match.group(1))
                except ValueError:  # pragma: no cover - regex admits floats
                    return None
    return None


def frontier_stalls(
    events: list[TraceEvent], top: int = 5
) -> list[tuple[float, float, float]]:
    """The ``top`` largest gaps between consecutive frontier advances.

    Returns ``(stall_seconds, from_sim_time, to_sim_time)`` rows sorted by
    stall length, longest first.  A stall is simulated time during which
    elements kept arriving but the frontier did not move — the intervals a
    latency investigation should look at first.
    """
    advances = [
        event
        for event in events
        if event.kind == "frontier.advance" and math.isfinite(event.sim_time)
    ]
    gaps: list[tuple[float, float, float]] = []
    for before, after in zip(advances, advances[1:]):
        gap = after.sim_time - before.sim_time
        if gap > 0:
            gaps.append((gap, before.sim_time, after.sim_time))
    gaps.sort(key=lambda row: -row[0])
    return gaps[:top]


def theta_violations(
    events: list[TraceEvent], theta: float
) -> list[TraceEvent]:
    """Retired windows whose observed error exceeded ``theta``."""
    violations: list[TraceEvent] = []
    for event in events:
        if event.kind != "window.retire":
            continue
        error = event.fields.get("error")
        if isinstance(error, (int, float)) and error > theta:
            violations.append(event)
    return violations


def summarize(
    events: list[TraceEvent],
    theta: float | None = None,
    top_stalls: int = 5,
    max_rows: int = 20,
) -> str:
    """Render the terminal report for a recorded trace.

    Args:
        events: Trace events (from a recorder or :func:`~repro.obs.export.read_jsonl`).
        theta: Quality target for the violation section; when ``None`` it
            is recovered from the adaptation records, and the section is
            skipped if no target can be found.
        top_stalls: Number of frontier stalls to show.
        max_rows: Cap on table rows per section (the totals always cover
            the full trace).
    """
    lines: list[str] = []
    tally = TallyCounter(event.kind for event in events)

    lines.append("== run ==")
    for event in events:
        if event.kind == "run.start":
            fields = event.fields
            lines.append(
                f"handler={fields.get('handler')}  "
                f"elements={fields.get('n_elements')}  "
                f"batch_size={fields.get('batch_size')}  "
                f"sanitize={fields.get('sanitize')}"
            )
            break
    for event in reversed(events):
        if event.kind == "run.end":
            fields = event.fields
            lines.append(
                f"results={fields.get('n_results')}  "
                f"wall_time={_fmt(fields.get('wall_time_s'))}s"
            )
            break
    lines.append(
        "events: "
        + "  ".join(f"{kind}={count}" for kind, count in sorted(tally.items()))
    )

    stalls = frontier_stalls(events, top=top_stalls)
    lines.append("")
    lines.append(f"== top frontier stalls (longest {top_stalls}) ==")
    if stalls:
        for gap, start, stop in stalls:
            lines.append(
                f"  {_fmt(gap)}s stalled  (t={_fmt(start)} .. {_fmt(stop)})"
            )
    else:
        lines.append("  (no frontier advances recorded)")

    adaptations = [event for event in events if event.kind == "adaptation"]
    lines.append("")
    lines.append(f"== adaptation history ({len(adaptations)} rounds) ==")
    if adaptations:
        lines.append(
            "  t          K before   K after    estimate   p_late     "
            "err_ewma   gain"
        )
        shown: list[TraceEvent | None]
        if len(adaptations) > max_rows:
            # Head and tail: the cold start and the (most interesting)
            # recent rounds, with the middle elided.
            head = adaptations[: max_rows // 2]
            tail = adaptations[-(max_rows - len(head)) :]
            shown = [*head, None, *tail]
        else:
            shown = [*adaptations]
        for event in shown:
            if event is None:
                lines.append(
                    f"  ... {len(adaptations) - max_rows} rounds elided ..."
                )
                continue
            fields = event.fields
            cells = "  ".join(
                _fmt(fields.get(name)).ljust(9)
                for name in (
                    "k_before",
                    "k_after",
                    "k_estimate",
                    "allowed_late_fraction",
                    "error_ewma",
                    "gain",
                )
            )
            lines.append(f"  {_fmt(event.sim_time).ljust(9)}  {cells}")
    else:
        lines.append("  (no adaptation rounds recorded)")

    if theta is None:
        theta = infer_theta(events)
    lines.append("")
    if theta is None:
        lines.append("== theta violations ==")
        lines.append("  (no quality target found; pass --theta)")
    else:
        violations = theta_violations(events, theta)
        retired = tally.get("window.retire", 0)
        lines.append(
            f"== theta violations (error > {_fmt(theta)}; "
            f"{len(violations)} of {retired} retired windows) =="
        )
        for event in violations[:max_rows]:
            fields = event.fields
            lines.append(
                f"  window [{_fmt(fields.get('start'))}, "
                f"{_fmt(fields.get('end'))})  key={fields.get('key')!r}  "
                f"emitted={_fmt(fields.get('emitted'))}  "
                f"corrected={_fmt(fields.get('corrected'))}  "
                f"error={_fmt(fields.get('error'))}  "
                f"late_updates={fields.get('late_updates')}"
            )
        if len(violations) > max_rows:
            lines.append(f"  ... {len(violations) - max_rows} more violations")
    return "\n".join(lines)
