"""A traced E4-style burst run, for demos, docs and the CI trace artifact.

:func:`burst_demo_run` reproduces the calm → burst → calm delay workload
of experiment E4 at reduced scale, runs the quality-driven AQ-K handler
over it with a :class:`~repro.obs.trace.TraceRecorder` attached, and
returns both the pipeline output and the recorder.  It is what
``python -m repro.obs demo`` exports and what the acceptance tests load
into the Chrome-trace validator: a burst run exercises every record kind
the schema defines (adaptations chasing the delay regime, buffer growth,
frontier stalls, late drops, θ violations on retirement).
"""

from __future__ import annotations

import numpy as np

from repro.core.aqk import AQKSlackHandler
from repro.core.spec import QualityTarget
from repro.engine.aggregate_op import WindowAggregateOperator
from repro.engine.aggregates import make_aggregate
from repro.engine.pipeline import RunOutput, run_pipeline
from repro.engine.windows import SlidingWindowAssigner
from repro.obs.trace import TraceRecorder
from repro.streams.delay import BurstyDelay, ExponentialDelay
from repro.streams.disorder import inject_disorder
from repro.streams.generators import generate_stream


def burst_demo_run(
    duration: float = 120.0,
    rate: float = 50.0,
    theta: float = 0.05,
    seed: int = 7,
    batch_size: int = 256,
    detail: bool = False,
) -> tuple[RunOutput, TraceRecorder]:
    """Run the E4-style burst workload with tracing on.

    Args:
        duration: Event-time span in seconds; the delay burst covers the
            middle third (mean delay 0.1s → 3s → 0.1s), so the adaptive
            slack has to climb and decay within the trace.
        rate: Events per second.
        theta: Mean-relative-error quality target of the AQ-K handler.
        seed: Stream seed — the run is deterministic given the arguments.
        batch_size: Pipeline chunk size (the batched path also exercises
            ``chunk`` records); pass 0 for the scalar path.
        detail: Record per-element events too (large traces).

    Returns:
        ``(output, recorder)`` — the finished :class:`RunOutput` and the
        :class:`TraceRecorder` holding the run's events.

    The query is E4's: ``count`` over 10s sliding windows every 2s — the
    count error model maps θ directly to an allowed late fraction, so the
    applied slack visibly tracks the delay quantile through the burst.
    """
    rng = np.random.default_rng(seed)
    stream = inject_disorder(
        generate_stream(duration=duration, rate=rate, rng=rng),
        BurstyDelay(
            calm=ExponentialDelay(0.1),
            burst=ExponentialDelay(3.0),
            burst_start=duration / 3,
            burst_end=2 * duration / 3,
        ),
        rng,
    )
    aggregate = make_aggregate("count")
    handler = AQKSlackHandler(
        target=QualityTarget(theta),
        aggregate=aggregate,
        window_size=10.0,
    )
    operator = WindowAggregateOperator(
        assigner=SlidingWindowAssigner(size=10.0, slide=2.0),
        aggregate=aggregate,
        handler=handler,
    )
    recorder = TraceRecorder(detail=detail)
    output = run_pipeline(
        stream, operator, batch_size=batch_size, trace=recorder
    )
    return output, recorder
