# Developer conveniences; the only hard dependency is a Python environment
# with numpy, pytest, pytest-benchmark and hypothesis installed.

PY ?= python

.PHONY: install test lint lint-sarif baseline sanitize race-stress numcheck typecheck docs docs-check linkcheck bench bench-quick experiments examples artifacts clean

# Editable install; --no-build-isolation keeps it working offline (the
# deprecated `setup.py develop` path is gone).
install:
	$(PY) -m pip install -e . --no-build-isolation

test:
	$(PY) -m pytest tests/

# Engine-specific invariant linter: syntactic rules R01-R05, the
# time-domain dataflow rules R06-R10, the concurrency rules R11-R15 and
# the float-soundness rules R16-R20 (see docs/ANALYSIS.md and
# docs/NUMERICS.md).  Applies analysis/baseline.json automatically when
# it exists.
lint:
	$(PY) -m repro.analysis.lint src/

# SARIF 2.1.0 report for code-scanning upload (CI does this on every run).
lint-sarif:
	$(PY) -m repro.analysis.lint --format sarif --output lint.sarif src/ || true

# Regenerate the grandfathered-findings baseline.  Run after deliberately
# accepting new debt or after paying existing debt down; CI fails on stale
# entries via `--check-baseline`.
baseline:
	$(PY) -m repro.analysis.lint --write-baseline src/

# StreamSan checker self-tests plus a sanitized end-to-end smoke run.
sanitize:
	$(PY) -m pytest tests/analysis/ -q
	$(PY) -c "import numpy as np; \
	from repro.engine.aggregate_op import WindowAggregateOperator; \
	from repro.engine.aggregates import make_aggregate; \
	from repro.engine.handlers import KSlackHandler; \
	from repro.engine.pipeline import run_pipeline; \
	from repro.engine.windows import SlidingWindowAssigner; \
	from repro.streams.delay import ExponentialDelay; \
	from repro.streams.disorder import inject_disorder; \
	from repro.streams.generators import generate_stream; \
	rng = np.random.default_rng(3); \
	stream = inject_disorder(generate_stream(duration=60, rate=100, rng=rng), ExponentialDelay(0.5), rng); \
	op = WindowAggregateOperator(SlidingWindowAssigner(size=4, slide=1), make_aggregate('mean'), KSlackHandler(1.0)); \
	out = run_pipeline(stream, op, batch_size=256, sanitize=True, sanitize_probe_every=4); \
	print('StreamSan smoke run clean:', len(out.results), 'results')"

# Deterministic concurrent stress harness against the shared slice store:
# guarded runs must match the single-threaded reference bit-for-bit with
# zero RaceSan findings, and the unguarded fixture must be caught
# (see docs/ANALYSIS.md, "Concurrency analysis").
race-stress:
	$(PY) -m repro.analysis.concur stress --threads 8 --seeds 0,1,2

# Numeric-safety gate: float-soundness lint (R16-R20, no baseline debt
# allowed), the annotation inventory, and a NumSan shadow-execution smoke
# run over the core aggregates (see docs/NUMERICS.md).
numcheck:
	$(PY) -m repro.analysis.lint --select R16-R20 src/
	$(PY) -m repro.analysis.numeric inventory
	$(PY) -m repro.analysis.numeric smoke

# mypy is optional tooling: strict-check the simulated-time core when the
# environment has it, skip gracefully when it does not.
typecheck:
	@if $(PY) -c "import mypy" 2>/dev/null; then \
		$(PY) -m mypy --strict src/repro/engine src/repro/core; \
	else \
		echo "mypy not installed; skipping (pip install -e '.[lint]')"; \
	fi

# Regenerate the auto-generated API reference (docs/API.md) from the
# source tree; `docs-check` is the CI staleness gate, `linkcheck`
# validates relative links and anchors across README.md and docs/*.md.
docs:
	$(PY) -m repro.docs

docs-check:
	$(PY) -m repro.docs --check

linkcheck:
	$(PY) -m repro.docs --check-links

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-quick:
	$(PY) -m repro.bench.quick --scale 0.1 --out BENCH_e18.json --out-e19 BENCH_e19.json --out-e20 BENCH_e20.json --out-e21 BENCH_e21.json

experiments:
	$(PY) -m repro.bench.experiments all

artifacts:
	$(PY) -m repro.cli experiment E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 \
	    E11 E12 E13 E14 E15 E16 E17 E18 E19 --out-dir results

examples:
	$(PY) examples/quickstart.py --duration 60
	$(PY) examples/financial_monitoring.py --duration 60
	$(PY) examples/sensor_outage.py --duration 120
	$(PY) examples/latency_budget_leaderboard.py --duration 60
	$(PY) examples/multi_gateway_operations.py --duration 60

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info
