# Developer conveniences; the only hard dependency is a Python environment
# with numpy, pytest, pytest-benchmark and hypothesis installed.

PY ?= python

.PHONY: install test bench bench-quick experiments examples artifacts clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

bench-quick:
	$(PY) -m repro.bench.quick --scale 0.1 --out BENCH_e18.json

experiments:
	$(PY) -m repro.bench.experiments all

artifacts:
	$(PY) -m repro.cli experiment E1 E2 E3 E4 E5 E6 E7 E8 E9 E10 \
	    E11 E12 E13 E14 E15 E16 E17 E18 --out-dir results

examples:
	$(PY) examples/quickstart.py --duration 60
	$(PY) examples/financial_monitoring.py --duration 60
	$(PY) examples/sensor_outage.py --duration 120
	$(PY) examples/latency_budget_leaderboard.py --duration 60
	$(PY) examples/multi_gateway_operations.py --duration 60

clean:
	rm -rf .pytest_cache .hypothesis build *.egg-info
