"""Numeric lint rules R16-R20, the inventory, and waiver/annotation typos."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import expand_rule_ids, run_lint
from repro.analysis.lint.__main__ import main as lint_main
from repro.analysis.lint.model import Project, SourceFile, discover_files
from repro.analysis.numeric.__main__ import main as numeric_main
from repro.analysis.numeric.sites import (
    NUMERIC_VALUES,
    build_inventory,
    inventory_for,
)
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures" / "numeric"
REPO_SRC = Path(__file__).parent.parent.parent / "src"


def findings_for(fixture: str, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([FIXTURES / fixture], select=[rule])


def project_for(fixture: str) -> Project:
    """A one-file project over a fixture, for direct inventory calls."""
    path = FIXTURES / fixture
    return Project([SourceFile.load(p) for p in discover_files([path])])


# --------------------------------------------------------------------- #
# numeric inventory (inheritance lineage)


def test_inventory_follows_imported_base_names():
    # The fixture never defines AggregateFunction; the raw base-name
    # string is enough to establish lineage.
    inventory = build_inventory(project_for("r16_bad.py"))
    assert "NaiveRunningSum" in inventory.classes
    record = inventory.classes["NaiveRunningSum"]
    assert record.via == "AggregateFunction"
    assert record.declared == "compensated"
    assert record.effective == "compensated"


def test_inventory_lineage_is_transitive():
    inventory = build_inventory(project_for("r19_bad.py"))
    # Grandchild -> UndeclaredAggregate -> AggregateFunction.
    assert "UndeclaredGrandchild" in inventory.classes
    assert inventory.classes["UndeclaredGrandchild"].via == "AggregateFunction"


def test_inventory_resolves_inherited_annotations():
    inventory = build_inventory(project_for("r19_good.py"))
    child = inventory.classes["InheritingChild"]
    assert child.declared is None
    assert child.effective == "exact"
    assert child.effective_origin == "AnnotatedBase"
    base = inventory.classes["AnnotatedBase"]
    assert base.effective == "exact"
    assert base.effective_origin == ""  # declared locally


def test_inventory_classifies_sites():
    inventory = build_inventory(project_for("r17_bad.py"))
    sites = inventory.classes["DriftingSlidingTotal"].sites
    assert any(site.kind == "retract" for site in sites)
    assert all(site.method == "evict" for site in sites)


def test_inventory_is_cached_per_project():
    project = project_for("r16_bad.py")
    assert inventory_for(project) is inventory_for(project)


def test_source_tree_inventory_is_fully_annotated():
    """Every numeric class in src/ resolves a valid rounding discipline."""
    files = [
        SourceFile.load(path, root=REPO_SRC)
        for path in discover_files([REPO_SRC])
    ]
    inventory = build_inventory(Project(files))
    assert len(inventory.classes) >= 30  # aggregates + estimators + trackers
    assert "SumAggregate" in inventory.classes
    unresolved = [
        name
        for name, record in inventory.classes.items()
        if record.effective not in NUMERIC_VALUES
    ]
    assert unresolved == []


# --------------------------------------------------------------------- #
# R16 — bare float folds in aggregate entry points


def test_r16_catches_bare_and_longhand_folds():
    findings = findings_for("r16_bad.py", "R16")
    assert {f.rule for f in findings} == {"R16"}
    assert len(findings) == 4
    messages = " ".join(f.message for f in findings)
    assert "bare fold" in messages
    assert "repro.core.numeric" in messages
    # Waived and exact-discipline classes never appear.
    assert "WaivedRunningSum" not in messages
    assert "ExactCounter" not in messages


def test_r16_flags_every_fold_entry_point():
    methods = sorted({f.message.split()[0] for f in findings_for("r16_bad.py", "R16")})
    assert methods == [
        "NaiveRunningSum.add",
        "NaiveRunningSum.add_many",
        "NaiveRunningSum.merge",
    ]


def test_r16_accepts_compensated_primitives():
    assert findings_for("r16_good.py", "R16") == []


# --------------------------------------------------------------------- #
# R17 — subtraction-based retraction


def test_r17_catches_subtractive_eviction():
    findings = findings_for("r17_bad.py", "R17")
    assert len(findings) == 2
    assert all("subtraction-based retraction" in f.message for f in findings)
    assert all("RetractableSum" in f.message for f in findings)


def test_r17_accepts_retractable_sum_and_waived_integers():
    assert findings_for("r17_good.py", "R17") == []


# --------------------------------------------------------------------- #
# R18 — equality on accumulated floats


def test_r18_catches_accumulated_equality():
    findings = findings_for("r18_bad.py", "R18")
    assert len(findings) == 4
    assert all("floats_close" in f.message for f in findings)
    lines = sorted(f.line for f in findings)
    assert len(set(lines)) == 4  # one finding per comparison site


def test_r18_accepts_floats_close_and_integer_comparisons():
    assert findings_for("r18_good.py", "R18") == []


# --------------------------------------------------------------------- #
# R19 — mandatory __numeric__ annotations


def test_r19_catches_every_undeclared_lineage_class():
    findings = findings_for("r19_bad.py", "R19")
    assert len(findings) == 3
    messages = " ".join(f.message for f in findings)
    assert "UndeclaredEstimator" in messages
    assert "UndeclaredAggregate" in messages
    assert "UndeclaredGrandchild" in messages
    assert "__numeric__" in messages


def test_r19_accepts_declared_and_inherited_annotations():
    assert findings_for("r19_good.py", "R19") == []


# --------------------------------------------------------------------- #
# R20 — mixed scalar/batched summation orders


def test_r20_catches_numpy_reductions_in_add_many():
    findings = findings_for("r20_bad.py", "R20")
    assert len(findings) == 2
    messages = sorted(f.message for f in findings)
    assert "np.sum()" in messages[1]  # SplitOrderSum
    assert "sum()" in messages[0]  # SplitOrderMoments (method-call form)
    assert all("Python order" in m for m in messages)
    joined = " ".join(messages)
    assert "FullyBatched" not in joined  # both sides numpy: no split
    assert "WaivedBatch" not in joined  # waiver concedes the shortcut


def test_r20_accepts_shared_primitive():
    assert findings_for("r20_good.py", "R20") == []


# --------------------------------------------------------------------- #
# selection plumbing


def test_rule_range_expands_to_numeric_block():
    assert expand_rule_ids("R16-R20") == ["R16", "R17", "R18", "R19", "R20"]


def test_source_tree_is_clean_under_numeric_rules():
    findings = run_lint([REPO_SRC], select=expand_rule_ids("R16-R20"))
    assert findings == []


# --------------------------------------------------------------------- #
# unknown __numeric__ values are hard errors (exit 2), not findings

# Written to tmp_path rather than the fixtures tree: the directory-wide
# fixture sweep in test_lint_rules.py must stay lintable, and an invalid
# annotation anywhere in the tree would abort the whole sweep.
INVALID_ANNOTATION = '''"""Fixture: a numeric class with a typo'd annotation."""


class TypoSum(AggregateFunction):
    """The value selects NumSan's drift budget; typos must not no-op."""

    __numeric__ = "compansated"
'''

NON_LITERAL_ANNOTATION = '''"""Fixture: a computed (non-literal) annotation."""

DISCIPLINE = "exact"


class ComputedSum(AggregateFunction):
    """Annotations must be auditable string literals."""

    __numeric__ = DISCIPLINE
'''


@pytest.fixture
def invalid_annotation_file(tmp_path):
    path = tmp_path / "typo_annotation.py"
    path.write_text(INVALID_ANNOTATION, encoding="utf-8")
    return path


def test_unknown_numeric_value_is_a_configuration_error(invalid_annotation_file):
    with pytest.raises(ConfigurationError, match=r"compansated"):
        run_lint([invalid_annotation_file])


def test_unknown_numeric_value_names_file_and_line(invalid_annotation_file):
    with pytest.raises(ConfigurationError, match=r"typo_annotation\.py:7"):
        run_lint([invalid_annotation_file])


def test_cli_exits_2_on_unknown_numeric_value(invalid_annotation_file, capsys):
    status = lint_main([str(invalid_annotation_file)])
    assert status == 2
    assert "compansated" in capsys.readouterr().err


def test_numeric_cli_exits_2_on_unknown_numeric_value(
    invalid_annotation_file, capsys
):
    status = numeric_main(["inventory", str(invalid_annotation_file)])
    assert status == 2
    assert "compansated" in capsys.readouterr().err


def test_non_literal_annotation_is_a_configuration_error(tmp_path):
    path = tmp_path / "computed_annotation.py"
    path.write_text(NON_LITERAL_ANNOTATION, encoding="utf-8")
    with pytest.raises(ConfigurationError, match="non-literal"):
        run_lint([path])


# --------------------------------------------------------------------- #
# unknown waiver values are hard errors too

# The waiver comment is assembled at runtime so this *test* file never
# contains the literal pattern in a real comment token.
WAIVER_PREFIX = "# repro: " + "numeric="

INVALID_WAIVER = (
    '"""Fixture: a waiver comment naming an unknown value."""\n'
    "\n"
    "\n"
    "class WaiverTypoSum(AggregateFunction):\n"
    '    """The waiver below is a typo and must hard-error, not no-op."""\n'
    "\n"
    '    __numeric__ = "compensated"\n'
    "\n"
    "    def add(self, acc, value):\n"
    '        """Fold with a bad waiver."""\n'
    f"        acc[0] += value  {WAIVER_PREFIX}reasoc - meant reassoc\n"
    "        return acc\n"
)


@pytest.fixture
def invalid_waiver_file(tmp_path):
    path = tmp_path / "waiver_typo.py"
    path.write_text(INVALID_WAIVER, encoding="utf-8")
    return path


def test_unknown_waiver_value_is_a_configuration_error(invalid_waiver_file):
    with pytest.raises(ConfigurationError, match=r"unknown numeric waiver"):
        run_lint([invalid_waiver_file])


def test_unknown_waiver_value_names_file_and_line(invalid_waiver_file):
    with pytest.raises(ConfigurationError, match=r"waiver_typo\.py:11"):
        run_lint([invalid_waiver_file])


def test_cli_exits_2_on_unknown_waiver_value(invalid_waiver_file, capsys):
    status = lint_main([str(invalid_waiver_file)])
    assert status == 2
    assert "reasoc" in capsys.readouterr().err


def test_docstring_mentions_of_waivers_do_not_error(tmp_path):
    # Only real comment tokens count: documenting the waiver syntax in a
    # docstring (as repro.analysis.numeric.rules itself does) is inert.
    path = tmp_path / "documented.py"
    path.write_text(
        f'"""Docs may spell `{WAIVER_PREFIX}anything` without erroring."""\n',
        encoding="utf-8",
    )
    assert run_lint([path]) == []


# --------------------------------------------------------------------- #
# CLI smoke


def test_inventory_cli_smoke(capsys):
    status = numeric_main(["inventory", "src"])
    out = capsys.readouterr().out
    assert status == 0
    assert "SumAggregate" in out
    assert "compensated" in out
    assert "inherited from" in out


def test_sites_cli_smoke(capsys):
    status = numeric_main(["sites", "src"])
    out = capsys.readouterr().out
    assert status == 0
    assert "site(s) across" in out
