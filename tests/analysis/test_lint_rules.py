"""Every repro-lint rule must catch its bad fixture and pass its good one."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.lint import render_json, render_text, run_lint
from repro.analysis.lint.__main__ import main as lint_main
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures"


def findings_for(fixture: str, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([FIXTURES / fixture], select=[rule])


# --------------------------------------------------------------------- #
# R01 — wall clock / nondeterminism


def test_r01_catches_wall_clock_and_global_rng():
    findings = findings_for("engine/r01_bad.py", "R01")
    assert len(findings) == 8
    assert {f.rule for f in findings} == {"R01"}
    messages = " ".join(f.message for f in findings)
    assert "wall-clock" in messages
    assert "default_rng" in messages
    assert "uuid.uuid4" in messages


def test_r01_allows_seeded_generators():
    assert findings_for("engine/r01_good.py", "R01") == []


def test_r01_only_applies_to_engine_scoped_paths():
    assert findings_for("r01_unscoped.py", "R01") == []


# --------------------------------------------------------------------- #
# R02 — scalar/batched parity


def test_r02_catches_parity_drift():
    findings = findings_for("r02_bad.py", "R02")
    assert {f.rule for f in findings} == {"R02"}
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any("BatchedOnlyHandler" in m and "without overriding" in m for m in messages)
    assert any("ScalarOverrideChild" in m and "specialized" in m for m in messages)


def test_r02_accepts_parity_preserving_classes():
    assert findings_for("r02_good.py", "R02") == []


def test_r02_covers_aggregate_functions():
    findings = findings_for("r02_agg_bad.py", "R02")
    assert {f.rule for f in findings} == {"R02"}
    messages = sorted(f.message for f in findings)
    assert len(findings) == 2
    assert any(
        "BatchedOnlySum" in m and "without overriding" in m for m in messages
    )
    assert any(
        "ScalarOverrideAggregate" in m and "specialized" in m for m in messages
    )


def test_r02_accepts_parity_preserving_aggregates():
    assert findings_for("r02_agg_good.py", "R02") == []


# --------------------------------------------------------------------- #
# R03 — float timestamp equality


def test_r03_catches_exact_time_equality():
    findings = findings_for("r03_bad.py", "R03")
    assert len(findings) == 3
    assert all("times_equal" in f.message for f in findings)


def test_r03_allows_ordering_sentinels_and_helper():
    assert findings_for("r03_good.py", "R03") == []


# --------------------------------------------------------------------- #
# R04 — frozen element mutation


def test_r04_catches_field_mutation():
    findings = findings_for("r04_bad.py", "R04")
    assert len(findings) == 4
    assert all("frozen" in f.message for f in findings)


def test_r04_allows_replace_and_class_body():
    assert findings_for("r04_good.py", "R04") == []


# --------------------------------------------------------------------- #
# R05 — RunMetrics registry


def test_r05_catches_misspelled_metrics_fields():
    findings = findings_for("r05_bad.py", "R05")
    assert len(findings) == 2
    attrs = {f.message.split(".")[1].split(" ")[0] for f in findings}
    assert attrs == {"wall_times_s", "n_element"}


def test_r05_allows_registered_fields():
    assert findings_for("r05_good.py", "R05") == []


# --------------------------------------------------------------------- #
# suppressions, selection, reporters, CLI


def test_inline_suppressions_are_honoured():
    assert run_lint([FIXTURES / "engine" / "suppressed.py"]) == []


def test_suppressions_can_be_ignored():
    findings = run_lint(
        [FIXTURES / "engine" / "suppressed.py"], honour_suppressions=False
    )
    assert len(findings) == 2


def test_unknown_rule_id_is_rejected():
    with pytest.raises(ConfigurationError, match="R99"):
        run_lint([FIXTURES], select=["R99"])


def test_text_reporter_format():
    findings = findings_for("r03_bad.py", "R03")
    text = render_text(findings)
    assert "r03_bad.py:" in text
    assert "R03" in text
    assert "3 finding(s)" in text
    assert render_text([]) == "repro-lint: clean"


def test_json_reporter_roundtrip():
    findings = findings_for("r04_bad.py", "R04")
    payload = json.loads(render_json(findings))
    assert payload["total"] == 4
    assert payload["counts"]["R04"] == 4
    assert all(item["rule"] == "R04" for item in payload["findings"])


def test_cli_exit_codes(capsys):
    assert lint_main([str(FIXTURES / "r03_bad.py")]) == 1
    assert lint_main([str(FIXTURES / "r03_good.py")]) == 0
    assert lint_main(["--list-rules"]) == 0
    assert lint_main(["--select", "R99", str(FIXTURES)]) == 2
    out = capsys.readouterr()
    assert "R01" in out.out


def test_fixture_directory_lints_with_findings_from_every_core_rule():
    findings = run_lint([FIXTURES])
    # The dataflow rules (R06-R10) may legitimately fire on these fixtures
    # too (they share the engine/ scoping); the core rules must all fire.
    assert {f.rule for f in findings} >= {"R01", "R02", "R03", "R04", "R05"}


def test_source_tree_is_lint_clean():
    # No baseline applied: src/ must be clean under the FULL rule catalog,
    # R06-R10 included.  Grandfathering new debt requires an explicit
    # analysis/baseline.json entry and a justification in the PR.
    repo_root = Path(__file__).resolve().parents[2]
    assert run_lint([repo_root / "src"]) == []
