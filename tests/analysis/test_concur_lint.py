"""Concurrency lint rules R11-R15, the inventory, and suppression typos."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.concur.inventory import build_inventory, inventory_for
from repro.analysis.lint import run_lint
from repro.analysis.lint.__main__ import main as lint_main
from repro.analysis.lint.model import Project, SourceFile, discover_files
from repro.errors import ConfigurationError

FIXTURES = Path(__file__).parent / "fixtures" / "concur"
REPO_SRC = Path(__file__).parent.parent.parent / "src"


def findings_for(fixture: str, rule: str):
    """Lint one fixture file with a single rule selected."""
    return run_lint([FIXTURES / fixture], select=[rule])


def project_for(fixture: str) -> Project:
    """A one-file project over a fixture, for direct inventory calls."""
    path = FIXTURES / fixture
    return Project([SourceFile.load(p) for p in discover_files([path])])


# --------------------------------------------------------------------- #
# shared-state inventory


def test_inventory_reaches_constructed_and_attribute_classes():
    inventory = build_inventory(project_for("r11_bad.py"))
    assert "SortingBuffer" in inventory.classes
    # Reached through a constructor call inside a method body.
    assert inventory.classes["FrozenSnapshot"].via == "SortingBuffer"
    # Reached through a ``self._stats = UnlockedStats()`` seed.
    assert inventory.classes["UnlockedStats"].via == "SortingBuffer"
    root = inventory.classes["SortingBuffer"]
    assert root.via == ""
    assert root.declared == "guarded"
    assert root.locks == {"_lock": "RLock"}
    assert "_heap" in root.attrs


def test_inventory_tracks_module_globals():
    inventory = build_inventory(project_for("r11_bad.py"))
    module = inventory.classes["SortingBuffer"].module
    assert "_HIGH_WATER" in inventory.module_globals(module)


def test_inventory_is_cached_per_project():
    project = project_for("r11_bad.py")
    assert inventory_for(project) is inventory_for(project)


def test_source_tree_inventory_is_fully_annotated():
    """Every shared class in src/ carries a valid ownership annotation."""
    files = [
        SourceFile.load(path, root=REPO_SRC)
        for path in discover_files([REPO_SRC])
    ]
    inventory = build_inventory(Project(files))
    assert len(inventory.classes) >= 20  # the shared layer is not tiny
    undeclared = [
        name
        for name, record in inventory.classes.items()
        if record.declared not in ("guarded", "single-thread", "immutable")
    ]
    assert undeclared == []


# --------------------------------------------------------------------- #
# R11 — mutation under lock


def test_r11_catches_unguarded_and_immutable_mutations():
    findings = findings_for("r11_bad.py", "R11")
    assert {f.rule for f in findings} == {"R11"}
    assert len(findings) == 5
    messages = " ".join(f.message for f in findings)
    assert "without holding self._lock" in messages
    assert "module global _HIGH_WATER" in messages
    assert "owns no threading.Lock/RLock" in messages
    assert 'annotated __concurrency__ = "immutable"' in messages


def test_r11_accepts_lock_disciplined_code():
    assert findings_for("r11_good.py", "R11") == []


# --------------------------------------------------------------------- #
# R12 — acquire discipline


def test_r12_catches_leaky_acquires():
    findings = findings_for("r12_bad.py", "R12")
    assert len(findings) == 2
    assert all("acquire() without" in f.message for f in findings)


def test_r12_accepts_with_and_try_finally():
    assert findings_for("r12_good.py", "R12") == []


# --------------------------------------------------------------------- #
# R13 — lock-order graph


def test_r13_catches_cycle_and_self_deadlock():
    findings = findings_for("r13_bad.py", "R13")
    assert len(findings) == 3
    messages = sorted(f.message for f in findings)
    assert sum("lock-order cycle" in m for m in messages) == 2
    assert sum("non-reentrant lock" in m for m in messages) == 1


def test_r13_accepts_consistent_order_and_rlock_reentry():
    assert findings_for("r13_good.py", "R13") == []


# --------------------------------------------------------------------- #
# R14 — ownership annotations


def test_r14_catches_missing_and_invalid_annotations():
    findings = findings_for("r14_bad.py", "R14")
    assert len(findings) == 2
    messages = sorted(f.message for f in findings)
    assert any("declares no __concurrency__" in m for m in messages)
    assert any("'thread-hostile'" in m for m in messages)


def test_r14_accepts_annotated_classes():
    assert findings_for("r14_good.py", "R14") == []


# --------------------------------------------------------------------- #
# R15 — blocking under lock


def test_r15_catches_sleep_and_io_under_lock():
    findings = findings_for("r15_bad.py", "R15")
    assert len(findings) == 2
    messages = " ".join(f.message for f in findings)
    assert "time.sleep()" in messages
    assert "open()" in messages


def test_r15_accepts_blocking_outside_the_lock():
    assert findings_for("r15_good.py", "R15") == []


# --------------------------------------------------------------------- #
# suppression typos are hard errors (not silent no-ops)

# Written to tmp_path rather than the fixtures tree: the directory-wide
# fixture sweep in test_lint_rules.py must stay lintable.
SUPPRESS_UNKNOWN = '''"""Fixture: a suppression comment naming an unknown rule id."""


def frontier_check(a, b):
    """The directive below is a typo and must hard-error, not no-op."""
    return a == b  # repro-lint: disable=R99 -- meant R03
'''


@pytest.fixture
def typo_file(tmp_path):
    path = tmp_path / "suppress_unknown.py"
    path.write_text(SUPPRESS_UNKNOWN, encoding="utf-8")
    return path


def test_unknown_suppression_id_is_a_configuration_error(typo_file):
    with pytest.raises(ConfigurationError, match=r"unknown rule id.*R99"):
        run_lint([typo_file])


def test_unknown_suppression_id_names_file_and_line(typo_file):
    with pytest.raises(ConfigurationError, match=r"suppress_unknown\.py:6"):
        run_lint([typo_file])


def test_cli_exits_2_on_unknown_suppression_id(typo_file, capsys):
    status = lint_main([str(typo_file)])
    assert status == 2
    assert "R99" in capsys.readouterr().err


def test_docstring_mentions_of_directives_do_not_error(tmp_path):
    # Only real comments count: documenting `disable=R99` in a docstring
    # (as the lint package itself does) must not trip the typo check.
    path = tmp_path / "documented.py"
    path.write_text(
        '"""Docs may say `# repro-lint: disable=R99` without erroring."""\n',
        encoding="utf-8",
    )
    assert run_lint([path]) == []


def test_known_suppression_ids_do_not_error():
    # The repo source uses real suppressions; linting src must not raise.
    findings = run_lint([REPO_SRC], select=["R11", "R12", "R13", "R14", "R15"])
    assert findings == []
