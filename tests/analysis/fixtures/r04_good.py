"""R04 negative fixture: immutable usage plus the element class itself."""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class StreamElement:
    """Field declarations inside the element class are not mutations."""

    event_time: float
    arrival_time: float | None = None
    seq: int = -1


def derive(element: StreamElement) -> StreamElement:
    """Derived elements are built, not mutated."""
    return replace(element, arrival_time=element.event_time + 1.0, seq=0)
