"""R02 fixture: scalar/batched parity violations on handler subclasses."""

from abc import ABC, abstractmethod


class DisorderHandler(ABC):
    """Stub of the engine ABC so the fixture set is self-contained."""

    @abstractmethod
    def offer(self, element):
        """Scalar entry point."""

    def offer_many(self, elements):
        """Generic loop over :meth:`offer` (safe to inherit)."""
        released = []
        for element in elements:
            released.extend(self.offer(element))
        return released, []


class SpecializedBase(DisorderHandler):
    """A concrete handler with its own bulk path (both methods, fine)."""

    def offer(self, element):
        """Release immediately."""
        return [element]

    def offer_many(self, elements):
        """Specialized bulk path replaying this class's scalar semantics."""
        return list(elements), [(i + 1, 0.0) for i in range(len(elements))]


class BatchedOnlyHandler(DisorderHandler):
    """VIOLATION: overrides the batched method but not the scalar one."""

    def offer_many(self, elements):
        """Bulk path with no matching scalar override."""
        return list(elements), []


class ScalarOverrideChild(SpecializedBase):
    """VIOLATION: scalar override inherits the ancestor's specialized bulk path."""

    def offer(self, element):
        """Changed scalar semantics the inherited offer_many never sees."""
        return []
