"""R03 fixture: exact float equality on timestamps."""


def compare(a, b, frontier: float, watermark: float) -> bool:
    """Every comparison below is a rounding accident waiting to happen."""
    same_event = a.event_time == b.event_time
    frontier_moved = frontier != watermark
    window_aligned = a.window.end == b.window.start
    return same_event or frontier_moved or window_aligned
