"""R05 fixture: misspelled RunMetrics attributes."""

from repro.engine.metrics import RunMetrics


def record(metrics: RunMetrics) -> None:
    """Typo on an annotated parameter."""
    metrics.wall_times_s = 1.0


def build() -> RunMetrics:
    """Typo on a locally constructed instance."""
    metrics = RunMetrics()
    metrics.n_element = 5
    return metrics
