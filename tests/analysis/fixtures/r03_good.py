"""R03 negative fixture: ordering predicates, sentinels, tolerance helper."""

import math

from repro.streams.timebase import times_equal


def compare(a, b, frontier: float) -> bool:
    """Allowed timestamp comparisons."""
    ordered = a.event_time <= b.event_time
    unset = frontier == float("-inf")
    never = frontier == math.inf
    missing = a.arrival_time is None
    close_enough = times_equal(a.event_time, b.event_time)
    return ordered or unset or never or missing or close_enough
