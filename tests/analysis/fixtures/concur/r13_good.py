"""R13 negative fixture: one global lock order, RLock re-entry."""

import threading


class OrderedLocks:
    """Both methods acquire alpha strictly before beta."""

    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def forward(self):
        """Alpha, then beta."""
        with self._alpha_lock:
            with self._beta_lock:
                pass

    def also_forward(self):
        """Same order everywhere — the graph stays acyclic."""
        with self._alpha_lock:
            with self._beta_lock:
                pass


class ReentrantHelper:
    """Helpers re-acquire the class RLock; re-entry is legal and cheap."""

    def __init__(self):
        self._lock = threading.RLock()
        self.count = 0

    def outer(self):
        """Calls a helper that re-enters the RLock."""
        with self._lock:
            self._bump()

    def _bump(self):
        """Acquires the RLock itself so it is safe from any caller."""
        with self._lock:
            self.count += 1
