"""R13 fixture: a lock-order cycle and a non-reentrant self-acquisition."""

import threading


class DeadlockProne:
    """Two methods acquire the same pair of locks in opposite orders."""

    def __init__(self):
        self._alpha_lock = threading.Lock()
        self._beta_lock = threading.Lock()

    def forward(self):
        """Orders alpha before beta."""
        with self._alpha_lock:
            with self._beta_lock:
                pass

    def backward(self):
        """BUG: orders beta before alpha — a cycle with forward()."""
        with self._beta_lock:
            with self._alpha_lock:
                pass


class SelfDeadlock:
    """Re-acquires a non-reentrant Lock it already holds."""

    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        """BUG: the nested acquire blocks forever on threading.Lock."""
        with self._lock:
            with self._lock:
                pass
