"""R11 negative fixture: the same shapes with the discipline respected."""

import threading

_HIGH_WATER = 0.0


class SortingBuffer:
    """Inventory root; every mutation sits inside the critical section."""

    __concurrency__ = "guarded"

    def __init__(self):
        self._lock = threading.RLock()
        self._heap = []
        self._released = 0

    def offer(self, element):
        """Mutations are guarded by the owning lock."""
        with self._lock:
            self._heap.append(element)
            self._released += 1

    def snapshot(self):
        """Reads under the lock, then hands out an immutable copy."""
        with self._lock:
            return FrozenSnapshot(len(self._heap))

    def high_water(self):
        """Reading a module global is fine; only writes are flagged."""
        return _HIGH_WATER


class FrozenSnapshot:
    """Immutable: construction only, derived values are new instances."""

    __concurrency__ = "immutable"

    def __init__(self, count):
        self.count = count

    def doubled(self):
        """No in-place mutation — returns a fresh snapshot."""
        return FrozenSnapshot(self.count * 2)
