"""R14 negative fixture: every inventoried class declares its ownership."""


class TraceRecorder:
    """Inventory root, externally serialized."""

    __concurrency__ = "single-thread"

    def __init__(self):
        self._events = []
        self._sink = EventSink()

    def record(self, event):
        """Buffers one event."""
        self._events.append(event)


class EventSink:
    """Reached from the recorder; never mutated after construction."""

    __concurrency__ = "immutable"

    def __init__(self):
        self.flushed = 0
