"""R15 fixture: sleeping and doing file I/O inside a critical section."""

import threading
import time


class Flusher:
    """Blocks every contending thread while it naps and writes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def drain(self, path):
        """BUG: sleep and open() both sit inside the with-lock block."""
        with self._lock:
            time.sleep(0.01)
            with open(path, "a", encoding="utf-8") as sink:
                sink.write(repr(self._pending))
            self._pending.clear()
