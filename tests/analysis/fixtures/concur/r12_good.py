"""R12 negative fixture: exception-safe acquisition patterns."""

import threading


class Worker:
    """Every acquire is paired with a guaranteed release."""

    def __init__(self):
        self._lock = threading.Lock()
        self._gate = threading.Semaphore()
        self.value = 0

    def safe_with(self):
        """The with statement releases on every exit path."""
        with self._lock:
            self.value = 1

    def safe_try(self):
        """Raw acquire is fine when a try/finally releases the same lock."""
        self._lock.acquire()
        try:
            self.value = 2
        finally:
            self._lock.release()

    def not_a_lock(self):
        """Semaphores are out of scope for the lock-name heuristic."""
        self._gate.acquire()
        self.value = 4
        self._gate.release()
