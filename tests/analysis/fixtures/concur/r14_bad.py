"""R14 fixture: missing and invalid ownership annotations."""


class TraceRecorder:
    """BUG: inventory root with no __concurrency__ annotation."""

    def __init__(self):
        self._events = []
        self._sink = EventSink()

    def record(self, event):
        """Buffers one event."""
        self._events.append(event)


class EventSink:
    """BUG: annotated, but with a value outside the ownership vocabulary."""

    __concurrency__ = "thread-hostile"

    def __init__(self):
        self.flushed = 0
