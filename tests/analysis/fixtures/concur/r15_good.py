"""R15 negative fixture: the blocking work happens outside the lock."""

import threading
import time


class Flusher:
    """Snapshots under the lock, blocks only after releasing it."""

    def __init__(self):
        self._lock = threading.Lock()
        self._pending = []

    def drain(self, path):
        """Copy-and-clear inside the lock; sleep and I/O outside."""
        with self._lock:
            batch = list(self._pending)
            self._pending.clear()
        time.sleep(0.01)
        with open(path, "a", encoding="utf-8") as sink:
            sink.write(repr(batch))
