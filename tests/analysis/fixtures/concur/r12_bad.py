"""R12 fixture: raw acquire() calls that can leak the lock."""

import threading


class Worker:
    """Acquires its lock without exception-safe release paths."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def unsafe(self):
        """BUG: an exception between acquire and release leaks the lock."""
        self._lock.acquire()
        self.value = 1
        self._lock.release()

    def leaky(self):
        """BUG: the try has a finally, but it never releases the lock."""
        self._lock.acquire()
        try:
            self.value = 2
        finally:
            self.value = 3
