"""R11 fixture: guarded/immutable/global mutations outside the discipline."""

import threading

_HIGH_WATER = 0.0


class SortingBuffer:
    """Inventory root; declared guarded, yet mutates outside its lock."""

    __concurrency__ = "guarded"

    def __init__(self):
        self._lock = threading.RLock()
        self._heap = []
        self._released = 0
        self._stats = UnlockedStats()

    def offer(self, element):
        """BUG: mutates guarded state without holding self._lock."""
        self._heap.append(element)
        self._released += 1

    def snapshot(self):
        """Correct critical section; also the edge to FrozenSnapshot."""
        with self._lock:
            return FrozenSnapshot(len(self._heap))

    def record_high_water(self, value):
        """BUG: reassigns an inventoried module global."""
        global _HIGH_WATER
        _HIGH_WATER = value


class UnlockedStats:
    """BUG: declared guarded but owns no Lock/RLock at all."""

    __concurrency__ = "guarded"

    def __init__(self):
        self.count = 0

    def inc(self):
        """Nothing to hold, so every mutation is unguardable."""
        self.count += 1


class FrozenSnapshot:
    """Declared immutable, yet mutates after construction."""

    __concurrency__ = "immutable"

    def __init__(self, count):
        self.count = count

    def bump(self):
        """BUG: immutable classes never change after __init__."""
        self.count += 1
