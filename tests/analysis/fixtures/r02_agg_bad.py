"""R02 fixture: scalar/batched parity violations on aggregate functions."""

from abc import ABC, abstractmethod


class AggregateFunction(ABC):
    """Stub of the engine ABC so the fixture set is self-contained."""

    @abstractmethod
    def add(self, accumulator, value):
        """Scalar entry point."""

    def add_many(self, accumulator, values):
        """Generic loop over :meth:`add` (safe to inherit)."""
        for value in values:
            accumulator = self.add(accumulator, value)
        return accumulator


class VectorizedBase(AggregateFunction):
    """A concrete aggregate with its own bulk fold (both methods, fine)."""

    def add(self, accumulator, value):
        """Scalar fold."""
        return accumulator + value

    def add_many(self, accumulator, values):
        """Vectorized fold replaying this class's scalar semantics."""
        return accumulator + sum(values)


class BatchedOnlySum(AggregateFunction):
    """VIOLATION: overrides the batched fold but not the scalar one."""

    def add_many(self, accumulator, values):
        """Bulk fold with no matching scalar override."""
        return accumulator + sum(values)


class ScalarOverrideAggregate(VectorizedBase):
    """VIOLATION: scalar override inherits the ancestor's specialized bulk fold."""

    def add(self, accumulator, value):
        """Changed scalar semantics the inherited add_many never sees."""
        return accumulator + value * value
