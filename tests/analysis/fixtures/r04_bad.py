"""R04 fixture: mutation of frozen stream-element fields."""


def mutate(element) -> None:
    """Every statement below mutates an identifying element field."""
    element.event_time = 3.0
    element.seq += 1
    element.arrival_time: float = 9.0
    del element.event_time
