"""Suppression fixture: violations silenced by inline directives."""

import time


def measured() -> float:
    """Wall-clock read justified for throughput measurement only."""
    start = time.perf_counter()  # repro-lint: disable=R01
    stop = time.perf_counter()  # repro-lint: disable=all
    return stop - start
