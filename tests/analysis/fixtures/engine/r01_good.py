"""R01 fixture (engine-scoped path): deterministic patterns, no findings."""

import numpy as np


def nice(rng: np.random.Generator, arrival_time: float) -> float:
    """Seeded/threaded randomness and simulated time are all allowed."""
    seeded = np.random.default_rng(42)
    local = np.random.Generator(np.random.PCG64(7))
    return float(rng.random()) + float(seeded.random()) + float(local.random()) + arrival_time
