"""R01 fixture (engine-scoped path): every statement below is a violation."""

import datetime
import random
import secrets
import time
import uuid

import numpy as np
from numpy.random import default_rng


def naughty() -> float:
    """Wall-clock reads and global RNG draws inside simulated-time code."""
    a = time.time()
    b = time.perf_counter()
    c = datetime.datetime.now()
    d = random.random()
    e = np.random.rand()
    f = default_rng()
    g = uuid.uuid4()
    h = secrets.token_hex(4)
    return a + b + c.timestamp() + d + e + float(f.random()) + len(str(g)) + len(h)
