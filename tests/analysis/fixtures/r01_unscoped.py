"""R01 negative fixture: same calls as r01_bad, but outside engine/core."""

import time


def allowed_here() -> float:
    """Wall-clock reads are fine outside the simulated-time core."""
    return time.time() + time.perf_counter()
