"""R02 negative fixture: parity-respecting handler subclasses."""

from abc import ABC, abstractmethod


class DisorderHandler(ABC):
    """Stub of the engine ABC so the fixture set is self-contained."""

    @abstractmethod
    def offer(self, element):
        """Scalar entry point."""

    def offer_many(self, elements):
        """Generic loop over :meth:`offer` (safe to inherit)."""
        released = []
        for element in elements:
            released.extend(self.offer(element))
        return released, []


class ScalarOnlyHandler(DisorderHandler):
    """Overrides only the scalar method; the inherited generic loop calls it."""

    def offer(self, element):
        """Release immediately."""
        return [element]


class ParityBase(DisorderHandler):
    """A concrete handler with its own bulk path."""

    def offer(self, element):
        """Release immediately."""
        return [element]

    def offer_many(self, elements):
        """Specialized bulk path."""
        return list(elements), [(i + 1, 0.0) for i in range(len(elements))]


class ParityChild(ParityBase):
    """Overrides both entry points together — parity preserved."""

    def offer(self, element):
        """Changed scalar semantics."""
        return []

    def offer_many(self, elements):
        """Matching bulk semantics."""
        return [], []
