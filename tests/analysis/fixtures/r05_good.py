"""R05 negative fixture: only registered RunMetrics fields are touched."""

from repro.engine.metrics import RunMetrics


def record(metrics: RunMetrics) -> float:
    """Registered fields, properties and list fields are all fine."""
    metrics.wall_time_s = 1.0
    metrics.n_elements = 10
    metrics.slack_timeline.clear()
    return metrics.throughput_eps
