"""R02 fixture: parity-preserving aggregate functions (no findings)."""

from abc import ABC, abstractmethod


class AggregateFunction(ABC):
    """Stub of the engine ABC so the fixture set is self-contained."""

    @abstractmethod
    def add(self, accumulator, value):
        """Scalar entry point."""

    def add_many(self, accumulator, values):
        """Generic loop over :meth:`add` (safe to inherit)."""
        for value in values:
            accumulator = self.add(accumulator, value)
        return accumulator


class ScalarOnlyCount(AggregateFunction):
    """Only the scalar fold: inheriting the abstract base's loop is safe."""

    def add(self, accumulator, value):
        """Count one element."""
        return accumulator + 1


class PairedSum(AggregateFunction):
    """Both folds evolve together."""

    def add(self, accumulator, value):
        """Scalar fold."""
        return accumulator + value

    def add_many(self, accumulator, values):
        """Vectorized fold, exactly equivalent to looping :meth:`add`."""
        return accumulator + sum(values)
