"""R20 fixture: scalar and batched twins share the compensated primitive."""

from repro.core.numeric import neumaier_add, neumaier_add_many


class SharedOrderSum(AggregateFunction):
    """Both entry points fold through repro.core.numeric — bit-identical."""

    __numeric__ = "compensated"

    def add(self, acc, value):
        """Scalar fold."""
        return neumaier_add(acc, value)

    def add_many(self, acc, values):
        """Batched fold: same element order, same compensation."""
        return neumaier_add_many(acc, values)
