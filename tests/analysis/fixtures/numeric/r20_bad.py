"""R20 fixture: scalar add and batched add_many with split summation orders."""

import numpy as np

from repro.core.numeric import neumaier_add


class SplitOrderSum(AggregateFunction):
    """BUG: add folds in Python order, add_many reduces pairwise."""

    __numeric__ = "compensated"

    def add(self, acc, value):
        """Scalar path: compensated left-to-right fold."""
        return neumaier_add(acc, value)

    def add_many(self, acc, values):
        """Batched path: numpy pairwise summation — different bits."""
        return acc + np.sum(values)  # R20: np.sum vs Python-order add


class SplitOrderMoments(AggregateFunction):
    """BUG: method-call spelling of the same split."""

    __numeric__ = "reassoc-tolerant"

    def add(self, acc, value):
        """Scalar path appends and folds in arrival order."""
        acc.append(value)
        return acc

    def add_many(self, acc, values):
        """Batched path reduces through ndarray.sum()."""
        return ((values - acc) ** 2).sum()  # R20: ndarray reduction


class FullyBatched(AggregateFunction):
    """Both paths vectorized: no order split, nothing to flag."""

    __numeric__ = "reassoc-tolerant"

    def add(self, acc, value):
        """Scalar path is numpy too."""
        return np.add(acc, value)

    def add_many(self, acc, values):
        """Same pairwise order on both sides."""
        return acc + np.sum(values)


class WaivedBatch(AggregateFunction):
    """The batched shortcut is conceded with a waiver."""

    __numeric__ = "reassoc-tolerant"

    def add(self, acc, value):
        """Scalar fold."""
        return acc + value

    def add_many(self, acc, values):
        """Waived: the class declares reassoc-tolerant and NumSan checks."""
        return acc + np.sum(values)  # repro: numeric=reassoc - pairwise ok
