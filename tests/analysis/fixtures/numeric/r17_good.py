"""R17 fixture: retraction through RetractableSum, or waived integers."""

from repro.core.numeric import RetractableSum


class BoundedSlidingTotal(AggregateFunction):
    """Retraction goes through the drift-bounded primitive."""

    __numeric__ = "compensated"

    def __init__(self):
        self._total = RetractableSum(drift_bound=1e-12, resum_every=64)
        self._released = 0

    def evict(self, old):
        """RetractableSum re-sums from source every N retractions."""
        self._total.retract(old)
        self._released -= -1  # exempt: negated integer constant

    def rebase(self, offset):
        """Integer cursor bookkeeping is waived as exact."""
        self._released -= offset  # repro: numeric=exact - integer cursor
