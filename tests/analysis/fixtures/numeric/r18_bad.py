"""R18 fixture: ==/!= on accumulated floats (order-dependent)."""


def totals_agree(left, right):
    """BUG: two folds of the same data differ in the last ULPs."""
    return left.window_sum == right.window_sum  # R18: _sum suffix


def snapshot_changed(totals, key, snapshot_total):
    """BUG: != on an accumulated total."""
    return totals[key] != snapshot_total  # R18: _total suffix


def window_matches(aggregate, window, expected):
    """BUG: equality on an extracted aggregate result."""
    return aggregate.result(window) == expected  # R18: .result() call


def accumulator_is_zero(acc):
    """BUG: float-literal comparand stays flagged (0.0 is a magnitude)."""
    return acc[0] == 0.0  # R18: accumulator subscript vs float literal


def exempt_comparisons(self, acc_rows):
    """Counts, sentinels and None test state, not float identity."""
    if self._count == 0:  # exempt: plain count name, integer literal
        return False
    if self.m2 == 0:  # exempt: integer comparand
        return False
    if self.window_sum == math.inf:  # exempt: sentinel comparand
        return False
    return self.threshold is None  # exempt: identity, not equality
