"""R16 fixture: folds routed through the compensated primitives."""

from repro.core.numeric import (
    neumaier_add,
    neumaier_add_many,
    neumaier_create,
    neumaier_merge,
)


class CompensatedRunningSum(AggregateFunction):
    """Every fold goes through repro.core.numeric — nothing to flag."""

    __numeric__ = "compensated"

    def create(self):
        """Compensated accumulator."""
        return neumaier_create()

    def add(self, acc, value):
        """Scalar fold through the shared primitive."""
        neumaier_add(acc, value)
        return acc

    def add_many(self, acc, values):
        """Batched fold through the same primitive (bit-identical)."""
        neumaier_add_many(acc, values)
        return acc

    def merge(self, left, right):
        """Partial merge carries both compensations forward."""
        neumaier_merge(left, right)
        return left
