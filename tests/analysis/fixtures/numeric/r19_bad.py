"""R19 fixture: numeric-lineage classes without a __numeric__ contract."""


class UndeclaredEstimator(ErrorModel):
    """BUG: error-model lineage, no __numeric__ anywhere in its ancestry."""

    def update(self, sample):
        """Feeds the slack controller; rounding discipline undeclared."""
        return sample


class UndeclaredAggregate(AggregateFunction):
    """BUG: aggregate lineage, nothing declared."""

    def create(self):
        """Accumulator factory."""
        return []


class UndeclaredGrandchild(UndeclaredAggregate):
    """BUG: lineage is transitive; missing annotations are too."""

    def describe(self):
        """Still inventoried through its parent."""
        return "grandchild"
